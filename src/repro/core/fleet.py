"""Batched structure-of-arrays (SoA) fleet kernel: B switches per numpy op.

The fast kernel (:mod:`repro.core.hirise`) simulates one switch at a time
in pure-Python loops; replicate-style workloads (confidence intervals,
fuzz campaigns, saturation searches) run B independent instances of the
*same* :class:`~repro.core.config.HiRiseConfig` under different seeds,
traffic patterns and fault schedules.  This module holds those B
instances — called *lanes* — in preallocated 2-D/3-D numpy arrays
(occupancy, ownership, cooling, CLRG banks and LRG recency keys laid out
as ``(lane, resource)`` / ``(lane, port, vc)`` arrays) and advances all
lanes per vectorized operation: masked candidate selection, fused
transmit+refill, cooling clears and the two-phase arbitration as array
ops with ``np.lexsort``-based group reductions.

**Bit-identical per lane.**  Lane ``i`` of a fleet run produces exactly
the :class:`~repro.network.engine.SimulationResult` the scalar fast
kernel produces for the same (config, traffic, fault schedule), field
for field — including the deterministic latency-sample decimation.
The mapping from scalar semantics to array ops:

* the scalar per-port ascending scans (transmit, refill, request
  collection) become row-major ``np.nonzero`` orders, which sort by
  ``(lane, port)`` exactly like the scans;
* LRG recency keys are distinct, so every scalar ``min()`` pick has a
  unique argmin and the vectorized segment-minimum picks the same
  winner;
* the one ordering the set view cannot see — priority allocation lets a
  single pair arbiter establish *several* winners in one cycle, demoted
  in ``by_output`` dict-insertion order — is reconstructed explicitly:
  each phase-1 winner carries its dict-insertion key (``wkey``), each
  output group takes the minimum (``out_min``), and same-pair demotions
  are stamped in ``out_min`` order;
* the redundant phase-1/phase-2 busy/cooling re-checks of the scalar
  kernel are provable no-ops (nothing mutates between the request scan
  and the checks) and are omitted.

numpy is an optional extra for this subsystem (``pip install
repro[fleet]``): the module imports without numpy (``FLEET_AVAILABLE``
is False) and every caller — harness routing, the fuzzer's ``--fleet``
mode, the benchmarks — falls back to the scalar kernel when it is
absent.
"""

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.core.channels import make_allocation
from repro.core.config import ArbitrationScheme, HiRiseConfig
from repro.faults import (
    CORRUPT_CLRG,
    FAIL_CHANNEL,
    FAIL_INPUT,
    REPAIR_CHANNEL,
    REPAIR_INPUT,
    FaultCursor,
    FaultSchedule,
)
from repro.network.engine import (
    DEFAULT_LATENCY_SAMPLE_LIMIT,
    SimulationResult,
)
from repro.obs.trace import (
    CLRG_HALVE,
    COOL,
    DRAIN_STALL,
    EJECT,
    FAULT_CHANNEL,
    FAULT_CLRG,
    FAULT_INJECT,
    FAULT_INPUT,
    FAULT_REPAIR,
    INJECT,
    P1_GRANT,
    P2_BLOCK,
    P2_GRANT,
    REASON_CHANNEL_FAILED,
    REASON_OUTPUT_BUSY,
    REASON_OUTPUT_COOLING,
    REASON_RESOURCE_BUSY,
    REASON_RESOURCE_COOLING,
    VIA_BLOCK,
)

#: Whether the fleet kernel can run at all (numpy importable).
FLEET_AVAILABLE = np is not None

#: wkey encoding: phase-1 winners iterate ints, then channels, then
#: pairs (dict-insertion order of the scalar kernel); within a kind the
#: order is by first-requesting port, and pair winners additionally by
#: free-channel position.  4096 > any channel multiplicity in practice.
_WKEY_PORT = 4096
_WKEY_CHAN = 1 << 30
_WKEY_PAIR = 1 << 31

#: Scatter-min sentinel: larger than every arbiter rank and phase-2 key.
_BIG = 1 << 62


def fleet_supports(config: HiRiseConfig) -> bool:
    """Whether the fleet kernel can simulate ``config`` bit-identically.

    Everything the scalar fast kernel supports is covered except the
    QoS-weighted CLRG extension (float cost state with its own commit
    rule), which stays on the scalar path, and the VOQ input-queued
    schemes (iSLIP / MWM), which run on ``repro.switches.VOQSwitch``
    rather than the Hi-Rise kernel family.
    """
    return (
        FLEET_AVAILABLE
        and config.qos_weights is None
        and not config.uses_voq
    )


def _group_starts(g_sorted):
    """Segment starts + lengths of a sorted group-id array."""
    brk = np.empty(g_sorted.size, dtype=bool)
    brk[0] = True
    np.not_equal(g_sorted[1:], g_sorted[:-1], out=brk[1:])
    starts = np.flatnonzero(brk)
    counts = np.empty(starts.size, dtype=np.int64)
    np.subtract(starts[1:], starts[:-1], out=counts[:-1])
    counts[-1] = g_sorted.size - starts[-1]
    return starts, counts


#: Unsigned view dtypes for the fast contiguous last-axis ``any``.
_ANY_VIEW = (
    {2: np.uint16, 4: np.uint32, 8: np.uint64} if np is not None else {}
)


def _any_last(a):
    """``a.any(axis=-1)`` for a C-contiguous bool array, fast.

    ``logical_or.reduce`` over a short innermost axis is pathologically
    slow in numpy; reinterpreting the V bools of each row as one
    unsigned word (V in {2, 4, 8}) or folding V column slices is an
    order of magnitude cheaper.
    """
    V = a.shape[-1]
    view = _ANY_VIEW.get(V)
    if view is not None and a.flags.c_contiguous:
        return a.view(view).reshape(a.shape[:-1]) != 0
    out = a[..., 0].copy()
    for v in range(1, V):
        out |= a[..., v]
    return out


def _replay_latency_samples(
    latencies: Sequence[int], limit: Optional[int]
) -> Tuple[List[int], int]:
    """Replay ``SimulationResult.record_latency`` decimation exactly.

    Given the full ordered latency stream of one lane, return the
    ``(packet_latencies, _sample_stride)`` pair the scalar result would
    hold after recording them one at a time: the sample list keeps every
    ``stride``-th packet and halves itself (doubling the stride) each
    time it outgrows ``limit``.  Phase-replayed (one slice per stride
    doubling) instead of element-at-a-time, so finalization stays cheap
    even for multi-million-packet runs.
    """
    if limit is None:
        return [int(v) for v in latencies], 1
    samples: List[int] = []
    stride = 1
    index = 0
    total = len(latencies)
    while index < total:
        room = limit + 1 - len(samples)
        take = latencies[index::stride][:room]
        taken = len(take)
        samples.extend(int(v) for v in take)
        if taken < room:
            break  # stream exhausted before the next halving
        last = index + (taken - 1) * stride
        if len(samples) > limit:
            samples = samples[::2]
            stride *= 2
        # Next recorded index: smallest multiple of stride beyond `last`
        # (samples are always exactly the multiples of the live stride).
        index = last - (last % stride) + stride
    return samples, stride


class FleetKernel:
    """B Hi-Rise switch instances advanced as one set of array ops.

    Args:
        config: Shared architectural configuration of every lane.
        num_lanes: Number of lanes (B).
        faults: Optional per-lane fault schedules (``None`` entries mean
            no faults for that lane).

    Raises:
        RuntimeError: If numpy is unavailable.
        ValueError: If the configuration is unsupported
            (see :func:`fleet_supports`) or ``num_lanes`` < 1.
    """

    def __init__(
        self,
        config: HiRiseConfig,
        num_lanes: int,
        faults: Optional[Sequence[Optional[FaultSchedule]]] = None,
    ) -> None:
        if np is None:
            raise RuntimeError(
                "the fleet kernel needs numpy (pip install repro[fleet])"
            )
        if num_lanes < 1:
            raise ValueError("need at least one lane")
        if not fleet_supports(config):
            raise ValueError(
                "config not supported by the fleet kernel "
                "(QoS-weighted CLRG stays on the scalar path)"
            )
        if faults is not None and len(faults) != num_lanes:
            raise ValueError(
                f"need one fault schedule entry per lane "
                f"({num_lanes}), got {len(faults)}"
            )
        self.config = config
        cfg = config
        B = self.num_lanes = num_lanes
        N = self.num_ports = cfg.radix
        self.allocation = make_allocation(cfg)
        V = self._V = cfg.port_config.num_vcs
        self._depth = cfg.port_config.vc_depth
        R = self._R = cfg.num_resources
        L = self._L = cfg.layers
        C = self._C = cfg.channel_multiplicity
        self._PPL = cfg.ports_per_layer
        S = self._S = cfg.subblock_inputs
        self._scheme = cfg.arbitration
        self._binned = self.allocation.is_binned

        # --- static lookup tables -------------------------------------
        self._layer_of = np.asarray(cfg.layer_of_port_table, dtype=np.int64)
        self._local_of = np.asarray(cfg.local_index_table, dtype=np.int64)
        # Flat rid -> sub-block slot (intermediates use the local slot;
        # the diagonal is -1 and never requested).
        slot_of_rid = np.full(R, cfg.local_slot, dtype=np.int64)
        slot_of_rid[N:] = np.asarray(
            cfg.slot_of_channel_table, dtype=np.int64
        )
        self._slot_of_rid = slot_of_rid
        # Port x destination static tables.
        self._same_layer = (
            self._layer_of[:, None] == self._layer_of[None, :]
        )
        self._pair_of = (
            self._layer_of[:, None] * L + self._layer_of[None, :]
        )
        if self._binned:
            nominal = np.empty((N, N), dtype=np.int64)
            for port in range(N):
                local = int(self._local_of[port])
                nominal[port] = [
                    self.allocation.channel_for(local, dst)
                    for dst in range(N)
                ]
            self._nominal_channel = nominal
        else:
            self._nominal_channel = None
        # Diagonal sentinel rid per source layer (permanently cooling).
        self._dead_rid = np.asarray(
            [cfg.channel_resource_id(l, l, 0) for l in range(L)],
            dtype=np.int64,
        )
        # Broadcast index helpers reused by the hot loop.
        self._b1 = np.arange(B, dtype=np.int64)
        self._b3 = self._b1[:, None, None]
        self._n3 = np.arange(N, dtype=np.int64)[None, :, None]
        self._v3 = np.arange(V, dtype=np.int64)[None, None, :]

        # --- port state -----------------------------------------------
        ii8 = np.int64
        self.active_vc = np.full((B, N), -1, dtype=ii8)
        self._rr_next_vc = np.zeros((B, N), dtype=ii8)
        self._refill_vc = np.zeros((B, N), dtype=ii8)
        self._refill_blocked = np.zeros((B, N), dtype=bool)

        # --- virtual channel state (one packet per VC, contiguous seqs)
        self._vc_owner = np.full((B, N, V), -1, dtype=ii8)   # packet id
        self._vc_cnt = np.zeros((B, N, V), dtype=ii8)        # buffered flits
        self._vc_lo = np.zeros((B, N, V), dtype=ii8)         # front flit seq
        self._vc_dst = np.zeros((B, N, V), dtype=ii8)
        self._vc_nf = np.ones((B, N, V), dtype=ii8)
        self._vc_created = np.zeros((B, N, V), dtype=ii8)
        # Flat views (reshape(-1) aliases the same buffers) plus the
        # (lane, port) -> flat VC base offsets, for cheap scatter/gather.
        self._vc_owner_f = self._vc_owner.reshape(-1)
        self._vc_cnt_f = self._vc_cnt.reshape(-1)
        self._vc_lo_f = self._vc_lo.reshape(-1)
        self._vc_dst_f = self._vc_dst.reshape(-1)
        self._vc_nf_f = self._vc_nf.reshape(-1)
        self._vc_created_f = self._vc_created.reshape(-1)
        self._flat_nv = (
            self._b1[:, None] * N + np.arange(N, dtype=ii8)[None, :]
        ) * V

        # --- source queues: a (B, N, cap, 4) record ring ---------------
        # One record per queued packet — [dst, num_flits, created, pid]
        # packed together so append/front touch one cache line per
        # packet instead of four scattered arrays.  Records are 32-bit:
        # at saturation the ring dominates memory traffic (random
        # 16-byte row scatters plus full-ring copies on growth), and
        # every field fits — inject_cycle rejects values >= 2**31.
        cap = 64
        self._q_cap = cap
        self._q = np.zeros((B, N, cap, 4), dtype=np.int32)
        # Front-of-queue record cache: refill reads the same front
        # packet for several cycles, so keep it in a small contiguous
        # array instead of re-gathering from the ring.
        self._front = np.zeros((B, N, 4), dtype=np.int32)
        # Ring pointers: wrapped head slot in [0, cap) plus a record
        # count, so the hot paths never need a modulo (appends can wrap
        # at most once past ``cap``).
        self._q_head = np.zeros((B, N), dtype=ii8)
        self._q_len = np.zeros((B, N), dtype=ii8)
        # Seq of the next flit of the front packet to enter a VC.
        self._q_front_seq = np.zeros((B, N), dtype=ii8)
        self._pending = np.zeros((B, N), dtype=ii8)   # queued flits
        self.lane_occupancy = np.zeros(B, dtype=ii8)  # flits per lane

        # --- path state -----------------------------------------------
        self.resource_owner = np.full((B, R), -1, dtype=ii8)
        self.output_owner = np.full((B, N), -1, dtype=ii8)
        self._conn_rid = np.full((B, N), -1, dtype=ii8)
        self._conn_out = np.full((B, N), -1, dtype=ii8)
        self._cool_in = np.zeros((B, N), dtype=bool)
        self._cool_out = np.zeros((B, N), dtype=bool)
        self._cool_res = np.zeros((B, R), dtype=bool)
        # Diagonal channel ids are dead sentinels: permanently cooling,
        # never in a teardown, so the incremental clear never resets them.
        for layer in range(L):
            for channel in range(C):
                self._cool_res[
                    :, cfg.channel_resource_id(layer, layer, channel)
                ] = True
        # Previous cycle's teardowns, as flat (B*N) / (B*R) cooling
        # indices (cleared at the next step start).
        empty = np.empty(0, dtype=ii8)
        self._tear = (empty, empty, empty)  # (in_base, out_base, res_base)

        # --- arbiter state (LRG recency keys; ascending initial order)
        # Intermediate-output arbiters (rid < N) and channel arbiters
        # (rid >= N) share one rid-indexed table, so binned phase 1 is a
        # single group-arbitrate pass and a single demotion scatter.
        PPL = self._PPL
        LL = L * L
        ramp_ppl = np.arange(PPL, dtype=ii8)
        self._loc_rank = np.broadcast_to(ramp_ppl, (B, R, PPL)).copy()
        self._loc_stamp = np.full((B, R), PPL, dtype=ii8)
        self._pair_rank = np.broadcast_to(ramp_ppl, (B, LL, PPL)).copy()
        self._pair_stamp = np.full((B, LL), PPL, dtype=ii8)
        scheme = self._scheme
        ramp_s = np.arange(S, dtype=ii8)
        if scheme is ArbitrationScheme.L2L_RR:
            self._sb_ptr = np.zeros((B, N), dtype=ii8)
        elif scheme is not ArbitrationScheme.AGE:
            self._sb_rank = np.broadcast_to(ramp_s, (B, N, S)).copy()
            self._sb_stamp = np.full((B, N), S, dtype=ii8)
            if scheme is ArbitrationScheme.WLRG:
                self._sb_served = np.zeros((B, N, S), dtype=ii8)
            elif scheme is ArbitrationScheme.CLRG:
                self._clrg_counts = np.zeros((B, N, N), dtype=ii8)

        # --- per-lane fault state -------------------------------------
        base_failed = frozenset(cfg.failed_channels)
        self._failed: List[frozenset] = [base_failed] * B
        self._stuck = np.zeros((B, N), dtype=bool)
        self._cursors: List[Optional[FaultCursor]] = [
            FaultCursor(schedule) if schedule is not None else None
            for schedule in (faults or [None] * B)
        ]
        self._have_faults = any(
            cursor is not None for cursor in self._cursors
        )

        # Per-lane healthy-channel mask over (packed pair, channel);
        # the diagonal rows stay False (never requested).
        healthy = np.zeros((B, LL, C), dtype=bool)
        for src in range(L):
            for dst in range(L):
                if src != dst:
                    healthy[:, src * L + dst, :] = True
        for (src, dst, channel) in base_failed:
            healthy[:, src * L + dst, channel] = False
        self._healthy = healthy
        if self._binned:
            self._rid_of_dst = np.empty((B, N, N), dtype=ii8)
            for lane in range(B):
                self._rebuild_lane_tables(lane)
        else:
            self._rid_of_dst = None

        # --- flat aliases and scratch (hot-loop fast paths) ------------
        # Single-index gathers/scatters through these reshape views are
        # several times cheaper than two-array advanced indexing at the
        # fleet's array sizes; every view aliases the array above it, so
        # fault handlers can keep writing the 2-D/3-D forms.
        self.active_vc_f = self.active_vc.reshape(-1)
        self._rr_next_vc_f = self._rr_next_vc.reshape(-1)
        self._refill_vc_f = self._refill_vc.reshape(-1)
        self._refill_blocked_f = self._refill_blocked.reshape(-1)
        self._q_head_f = self._q_head.reshape(-1)
        self._q_len_f = self._q_len.reshape(-1)
        self._q_front_seq_f = self._q_front_seq.reshape(-1)
        self._pending_f = self._pending.reshape(-1)
        self._front_f = self._front.reshape(-1, 4)
        self._q_f = self._q.reshape(-1, 4)
        self.resource_owner_f = self.resource_owner.reshape(-1)
        self.output_owner_f = self.output_owner.reshape(-1)
        self._conn_rid_f = self._conn_rid.reshape(-1)
        self._conn_out_f = self._conn_out.reshape(-1)
        self._cool_in_f = self._cool_in.reshape(-1)
        self._cool_out_f = self._cool_out.reshape(-1)
        self._cool_res_f = self._cool_res.reshape(-1)
        self._vc_owner_rows = self._vc_owner.reshape(-1, V)
        self._vc_dst_rows = self._vc_dst.reshape(-1, V)
        self._loc_rank_f = self._loc_rank.reshape(-1)
        self._loc_stamp_f = self._loc_stamp.reshape(-1)
        if self._rid_of_dst is not None:
            self._rid_of_dst_f = self._rid_of_dst.reshape(-1)
        if scheme is ArbitrationScheme.L2L_RR:
            self._sb_ptr_f = self._sb_ptr.reshape(-1)
        elif scheme is not ArbitrationScheme.AGE:
            self._sb_rank_f = self._sb_rank.reshape(-1)
            self._sb_stamp_f = self._sb_stamp.reshape(-1)
            if scheme is ArbitrationScheme.WLRG:
                self._sb_served_f = self._sb_served.reshape(-1)
            elif scheme is ArbitrationScheme.CLRG:
                self._clrg_counts_f = self._clrg_counts.reshape(-1)
                self._clrg_rows = self._clrg_counts.reshape(-1, N)
        # Dense per-group scratch for the scatter-min arbitration passes.
        self._dense_r = np.empty(B * R, dtype=ii8)
        self._dense_n = np.empty(B * N, dtype=ii8)
        # Native binary tracing (attach_tracer): grant-cycle and CLRG
        # halving counters exist only while a tracer is attached — they
        # feed event payloads, never the simulation itself.
        self._tracer = None
        self._grant_cycle = None
        self._halve_count = None
        # Opt-in phase-level perf counters (attach_perf): clock reads
        # only, so attached runs stay bit-identical per lane.
        self._perf = None
        # Round-robin VC pick via a 4-bit viability mask: a contiguous
        # (K, 4) bool viewed as uint32 packs the four flags into bytes
        # b0..b3; multiplying by 0x08040201 lands b3..b0 (no carries —
        # every partial product occupies distinct bits) in bits 24..27,
        # so ``(packed * M) >> 24`` is the reversed mask and a 64-entry
        # table maps (mask, rr_next) to the winning VC.  Little-endian
        # only (byte 0 must be VC 0); V != 4 uses the generic argmin.
        self._vc_lut = None
        if V == 4 and np.little_endian:
            lut = np.zeros(64, dtype=ii8)
            for nib in range(16):
                for r in range(4):
                    for off in range(4):
                        v = (r + off) % 4
                        if (nib >> (3 - v)) & 1:
                            lut[nib * 4 + r] = v
                            break
            self._vc_lut = lut

    # ------------------------------------------------------------------
    # Native binary tracing
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.tracebin.FleetTracer` (or detach).

        The kernel then emits the scalar fast kernel's event stream
        natively, per lane: every capture point appends lane-ordered
        batches, so ``tracer.lane_tracer(i)`` is event-for-event equal
        to a scalar :class:`~repro.obs.tracebin.BinaryTracer` run of
        lane ``i``.  Attach before the first ``step`` — the cooling
        events' ``granted`` cycle is recorded at establish time.
        """
        if tracer is not None:
            lanes = getattr(tracer, "num_lanes", self.num_lanes)
            if lanes != self.num_lanes:
                raise ValueError(
                    f"tracer has {lanes} lanes, kernel has "
                    f"{self.num_lanes}"
                )
            tracer.bind(self.config)
            if self._grant_cycle is None:
                B, N = self.num_lanes, self.num_ports
                self._grant_cycle = np.full((B, N), -1, dtype=np.int64)
                self._grant_cycle_f = self._grant_cycle.reshape(-1)
                self._halve_count = np.zeros((B, N), dtype=np.int64)
                self._halve_count_f = self._halve_count.reshape(-1)
        self._tracer = tracer

    def attach_perf(self, perf) -> None:
        """Attach :class:`repro.obs.perf.PerfCounters` (or detach).

        One counters object profiles the whole fleet (``lanes`` records
        the batch width): ``step`` phase-times one cycle in every
        ``perf.stride`` and the injection entry points are shadowed so
        batched injections are timed per call.  The counters only read
        the monotonic clock — attached runs stay bit-identical.
        """
        self._perf = perf
        if perf is not None:
            perf.bind(self)
            self.inject_cycle = self._inject_cycle_perf  # type: ignore[method-assign]
            self.inject_packed = self._inject_packed_perf  # type: ignore[method-assign]
        else:
            self.__dict__.pop("inject_cycle", None)
            self.__dict__.pop("inject_packed", None)

    def _inject_cycle_perf(
        self, lanes, srcs, dsts, created, num_flits, pids, _checked=False
    ) -> None:
        perf = self._perf
        start = time.perf_counter_ns()
        FleetKernel.inject_cycle(
            self, lanes, srcs, dsts, created, num_flits, pids, _checked
        )
        perf.add("inject", time.perf_counter_ns() - start, len(srcs))

    def _inject_packed_perf(self, gid, recs, lane_flits) -> None:
        perf = self._perf
        start = time.perf_counter_ns()
        FleetKernel.inject_packed(self, gid, recs, lane_flits)
        perf.add("inject", time.perf_counter_ns() - start, len(gid))

    # ------------------------------------------------------------------
    # Fault handling (rare; per-lane python mirroring apply_fault_events)
    # ------------------------------------------------------------------
    def _rebuild_lane_tables(self, lane: int) -> None:
        """Rebuild lane-local binned request tables after a fault event.

        Mirrors ``HiRiseSwitch._build_fast_tables``: the nominal binned
        channel remaps to the next healthy channel toward the same layer
        (cyclically), or to the source layer's diagonal sentinel when
        the whole pair is dead.
        """
        if not self._binned:
            return
        cfg = self.config
        L, C, N = self._L, self._C, cfg.radix
        healthy = self._healthy[lane]
        # remap[pair, nominal] -> healthy channel or -1 (pair dead).
        remap = np.full((L * L, C), -1, dtype=np.int64)
        for pair in range(L * L):
            if pair // L == pair % L:
                continue
            live = healthy[pair]
            for nominal in range(C):
                for offset in range(C):
                    channel = (nominal + offset) % C
                    if live[channel]:
                        remap[pair, nominal] = channel
                        break
        pair_t = self._pair_of                     # (N, N)
        chan = remap[pair_t, self._nominal_channel]
        rid = N + pair_t * C + chan
        dead = chan < 0
        if dead.any():
            sentinel = self._dead_rid[self._layer_of][:, None]
            rid = np.where(dead, np.broadcast_to(sentinel, rid.shape), rid)
        dst_ids = np.arange(N, dtype=np.int64)[None, :]
        self._rid_of_dst[lane] = np.where(self._same_layer, dst_ids, rid)

    def _apply_fault_events(self, lane: int, events, cycle: int = 0) -> None:
        """Per-lane twin of :func:`repro.faults.apply_fault_events`."""
        cfg = self.config
        L, C = self._L, self._C
        failed = set(self._failed[lane])
        tracer = self._tracer
        topology_changed = False
        for event in events:
            kind = event.kind
            if kind == FAIL_CHANNEL:
                channel = event.channel
                if channel[2] >= C or not (
                    0 <= channel[0] < L and 0 <= channel[1] < L
                ):
                    raise ValueError(
                        f"fault channel {channel} out of range"
                    )
                if channel in failed:
                    continue
                failed.add(channel)
                self._healthy[
                    lane, channel[0] * L + channel[1], channel[2]
                ] = False
                topology_changed = True
                if tracer is not None:
                    tracer.append_row(
                        cycle, lane, FAULT_INJECT, FAULT_CHANNEL,
                        cfg.channel_resource_id(*channel), 0,
                    )
            elif kind == REPAIR_CHANNEL:
                channel = event.channel
                if channel not in failed:
                    continue
                failed.discard(channel)
                self._healthy[
                    lane, channel[0] * L + channel[1], channel[2]
                ] = True
                topology_changed = True
                if tracer is not None:
                    tracer.append_row(
                        cycle, lane, FAULT_REPAIR, FAULT_CHANNEL,
                        cfg.channel_resource_id(*channel),
                    )
            elif kind == FAIL_INPUT:
                port = event.port
                if not 0 <= port < cfg.radix:
                    raise ValueError(f"fault port {port} out of range")
                if self._stuck[lane, port]:
                    continue
                self._stuck[lane, port] = True
                topology_changed = True
                if tracer is not None:
                    tracer.append_row(
                        cycle, lane, FAULT_INJECT, FAULT_INPUT, port, 0
                    )
            elif kind == REPAIR_INPUT:
                port = event.port
                if not self._stuck[lane, port]:
                    continue
                self._stuck[lane, port] = False
                topology_changed = True
                if tracer is not None:
                    tracer.append_row(
                        cycle, lane, FAULT_REPAIR, FAULT_INPUT, port
                    )
            elif kind == CORRUPT_CLRG:
                output = event.output
                if not 0 <= output < cfg.radix:
                    raise ValueError(
                        f"fault output {output} out of range"
                    )
                if self._scheme is not ArbitrationScheme.CLRG:
                    continue  # non-CLRG scheme: nothing to corrupt
                value = min(max(int(event.value), 0), cfg.num_classes - 1)
                if event.port is not None and not (
                    0 <= event.port < cfg.radix
                ):
                    raise ValueError(
                        f"fault port {event.port} out of range"
                    )
                if event.port is None:
                    self._clrg_counts[lane, output, :] = value
                else:
                    self._clrg_counts[lane, output, event.port] = value
                if tracer is not None:
                    tracer.append_row(
                        cycle, lane, FAULT_INJECT, FAULT_CLRG, output,
                        value,
                    )
            else:  # pragma: no cover - FaultEvent validates kinds
                raise ValueError(f"unknown fault kind {kind!r}")
        self._failed[lane] = frozenset(failed)
        if topology_changed:
            self._rebuild_lane_tables(lane)

    # ------------------------------------------------------------------
    # Injection (array-native source-queue ring append)
    # ------------------------------------------------------------------
    def _grow_rings(self, need: int) -> None:
        """Grow the shared ring capacity so ``need`` entries fit.

        Heads are always wrapped into ``[0, cap)``, so tiling the old
        ring twice into the new array puts each queue's record
        ``head + i`` (``i < length <= cap``, hence ``head + i <
        2 * cap <= new_cap``) at its un-wrapped position — two bulk
        copies, no index math.  Slots beyond each queue's length hold
        garbage by contract (``_q_len`` delimits validity), so the rest
        of the new array stays uninitialised.
        """
        cap = self._q_cap
        new_cap = cap
        while new_cap < need:
            new_cap *= 2
        B, N = self.num_lanes, self.num_ports
        new = np.empty((B, N, new_cap, 4), dtype=np.int32)
        new[:, :, :cap] = self._q
        new[:, :, cap:2 * cap] = self._q
        self._q = new
        self._q_f = new.reshape(-1, 4)
        self._q_cap = new_cap

    def inject_cycle(
        self, lanes, srcs, dsts, created, num_flits, pids, _checked=False
    ) -> None:
        """Append a batch of packets across lanes (one cycle's traffic).

        All arguments are equal-length integer arrays; rows may arrive
        in any order but rows of one ``(lane, src)`` queue keep their
        relative order, matching per-packet ``inject`` calls.
        ``_checked=True`` skips port-range validation for callers whose
        rows already passed traffic-model validation.

        Raises:
            ValueError: On an out-of-range source or destination port
                (the scalar ``inject`` contract).
            OverflowError: If ``num_flits``/``created``/``pids`` fall
                outside ``[0, 2**31)`` — ring records are 32-bit.
        """
        count = len(srcs)
        if count == 0:
            return
        N = self.num_ports
        if not _checked:
            if srcs.min() < 0 or srcs.max() >= N:
                bad = int(srcs[(srcs < 0) | (srcs >= N)][0])
                raise ValueError(f"source port {bad} out of range")
            if dsts.min() < 0 or dsts.max() >= N:
                bad = int(dsts[(dsts < 0) | (dsts >= N)][0])
                raise ValueError(f"destination port {bad} out of range")
        if ((num_flits | created | pids) >> 31).any():
            raise OverflowError(
                "fleet ring records are 32-bit: num_flits, created and "
                "pid must lie in [0, 2**31)"
            )
        gid = lanes * N + srcs
        unique = True
        if count > 1 and not (gid[1:] > gid[:-1]).all():
            unique = False
            if not (gid[1:] >= gid[:-1]).all():
                # Row streams from the harness arrive (lane, src)-sorted;
                # sort stably only when an external caller's batch is not.
                order = np.argsort(gid, kind="stable")
                gid = gid[order]
                lanes = lanes[order]
                dsts = dsts[order]
                created = created[order]
                num_flits = num_flits[order]
                pids = pids[order]
        recs = np.empty((count, 4), dtype=np.int32)
        recs[:, 0] = dsts
        recs[:, 1] = num_flits
        recs[:, 2] = created
        recs[:, 3] = pids
        if unique:
            # Each queue receives at most one packet (the synthetic
            # traffic models inject at most once per input per cycle),
            # so no grouping is needed.
            self._append_sorted(gid, recs, num_flits)
        else:
            starts, counts = _group_starts(gid)
            gb = gid[starts]
            qlen = self._q_len_f[gb]
            longest = int((qlen + counts).max())
            if longest > self._q_cap:
                self._grow_rings(longest)
            cap = self._q_cap
            slots = (
                np.repeat(self._q_head_f[gb] + qlen, counts)
                + np.arange(count, dtype=np.int64)
                - np.repeat(starts, counts)
            )
            # head < cap and final length <= cap, so one wrap suffices.
            slots -= (slots >= cap) * cap
            self._q_f[gid * cap + slots] = recs
            we = np.flatnonzero(qlen == 0)
            if we.size:
                self._front_f[gb[we]] = recs[starts[we]]
            self._q_len_f[gb] = qlen + counts
            self._pending_f[gb] += np.add.reduceat(num_flits, starts)
        np.add.at(self.lane_occupancy, lanes, num_flits)

    def _append_sorted(self, gid, recs, num_flits) -> None:
        """Append one record per queue; ``gid`` strictly increasing."""
        qlen = self._q_len_f[gid]
        longest = int(qlen.max()) + 1
        if longest > self._q_cap:
            self._grow_rings(longest)
        cap = self._q_cap
        slots = self._q_head_f[gid] + qlen
        slots -= (slots >= cap) * cap
        self._q_f[gid * cap + slots] = recs
        we = np.flatnonzero(qlen == 0)
        if we.size:
            self._front_f[gid[we]] = recs[we]
        self._q_len_f[gid] = qlen + 1
        self._pending_f[gid] += num_flits

    def inject_packed(self, gid, recs, lane_flits) -> None:
        """Append pre-packed packet records (the batched-driver path).

        The fleet analogue of handing ``inject_many`` a pre-staged
        ``Packet`` list: packing rows into the ring-record layout is
        packet *construction* and happens off the kernel's clock.

        Args:
            gid: Strictly increasing ``lane * num_ports + src`` array —
                at most one packet per source queue per call, rows
                pre-sorted (the natural order of a per-cycle traffic
                scan).
            recs: Matching ``(len(gid), 4)`` int32 record block, columns
                ``[dst, num_flits, created, packet_id]`` — the ring
                layout.  Port ranges and the 32-bit value bounds are the
                caller's contract (`inject_cycle` checks them when
                packing; :func:`stage_fleet_traffic`-style drivers check
                at staging time).
            lane_flits: Per-lane injected-flit totals, shape
                ``(num_lanes,)``.
        """
        if len(gid):
            self._append_sorted(gid, recs, recs[:, 1])
            self.lane_occupancy += lane_flits

    # ------------------------------------------------------------------
    # One fleet cycle
    # ------------------------------------------------------------------
    def step(self, cycle: int, active=None):
        """Advance every (active) lane one cycle.

        Args:
            cycle: Global cycle number (shared by all lanes).
            active: Optional boolean lane mask; inactive lanes receive
                no fault events (they are only ever inactive once empty,
                when stepping is a no-op for them anyway).

        Returns:
            ``(flit_counts, tail_lane, tail_src, tail_dst,
            tail_created)`` — per-lane ejected-flit counts plus one row
            per delivered packet, in the scalar per-port scan order.
        """
        if self._perf is not None:
            return self._step_perf(cycle, active)
        if self._have_faults:
            for lane, cursor in enumerate(self._cursors):
                if cursor is None:
                    continue
                if active is not None and not active[lane]:
                    continue
                due = cursor.take(cycle)
                if due:
                    self._apply_fault_events(lane, due, cycle)
        # Clear the previous cycle's teardown cooling (incremental).
        tbase, obase, rbase = self._tear
        if tbase.size:
            self._cool_in_f[tbase] = False
            self._cool_out_f[obase] = False
            self._cool_res_f[rbase] = False
        counts_and_tails = self._transmit(cycle)
        self._refill(cycle)
        self._arbitrate(cycle)
        return counts_and_tails

    def _step_perf(self, cycle: int, active=None):
        """Perf-counting step twin: phase-time one cycle per stride.

        The fleet phases are already separate array passes, so sampled
        cycles just put a monotonic read between them; op counts are
        fleet-aggregate (flits transmitted across all lanes).
        """
        perf = self._perf
        perf.cycles_total += 1
        sampled = cycle % perf.stride == 0
        if sampled:
            perf.cycles_sampled += 1
        ns = time.perf_counter_ns
        if self._have_faults:
            for lane, cursor in enumerate(self._cursors):
                if cursor is None:
                    continue
                if active is not None and not active[lane]:
                    continue
                due = cursor.take(cycle)
                if due:
                    self._apply_fault_events(lane, due, cycle)
        tbase, obase, rbase = self._tear
        if tbase.size:
            self._cool_in_f[tbase] = False
            self._cool_out_f[obase] = False
            self._cool_res_f[rbase] = False
        if not sampled:
            counts_and_tails = self._transmit(cycle)
            self._refill(cycle)
            self._arbitrate(cycle)
            return counts_and_tails
        t1 = ns()
        counts_and_tails = self._transmit(cycle)
        t2 = ns()
        self._refill(cycle)
        t3 = ns()
        self._arbitrate(cycle)
        t4 = ns()
        perf.add("transmit", t2 - t1, int(counts_and_tails[0].sum()))
        perf.add("refill", t3 - t2)
        perf.add("arbitrate", t4 - t3, len(counts_and_tails[1]))
        return counts_and_tails

    def _transmit(self, cycle: int):
        """Stream one flit on every connected port; tear down on tails."""
        act = self.active_vc
        busy = act >= 0
        # act is -1 on idle ports; `act * busy` clamps those to 0 so the
        # gather below stays in range (fire masks them out anyway).
        fidx_full = self._flat_nv + act * busy
        fire = busy & (self._vc_cnt_f[fidx_full] > 0)
        fb, fn = np.nonzero(fire)
        fbase = fb * self.num_ports + fn
        fidx = fidx_full.reshape(-1)[fbase]
        seq = self._vc_lo_f[fidx]
        nf = self._vc_nf_f[fidx]
        self._vc_lo_f[fidx] = seq + 1
        self._vc_cnt_f[fidx] -= 1
        self._refill_blocked_f[fbase] = False
        tracer = self._tracer
        tail = seq == nf - 1
        if tracer is not None and fb.size:
            # Ejects in the scalar per-port scan order: np.nonzero is
            # row-major, i.e. already (lane, port)-ascending.
            tracer.append_batch(
                cycle, fb, EJECT, fn, self._vc_dst_f[fidx], seq, tail
            )
        ti = np.flatnonzero(tail)
        tbase = fbase[ti]
        tidx = fidx[ti]
        tb = fb[ti]
        tn = fn[ti]
        # Tails: the popped flit was the packet's last, so the VC is
        # empty — free it, release the path, start the cooling blackout.
        self._vc_owner_f[tidx] = -1
        self.active_vc_f[tbase] = -1
        rid = self._conn_rid_f[tbase]
        out = self._conn_out_f[tbase]
        rbase = tb * self._R + rid
        obase = tb * self.num_ports + out
        self.resource_owner_f[rbase] = -1
        self.output_owner_f[obase] = -1
        self._conn_rid_f[tbase] = -1
        self._conn_out_f[tbase] = -1
        self._cool_in_f[tbase] = True
        self._cool_out_f[obase] = True
        self._cool_res_f[rbase] = True
        self._tear = (tbase, obase, rbase)
        if tracer is not None and tb.size:
            # Cooling events follow every eject, teardown scan order;
            # ``granted`` persists after teardown exactly like the
            # scalar kernel's grant_cycle dict (never cleared).
            tracer.append_batch(
                cycle, tb, COOL, rid, tn, out, self._grant_cycle_f[tbase]
            )
        flit_counts = np.bincount(fb, minlength=self.num_lanes)
        self.lane_occupancy -= flit_counts
        return (
            flit_counts,
            tb,
            tn,
            self._vc_dst_f[tidx],
            self._vc_created_f[tidx],
        )

    def _refill(self, cycle: int) -> None:
        """Move up to one source-queue flit per port into a VC."""
        cand = (~self._refill_blocked) & (self._q_len > 0)
        cb, cn = np.nonzero(cand)
        if cb.size == 0:
            return
        V = self._V
        cbase = cb * self.num_ports + cn
        rec = self._front_f[cbase]
        fdst, fnf, fcre, fpid = rec[:, 0], rec[:, 1], rec[:, 2], rec[:, 3]
        fseq = self._q_front_seq_f[cbase]
        head_case = fseq == 0
        moved_parts = []

        # Head flits: the first free VC takes the packet (a free VC is
        # always empty and depth >= 1, so no space check is needed).
        h = np.flatnonzero(head_case)
        if h.size:
            hbase = cbase[h]
            freem = self._vc_owner_rows[hbase] < 0
            if self._vc_lut is not None:
                # Packed-mask pick of the first free VC (the rr=0 row of
                # the arbitration LUT), replacing any()+argmax().
                packed = freem.view(np.uint32).reshape(-1)
                hh = np.flatnonzero(packed)
                has_free = packed != 0
            else:
                has_free = _any_last(freem)
                hh = np.flatnonzero(has_free)
            if hh.size:
                rows = h[hh]
                if self._vc_lut is not None:
                    nib = (
                        packed[hh] * np.uint32(0x08040201)
                    ) >> np.uint32(24)
                    vsel = self._vc_lut[nib * 4]
                else:
                    vsel = freem[hh].argmax(axis=1)
                vidx = hbase[hh] * V + vsel
                self._vc_owner_f[vidx] = fpid[rows]
                self._vc_dst_f[vidx] = fdst[rows]
                self._vc_nf_f[vidx] = fnf[rows]
                self._vc_created_f[vidx] = fcre[rows]
                self._vc_cnt_f[vidx] = 1
                self._vc_lo_f[vidx] = 0
                self._refill_vc_f[hbase[hh]] = vsel
                moved_parts.append(rows)
            blocked = np.flatnonzero(~has_free)
            if blocked.size:
                self._refill_blocked_f[hbase[blocked]] = True

        # Body/tail flits: only the packet's owner VC may take them.
        bsel = np.flatnonzero(~head_case)
        if bsel.size:
            bbase = cbase[bsel]
            vcur = self._refill_vc_f[bbase]
            vidx = bbase * V + vcur
            match = self._vc_owner_f[vidx] == fpid[bsel]
            if not match.all():
                # Scalar fallback scan (unreachable for well-formed
                # streams, kept for exactness): find the owning VC.
                for k in np.nonzero(~match)[0]:
                    flat = int(bbase[k])
                    owners = self._vc_owner_f[flat * V:flat * V + V]
                    hits = np.nonzero(owners == fpid[bsel[k]])[0]
                    if hits.size:
                        self._refill_vc_f[flat] = hits[0]
                        vidx[k] = flat * V + hits[0]
                        match[k] = True
                    else:
                        self._refill_blocked_f[flat] = True
            ok = np.flatnonzero(match)
            if ok.size:
                space = self._vc_cnt_f[vidx[ok]] < self._depth
                good = ok[space]
                self._vc_cnt_f[vidx[good]] += 1
                if good.size:
                    moved_parts.append(bsel[good])
                full = ok[~space]
                if full.size:
                    self._refill_blocked_f[bbase[full]] = True

        if moved_parts:
            # Rows are distinct queues, so scatter order is irrelevant.
            m = (
                moved_parts[0] if len(moved_parts) == 1
                else np.concatenate(moved_parts)
            )
            mbase = cbase[m]
            self._pending_f[mbase] -= 1
            new_seq = fseq[m] + 1
            done = new_seq == fnf[m]
            # Front packet finished: reset its seq for the next packet.
            self._q_front_seq_f[mbase] = new_seq * ~done
            di = np.flatnonzero(done)
            if di.size:
                dbase = mbase[di]
                head = self._q_head_f[dbase] + 1
                head *= head != self._q_cap  # wrap cap -> 0
                self._q_head_f[dbase] = head
                self._q_len_f[dbase] -= 1
                # Refresh the front cache (garbage when the queue just
                # emptied — never read, the length guard filters it).
                self._front_f[dbase] = self._q_f[dbase * self._q_cap + head]

    # ------------------------------------------------------------------
    # Arbitration (two phases within one cycle, all lanes at once)
    # ------------------------------------------------------------------
    @staticmethod
    def _segments(gid, order_key):
        """Sort rows by ``(gid, order_key)``; return (perm, starts, counts).

        ``perm[starts]`` indexes each group's minimum-``order_key`` row
        (the scalar ``min()`` winner — keys are distinct by invariant).
        """
        perm = np.lexsort((order_key, gid))
        starts, counts = _group_starts(gid[perm])
        return perm, starts, counts

    def _arbitrate(self, cycle: int) -> None:
        B, N, V = self.num_lanes, self.num_ports, self._V
        S, C, LL = self._S, self._C, self._L * self._L
        scheme = self._scheme
        elig = (
            (self.active_vc < 0) & ~self._cool_in & ~self._stuck
        )
        # ---- candidate selection: one request per idle port ----------
        # Work on the (sparse) eligible ports only; everything below is
        # flat-indexed (K, V) gathers, far cheaper than full (B, N, V)
        # fancy indexing when most ports are busy or empty.
        head_ok_full = (self._vc_cnt > 0) & (self._vc_lo == 0)
        pcand = elig & _any_last(head_ok_full)
        kb, kn = np.nonzero(pcand)
        if kb.size == 0:
            return
        base = kb * N + kn
        head_ok = head_ok_full.reshape(-1, V)[base]
        vdst = self._vc_dst_rows[base]
        out_free = (self.output_owner < 0) & ~self._cool_out
        res_free = (self.resource_owner < 0) & ~self._cool_res
        res_free_f = res_free.reshape(-1)
        out_ok = out_free.reshape(-1)[(kb * N)[:, None] + vdst]
        free_h = None
        rid2 = None
        if self._binned:
            rid2 = self._rid_of_dst_f[(base * N)[:, None] + vdst]
            viable = head_ok & out_ok
            viable &= res_free_f[(kb * self._R)[:, None] + rid2]
        else:
            knN = (kn * N)[:, None]
            same2 = self._same_layer.reshape(-1)[knN + vdst]
            free_h = self._healthy & res_free[:, N:].reshape(B, LL, C)
            pair_any = _any_last(free_h)
            pair2 = self._pair_of.reshape(-1)[knN + vdst]
            viable = head_ok & out_ok & np.where(
                same2,
                res_free_f[(kb * self._R)[:, None] + vdst],
                pair_any.reshape(-1)[(kb * LL)[:, None] + pair2],
            )
        tracer = self._tracer
        # Round-robin VC pick: smallest (vc - rr_next) mod V wins.
        if self._vc_lut is not None:
            # Packed-mask fast path (see __init__): selected rows only.
            packed = viable.view(np.uint32).reshape(-1)
            sel = np.flatnonzero(packed)
            if sel.size == 0:
                if tracer is not None:
                    self._trace_via_blocked(cycle, kb, kn, head_ok,
                                            vdst, sel)
                return
            nib = (packed[sel] * np.uint32(0x08040201)) >> np.uint32(24)
            rb, rn = kb[sel], kn[sel]
            rvc = self._vc_lut[nib * 4 + self._rr_next_vc_f[base[sel]]]
        else:
            rr = self._rr_next_vc_f[base]
            d = self._v3[0] - rr[:, None]
            if V & (V - 1) == 0:
                d &= V - 1
            else:
                d %= V
            rr_key = d + ~viable * np.int64(V)
            vc_star = rr_key.argmin(axis=1)
            sel = np.flatnonzero(_any_last(viable))
            if sel.size == 0:
                if tracer is not None:
                    self._trace_via_blocked(cycle, kb, kn, head_ok,
                                            vdst, sel)
                return
            rb, rn = kb[sel], kn[sel]
            rvc = vc_star[sel]
        if tracer is not None and sel.size != kb.size:
            self._trace_via_blocked(cycle, kb, kn, head_ok, vdst, sel)
        ridx = base[sel] * V + rvc
        rdst = self._vc_dst_f[ridx]
        rlocal = self._local_of[rn]
        track_ages = scheme is ArbitrationScheme.AGE

        if self._binned:
            # Intermediate and channel requests arbitrate in one pass:
            # ``rid_of_dst`` already keys both by resource id, and the
            # shared ``_loc_rank`` table holds both arbiter kinds.  Both
            # phases use a dense scatter-min instead of a lexsort: ranks
            # (phase 1) and sub-block keys (phase 2) are distinct within
            # a group by invariant, so ``value == groupmin`` recovers
            # exactly one winner per group.
            R, PPL = self._R, self._PPL
            rrid = rid2.reshape(-1)[sel * V + rvc]
            gid = rb * R + rrid
            rank = self._loc_rank_f[gid * PPL + rlocal]
            dense = self._dense_r
            dense.fill(_BIG)
            np.minimum.at(dense, gid, rank)
            win = np.flatnonzero(rank == dense[gid])
            p1key_w = None
            if tracer is not None:
                # Scalar winners-dict insertion order: all intermediate
                # groups before all channel groups, each in ascending
                # first-requesting-port order (ports scan once per
                # cycle, so first ports are distinct per group).  The
                # dense buffer is free again after ``win``.
                weight_w = np.bincount(gid, minlength=dense.size)[gid[win]]
                dense.fill(_BIG)
                np.minimum.at(dense, gid, rn)
                p1key_w = (
                    dense[gid[win]] * _WKEY_PORT
                    + (rrid[win] >= N) * _WKEY_CHAN
                )
                order1 = np.lexsort((p1key_w, rb[win]))
                wl = win[order1]
                tracer.append_batch(
                    cycle, rb[wl], P1_GRANT, rrid[wl], rn[wl], rdst[wl],
                    weight_w[order1],
                )
            # ---- phase 2: one sub-block winner per contested output --
            w_out = rdst[win]
            w_slot = self._slot_of_rid[rrid[win]]
            gid2 = rb[win] * N + w_out
            cnow = None
            if scheme in (
                ArbitrationScheme.L2L_LRG, ArbitrationScheme.WLRG
            ):
                skey = self._sb_rank_f[gid2 * S + w_slot]
            elif scheme is ArbitrationScheme.L2L_RR:
                skey = (w_slot - self._sb_ptr_f[gid2]) % S
            elif scheme is ArbitrationScheme.CLRG:
                cnow = self._clrg_counts_f[gid2 * N + rn[win]]
                skey = (
                    cnow * (1 << 44)
                    + self._sb_rank_f[gid2 * S + w_slot]
                )
            else:  # AGE: min (-age, slot), stateless
                skey = (
                    -(cycle - self._vc_created_f[ridx[win]]) * (S + 1)
                    + w_slot
                )
            dense2 = self._dense_n
            dense2.fill(_BIG)
            np.minimum.at(dense2, gid2, skey)
            pick = np.flatnonzero(skey == dense2[gid2])
            est = win[pick]
            outkey = None
            if tracer is not None:
                # by_output dict-insertion key of each output group: the
                # minimum phase-1 winner key among its candidates (the
                # dense phase-2 buffer is free after ``pick``).
                dense2.fill(_BIG)
                np.minimum.at(dense2, gid2, p1key_w)
                outkey = dense2[gid2[pick]]
            # ---- establish every picked winner's path ----------------
            eb, eport = rb[est], rn[est]
            evc, erid, eout = rvc[est], rrid[est], rdst[est]
            ebase = eb * N + eport
            sb2 = gid2[pick]       # = lane * N + output
            abase = gid[est]       # = lane * R + rid
            self.active_vc_f[ebase] = evc
            self._rr_next_vc_f[ebase] = (evc + 1) % V
            self.resource_owner_f[abase] = eport
            self.output_owner_f[sb2] = eport
            self._conn_rid_f[ebase] = erid
            self._conn_out_f[ebase] = eout
            if self._grant_cycle is not None:
                self._grant_cycle_f[ebase] = cycle
            # ---- sub-block commit (one per output; no collisions) ----
            eslot = w_slot[pick]
            if scheme is ArbitrationScheme.L2L_LRG:
                stamp = self._sb_stamp_f[sb2]
                self._sb_rank_f[sb2 * S + eslot] = stamp
                self._sb_stamp_f[sb2] = stamp + 1
            elif scheme is ArbitrationScheme.L2L_RR:
                self._sb_ptr_f[sb2] = (eslot + 1) % S
            elif scheme is ArbitrationScheme.WLRG:
                weight = np.bincount(gid, minlength=B * R)[abase]
                sidx = sb2 * S + eslot
                served = self._sb_served_f[sidx] + 1
                done = served >= weight
                self._sb_served_f[sidx] = served * ~done
                d2 = np.flatnonzero(done)
                if d2.size:
                    dsb = sb2[d2]
                    stamp = self._sb_stamp_f[dsb]
                    self._sb_rank_f[dsb * S + eslot[d2]] = stamp
                    self._sb_stamp_f[dsb] = stamp + 1
            elif scheme is ArbitrationScheme.CLRG:
                sat = np.flatnonzero(
                    cnow[pick] >= self.config.num_classes - 1
                )
                if sat.size:
                    rows = self._clrg_rows[sb2[sat]]
                    self._clrg_rows[sb2[sat]] = rows // 2
                    if tracer is not None:
                        # Halvings raw-emit during phase-2 processing,
                        # i.e. in by_output insertion order; the payload
                        # is the bank's cumulative halving count.
                        self._halve_count_f[sb2[sat]] += 1
                        horder = np.lexsort((outkey[sat], eb[sat]))
                        hs = sat[horder]
                        tracer.append_batch(
                            cycle, eb[hs], CLRG_HALVE, rdst[est[hs]],
                            self._halve_count_f[sb2[hs]], 0, 0,
                        )
                self._clrg_counts_f[sb2 * N + eport] += 1
                stamp = self._sb_stamp_f[sb2]
                self._sb_rank_f[sb2 * S + eslot] = stamp
                self._sb_stamp_f[sb2] = stamp + 1
            # AGE: stateless sub-blocks.
            # ---- local demotion (one winner per (lane, rid) arbiter) -
            stamp = self._loc_stamp_f[abase]
            self._loc_rank_f[abase * PPL + rlocal[est]] = stamp
            self._loc_stamp_f[abase] = stamp + 1
            if tracer is not None:
                # Phase-2 outcomes iterate the full winners dict in
                # insertion order: grant when the path was established,
                # block otherwise; CLRG grants carry the post-commit
                # class counter.
                granted = np.zeros(win.size, dtype=bool)
                granted[pick] = True
                kinds = np.where(granted, P2_GRANT, P2_BLOCK)
                dcol = np.zeros(win.size, dtype=np.int64)
                if scheme is ArbitrationScheme.CLRG:
                    dcol[pick] = self._clrg_counts_f[sb2 * N + eport]
                else:
                    dcol[pick] = -1
                order2 = np.lexsort((p1key_w, rb[win]))
                wl = win[order2]
                tracer.append_batch(
                    cycle, rb[wl], kinds[order2], rrid[wl], rn[wl],
                    rdst[wl], dcol[order2],
                )
            return

        # ---- priority allocation (lexsort machinery) -----------------
        rage = (
            cycle - self._vc_created_f[ridx]
            if track_ages
            else np.zeros(rb.size, dtype=np.int64)
        )
        parts = []  # phase-1 winner record batches

        def emit(rows, rid, out, weight, key, kind, arb):
            parts.append((
                rb[rows], rid, rn[rows], rvc[rows], out, weight,
                self._slot_of_rid[rid], key, rage[rows], kind, arb,
                rlocal[rows],
            ))

        rsame = self._same_layer[rn, rdst]
        im = np.nonzero(rsame)[0]
        if im.size:
            gid = rb[im] * N + rdst[im]
            rank = self._loc_rank[rb[im], rdst[im], rlocal[im]]
            perm, starts, counts = self._segments(gid, rank)
            rows = im[perm[starts]]
            firstp = rn[im[np.minimum.reduceat(perm, starts)]]
            out = rdst[rows]
            emit(
                rows, out, out, counts, firstp * _WKEY_PORT,
                np.zeros(rows.size, dtype=np.int64), out,
            )
        cm = np.nonzero(~rsame)[0]
        if cm.size:
            # Priority allocation: the pair arbiter ranks requestors
            # and the priority mux hands the free healthy channels
            # (channel order) to the top-ranked ones, one winner per
            # channel.
            pb = rb[cm]
            ppair = self._pair_of[rn[cm], rdst[cm]]
            gid = pb * LL + ppair
            rank = self._pair_rank[pb, ppair, rlocal[cm]]
            perm, starts, counts = self._segments(gid, rank)
            firstp = rn[cm[np.minimum.reduceat(perm, starts)]]
            nfree = free_h.sum(axis=2)
            # Free healthy channels compacted left, ascending order.
            ch_order = np.argsort(~free_h, axis=2, kind="stable")
            j = (
                np.arange(gid.size, dtype=np.int64)
                - np.repeat(starts, counts)
            )
            sb, sp = pb[perm], ppair[perm]
            keep = j < nfree[sb, sp]
            rows = cm[perm[keep]]
            if rows.size:
                jk = j[keep]
                channel = ch_order[sb[keep], sp[keep], jk]
                rid = N + sp[keep] * C + channel
                weight = np.repeat(-(-counts // C), counts)[keep]
                key = (
                    _WKEY_PAIR
                    + np.repeat(firstp, counts)[keep] * _WKEY_PORT
                    + jk
                )
                emit(
                    rows, rid, rdst[rows], weight, key,
                    np.full(rows.size, 2, dtype=np.int64), sp[keep],
                )

        if not parts:
            return
        (
            w_b, w_rid, w_port, w_vc, w_out, w_weight, w_slot, w_key,
            w_age, w_kind, w_arb, w_local,
        ) = (
            np.concatenate(cols) if len(parts) > 1 else parts[0][k]
            for k, cols in enumerate(zip(*parts))
        )
        if tracer is not None:
            # ``w_key`` already encodes the scalar winners-dict
            # insertion order (ints before pairs, first-requesting port,
            # free-channel position).
            order1 = np.lexsort((w_key, w_b))
            tracer.append_batch(
                cycle, w_b[order1], P1_GRANT, w_rid[order1],
                w_port[order1], w_out[order1], w_weight[order1],
            )

        # ---- phase 2: one sub-block winner per contested output ------
        if scheme in (
            ArbitrationScheme.L2L_LRG, ArbitrationScheme.WLRG
        ):
            skey = self._sb_rank[w_b, w_out, w_slot]
        elif scheme is ArbitrationScheme.L2L_RR:
            skey = (w_slot - self._sb_ptr[w_b, w_out]) % S
        elif scheme is ArbitrationScheme.CLRG:
            skey = (
                self._clrg_counts[w_b, w_out, w_port] * (1 << 44)
                + self._sb_rank[w_b, w_out, w_slot]
            )
        else:  # AGE: min (-age, slot)
            skey = -w_age * (S + 1) + w_slot
        gid2 = w_b * N + w_out
        perm2 = np.lexsort((skey, gid2))
        starts2, _ = _group_starts(gid2[perm2])
        pick = perm2[starts2]
        # by_output dict-insertion position of each output group: the
        # minimum winner-iteration key among its candidates.
        out_min = np.minimum.reduceat(w_key[perm2], starts2)
        eb, eport = w_b[pick], w_port[pick]
        evc, eout, erid = w_vc[pick], w_out[pick], w_rid[pick]
        eslot, ekind, earb = w_slot[pick], w_kind[pick], w_arb[pick]
        elocal = w_local[pick]

        # Establish every picked winner's path.
        self.active_vc[eb, eport] = evc
        self._rr_next_vc[eb, eport] = (evc + 1) % V
        self.resource_owner[eb, erid] = eport
        self.output_owner[eb, eout] = eport
        self._conn_rid[eb, eport] = erid
        self._conn_out[eb, eport] = eout
        if self._grant_cycle is not None:
            self._grant_cycle[eb, eport] = cycle

        # Sub-block commit (one per output, so scatters never collide).
        if scheme is ArbitrationScheme.L2L_LRG:
            self._sb_rank[eb, eout, eslot] = self._sb_stamp[eb, eout]
            self._sb_stamp[eb, eout] += 1
        elif scheme is ArbitrationScheme.L2L_RR:
            self._sb_ptr[eb, eout] = (eslot + 1) % S
        elif scheme is ArbitrationScheme.WLRG:
            served = self._sb_served[eb, eout, eslot] + 1
            done = served >= w_weight[pick]
            self._sb_served[eb, eout, eslot] = np.where(done, 0, served)
            d = np.nonzero(done)[0]
            if d.size:
                db, do = eb[d], eout[d]
                self._sb_rank[db, do, eslot[d]] = self._sb_stamp[db, do]
                self._sb_stamp[db, do] += 1
        elif scheme is ArbitrationScheme.CLRG:
            counts_now = self._clrg_counts[eb, eout, eport]
            sat = np.nonzero(counts_now >= self.config.num_classes - 1)[0]
            if sat.size:
                rows = self._clrg_counts[eb[sat], eout[sat]]
                self._clrg_counts[eb[sat], eout[sat]] = rows // 2
                if tracer is not None:
                    # Halvings emit in by_output insertion order
                    # (``out_min`` is aligned with ``pick``).
                    self._halve_count[eb[sat], eout[sat]] += 1
                    horder = np.lexsort((out_min[sat], eb[sat]))
                    hs = sat[horder]
                    tracer.append_batch(
                        cycle, eb[hs], CLRG_HALVE, eout[hs],
                        self._halve_count[eb[hs], eout[hs]], 0, 0,
                    )
            self._clrg_counts[eb, eout, eport] += 1
            self._sb_rank[eb, eout, eslot] = self._sb_stamp[eb, eout]
            self._sb_stamp[eb, eout] += 1
        # AGE: stateless sub-blocks.

        # Back-propagated local demotions.  Int arbiters see at most
        # one established winner per cycle (winners are keyed by rid);
        # a pair arbiter can establish several, demoted in by_output
        # insertion order — reconstructed via out_min.
        m01 = np.nonzero(ekind < 2)[0]
        if m01.size:
            ab, aa = eb[m01], earb[m01]
            self._loc_rank[ab, aa, elocal[m01]] = self._loc_stamp[ab, aa]
            self._loc_stamp[ab, aa] += 1
        m2 = np.nonzero(ekind == 2)[0]
        if m2.size:
            b2, p2 = eb[m2], earb[m2]
            perm3 = np.lexsort((out_min[m2], p2, b2))
            g3 = b2[perm3] * LL + p2[perm3]
            starts3, counts3 = _group_starts(g3)
            j3 = (
                np.arange(g3.size, dtype=np.int64)
                - np.repeat(starts3, counts3)
            )
            gb3 = b2[perm3][starts3]
            gp3 = p2[perm3][starts3]
            base = np.repeat(self._pair_stamp[gb3, gp3], counts3)
            rows = m2[perm3]
            self._pair_rank[
                eb[rows], earb[rows], elocal[rows]
            ] = base + j3
            self._pair_stamp[gb3, gp3] += counts3
        if tracer is not None:
            granted = np.zeros(w_b.size, dtype=bool)
            granted[pick] = True
            kinds = np.where(granted, P2_GRANT, P2_BLOCK)
            dcol = np.zeros(w_b.size, dtype=np.int64)
            if scheme is ArbitrationScheme.CLRG:
                dcol[pick] = self._clrg_counts[eb, eout, eport]
            else:
                dcol[pick] = -1
            order2 = np.lexsort((w_key, w_b))
            tracer.append_batch(
                cycle, w_b[order2], kinds[order2], w_rid[order2],
                w_port[order2], w_out[order2], dcol[order2],
            )

    def _trace_via_blocked(self, cycle, kb, kn, head_ok, vdst, sel) -> None:
        """Emit ``via_block`` events for candidate ports with no viable VC.

        Mirrors the scalar ``_capture_blocked``/``_blocked_reason``
        decomposition: the reported head is the first seq-0 front in VC
        index order, and the reason reads the same pre-arbitration
        ownership/cooling state.  Runs on the rare blocked rows only
        (a small python loop, like the scalar cold path).
        """
        blocked = np.ones(kb.size, dtype=bool)
        blocked[sel] = False
        rows = np.flatnonzero(blocked)
        if rows.size == 0:
            return
        N, C, L = self.num_ports, self._C, self._L
        lanes = kb[rows]
        ports = kn[rows]
        dsts = vdst[rows, np.argmax(head_ok[rows], axis=1)]
        reasons = np.empty(rows.size, dtype=np.int64)
        for k in range(rows.size):
            lane = int(lanes[k])
            port = int(ports[k])
            dst = int(dsts[k])
            if self.output_owner[lane, dst] >= 0:
                reason = REASON_OUTPUT_BUSY
            elif self._cool_out[lane, dst]:
                reason = REASON_OUTPUT_COOLING
            else:
                src_layer = int(self._layer_of[port])
                dst_layer = int(self._layer_of[dst])
                pair = src_layer * L + dst_layer
                if (src_layer != dst_layer
                        and not self._healthy[lane, pair].any()):
                    reason = REASON_CHANNEL_FAILED
                else:
                    if self._binned:
                        rids = (int(self._rid_of_dst[lane, port, dst]),)
                    elif src_layer == dst_layer:
                        rids = (dst,)
                    else:
                        rids = [
                            N + pair * C + channel
                            for channel in range(C)
                            if self._healthy[lane, pair, channel]
                        ]
                    reason = REASON_RESOURCE_COOLING
                    for rid in rids:
                        if (self.resource_owner[lane, rid] >= 0
                                and not self._cool_res[lane, rid]):
                            reason = REASON_RESOURCE_BUSY
                            break
            reasons[k] = reason
        self._tracer.append_batch(
            cycle, lanes, VIA_BLOCK, ports, dsts, reasons, 0
        )


class FleetSimulation:
    """Drives B lanes through the warm-up / measure / drain cycle loop.

    The per-lane accounting mirrors :class:`repro.network.engine.Simulation`
    exactly (window semantics, latency-sample decimation, drain idle
    limit), so each lane's :class:`SimulationResult` is bit-identical to a
    scalar run with the same traffic source and fault schedule.

    Traffic stays scalar per lane on purpose: ``SyntheticTraffic``
    interleaves ``rng.random()`` / ``rng.integers()`` calls per port, so
    any batched generation would change the RNG stream and break parity.
    """

    def __init__(
        self,
        config: HiRiseConfig,
        traffics: Sequence[object],
        faults: Optional[Sequence[Optional[FaultSchedule]]] = None,
        warmup_cycles: int = 0,
        latency_sample_limit: Optional[int] = DEFAULT_LATENCY_SAMPLE_LIMIT,
        tracer=None,
        perf=None,
    ) -> None:
        if warmup_cycles < 0:
            raise ValueError("warm-up must be non-negative")
        if latency_sample_limit is not None and latency_sample_limit < 1:
            raise ValueError("latency sample limit must be >= 1 or None")
        self.kernel = FleetKernel(config, len(traffics), faults)
        if tracer is not None:
            self.kernel.attach_tracer(tracer)
        if perf is not None:
            self.kernel.attach_perf(perf)
        self.traffics = list(traffics)
        self.warmup_cycles = warmup_cycles
        self.latency_sample_limit = latency_sample_limit
        self._cycle = 0

    @property
    def cycle(self) -> int:
        """The next cycle to be simulated."""
        return self._cycle

    def _tick(
        self,
        acct: dict,
        measuring: bool,
        inject: bool,
        active=None,
    ) -> None:
        cycle = self._cycle
        kernel = self.kernel
        if inject:
            rows = []
            for lane, traffic in enumerate(self.traffics):
                for p in traffic.packets_for_cycle(cycle):
                    rows.append(
                        (lane, p.src, p.dst, p.num_flits, p.packet_id)
                    )
            if rows:
                arr = np.array(rows, dtype=np.int64)
                lanes = arr[:, 0]
                if (
                    ((arr[:, 3] | arr[:, 4]) >> 31).any()
                    or (cycle >> 31)
                ):
                    raise OverflowError(
                        "fleet ring records are 32-bit: num_flits, "
                        "created and pid must lie in [0, 2**31)"
                    )
                tracer = kernel._tracer
                if tracer is not None:
                    # Rows are built lane-major with each lane's packets
                    # in traffic order — the scalar inject order.
                    tracer.append_batch(
                        cycle, lanes, INJECT, arr[:, 1], arr[:, 2],
                        arr[:, 3], arr[:, 4],
                    )
                gid = lanes * kernel.num_ports + arr[:, 1]
                if len(rows) == 1 or (gid[1:] > gid[:-1]).all():
                    recs = np.empty((len(rows), 4), dtype=np.int32)
                    recs[:, 0] = arr[:, 2]
                    recs[:, 1] = arr[:, 3]
                    recs[:, 2] = cycle
                    recs[:, 3] = arr[:, 4]
                    lane_flits = np.bincount(
                        lanes, weights=arr[:, 3],
                        minlength=kernel.num_lanes,
                    ).astype(np.int64)
                    kernel.inject_packed(gid, recs, lane_flits)
                else:
                    created = np.full(lanes.size, cycle, dtype=np.int64)
                    kernel.inject_cycle(
                        lanes, arr[:, 1], arr[:, 2], created, arr[:, 3],
                        arr[:, 4], _checked=True,
                    )
                if measuring:
                    acct["injected"] += np.bincount(
                        lanes, minlength=kernel.num_lanes
                    )
        fc, tb, tsrc, tdst, tcre = kernel.step(cycle, active)
        if measuring:
            if active is None:
                acct["cycles"] += 1
            else:
                acct["cycles"] += active
            acct["flits"] += fc
            if tb.size:
                acct["tails"].append((tb, tsrc, tdst, cycle - tcre))
        self._cycle += 1

    def run(
        self, measure_cycles: int, drain: bool = False
    ) -> List[SimulationResult]:
        """Run all lanes; returns one :class:`SimulationResult` per lane."""
        kernel = self.kernel
        B = kernel.num_lanes
        acct = {
            "injected": np.zeros(B, dtype=np.int64),
            "cycles": np.zeros(B, dtype=np.int64),
            "flits": np.zeros(B, dtype=np.int64),
            "tails": [],
        }
        end_warmup = self._cycle + self.warmup_cycles
        end_measure = end_warmup + measure_cycles
        while self._cycle < end_measure:
            measuring = self._cycle >= end_warmup
            self._tick(acct, measuring, inject=True)
        if drain:
            # Per-lane drain: a lane participates (and accrues measured
            # cycles) only while it still holds flits, matching the
            # scalar ``while occupancy() > 0`` loop lane by lane.
            from repro.network import engine as _engine

            idle = np.zeros(B, dtype=np.int64)
            active = kernel.lane_occupancy > 0
            while active.any():
                stuck = active & (idle >= _engine.DRAIN_IDLE_LIMIT)
                if stuck.any():
                    from repro.check.invariants import DrainStallError

                    lane = int(np.nonzero(stuck)[0][0])
                    if kernel._tracer is not None:
                        # Mirror the scalar drain loop: the stall event
                        # lands at the last stepped cycle.
                        kernel._tracer.append_row(
                            self._cycle - 1, lane, DRAIN_STALL,
                            int(idle[lane]),
                            int(kernel.lane_occupancy[lane]),
                        )
                    raise DrainStallError(
                        f"fleet lane {lane} drain made no progress for "
                        f"{int(idle[lane])} consecutive cycles at cycle "
                        f"{self._cycle}: "
                        f"{int(kernel.lane_occupancy[lane])} flits still "
                        f"inside the switch",
                        cycle=self._cycle,
                        idle_cycles=int(idle[lane]),
                        occupancy=int(kernel.lane_occupancy[lane]),
                    )
                before = kernel.lane_occupancy.copy()
                self._tick(acct, measuring=True, inject=False, active=active)
                progressed = kernel.lane_occupancy != before
                idle = np.where(active & ~progressed, idle + 1, 0)
                active = kernel.lane_occupancy > 0
        return self._finalize(acct)

    def _finalize(self, acct: dict) -> List[SimulationResult]:
        B = self.kernel.num_lanes
        N = self.kernel.num_ports
        if acct["tails"]:
            tb = np.concatenate([t[0] for t in acct["tails"]])
            tsrc = np.concatenate([t[1] for t in acct["tails"]])
            tdst = np.concatenate([t[2] for t in acct["tails"]])
            tlat = np.concatenate([t[3] for t in acct["tails"]])
        else:
            tb = tsrc = tdst = tlat = np.zeros(0, dtype=np.int64)
        results = []
        for lane in range(B):
            mask = tb == lane
            lat = tlat[mask]
            samples, stride = _replay_latency_samples(
                lat.tolist(), self.latency_sample_limit
            )
            result = SimulationResult(
                latency_sample_limit=self.latency_sample_limit
            )
            result.cycles = int(acct["cycles"][lane])
            result.packets_injected = int(acct["injected"][lane])
            result.packets_ejected = int(lat.size)
            result.flits_ejected = int(acct["flits"][lane])
            result.packet_latencies = samples
            result._sample_stride = stride
            result.latency_count = int(lat.size)
            result.latency_sum = int(lat.sum())
            result.latency_sumsq = int((lat * lat).sum())
            src_cnt = np.bincount(tsrc[mask], minlength=N)
            src_lat = np.bincount(tsrc[mask], weights=lat, minlength=N)
            dst_cnt = np.bincount(tdst[mask], minlength=N)
            for p in np.nonzero(src_cnt)[0]:
                result.per_input_ejected[int(p)] = int(src_cnt[p])
                result.per_input_latency_sum[int(p)] = int(src_lat[p])
            for p in np.nonzero(dst_cnt)[0]:
                result.per_output_ejected[int(p)] = int(dst_cnt[p])
            results.append(result)
        return results


@dataclass(frozen=True)
class LanePlan:
    """One lane's worth of work for a fleet dispatch.

    ``traffic_factory`` must build a *fresh* traffic source when called
    (lanes cannot share RNG state).  Plans grouped into one fleet must
    agree on every field except ``traffic_factory``/``faults``.
    """

    config: HiRiseConfig
    traffic_factory: Callable[[], object]
    faults: Optional[FaultSchedule] = None
    warmup_cycles: int = 0
    measure_cycles: int = 0
    drain: bool = False
    latency_sample_limit: Optional[int] = DEFAULT_LATENCY_SAMPLE_LIMIT
    #: ``callable() -> tracer`` with a truthy ``fleet_capable`` marker
    #: (e.g. :class:`repro.obs.tracebin.BinaryTracerFactory`).  The
    #: fleet then runs traced natively: one shared
    #: :class:`~repro.obs.tracebin.FleetTracer` with a per-lane column,
    #: no scalar fallback.
    tracer_factory: Optional[Callable[[], object]] = None
    #: ``callable() -> PerfCounters`` with a truthy ``fleet_capable``
    #: marker (e.g. :class:`repro.obs.perf.PerfCountersFactory`).  One
    #: counters object profiles the whole fleet — no scalar fallback.
    perf_factory: Optional[Callable[[], object]] = None


def plans_compatible(a: LanePlan, b: LanePlan) -> bool:
    """Whether two plans may share a fleet (same config and windows)."""
    return (
        a.config == b.config
        and a.warmup_cycles == b.warmup_cycles
        and a.measure_cycles == b.measure_cycles
        and a.drain == b.drain
        and a.latency_sample_limit == b.latency_sample_limit
        and a.tracer_factory == b.tracer_factory
        and a.perf_factory == b.perf_factory
    )


def run_fleet_plans(
    plans: Sequence[LanePlan], tracer=None
) -> List[SimulationResult]:
    """Run a batch of compatible lane plans through one fleet kernel.

    Pass a :class:`~repro.obs.tracebin.FleetTracer` to capture every
    lane's binary event stream; otherwise one is created when the plans
    carry a fleet-capable ``tracer_factory`` (and dropped with the
    simulation, exactly like the scalar measurement path drops its
    per-run tracer).
    """
    if not plans:
        return []
    first = plans[0]
    for plan in plans[1:]:
        if not plans_compatible(first, plan):
            raise ValueError("fleet lanes must share config and windows")
    if tracer is None and first.tracer_factory is not None:
        from repro.obs.tracebin import DEFAULT_CAPACITY, FleetTracer

        tracer = FleetTracer(
            len(plans),
            capacity=getattr(
                first.tracer_factory, "capacity", DEFAULT_CAPACITY
            ),
        )
    perf = None
    if first.perf_factory is not None:
        perf = first.perf_factory()
    sim = FleetSimulation(
        first.config,
        [plan.traffic_factory() for plan in plans],
        [plan.faults for plan in plans],
        warmup_cycles=first.warmup_cycles,
        latency_sample_limit=first.latency_sample_limit,
        tracer=tracer,
        perf=perf,
    )
    return sim.run(first.measure_cycles, drain=first.drain)


def verify_fleet_parity(
    config: HiRiseConfig,
    schedule: Optional[FaultSchedule] = None,
    load: float = 0.9,
    seed: int = 0,
    measure_cycles: int = 300,
    warmup_cycles: int = 40,
    lanes: int = 4,
    drain: bool = False,
    traffic_factories: Optional[Sequence[Callable[[], object]]] = None,
    trace: bool = False,
) -> List[str]:
    """Compare each fleet lane against a scalar fast-kernel run.

    Lane ``i`` uses seed ``seed + i`` (or ``traffic_factories[i]``) and a
    private cursor over the shared ``schedule``.  Returns human-readable
    mismatch strings, empty when every lane is bit-identical.

    With ``trace=True`` both sides also run binary tracers (a shared
    :class:`~repro.obs.tracebin.FleetTracer` on the fleet, one
    :class:`~repro.obs.tracebin.BinaryTracer` per scalar run) and each
    lane's event stream is pinned equal to the scalar stream.
    """
    from repro.core.hirise import HiRiseSwitch
    from repro.network.engine import Simulation
    from repro.traffic.uniform import UniformRandomTraffic

    if traffic_factories is None:
        def make_factory(lane_seed):
            return lambda: UniformRandomTraffic(
                config.radix, load, seed=lane_seed
            )

        traffic_factories = [make_factory(seed + i) for i in range(lanes)]
    plans = [
        LanePlan(
            config=config,
            traffic_factory=factory,
            faults=schedule,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            drain=drain,
        )
        for factory in traffic_factories
    ]
    fleet_tracer = None
    if trace:
        from repro.obs.tracebin import FleetTracer

        fleet_tracer = FleetTracer(len(plans), capacity=None)
    fleet_results = run_fleet_plans(plans, tracer=fleet_tracer)
    fleet_columns = (
        fleet_tracer.columns() if fleet_tracer is not None else None
    )
    fields = (
        "packets_injected",
        "packets_ejected",
        "flits_ejected",
        "cycles",
        "packet_latencies",
        "per_input_ejected",
        "per_input_latency_sum",
        "per_output_ejected",
    )
    mismatches = []
    for lane, (plan, fleet) in enumerate(zip(plans, fleet_results)):
        scalar_tracer = None
        if trace:
            from repro.obs.tracebin import BinaryTracer

            scalar_tracer = BinaryTracer(capacity=None)
        switch = HiRiseSwitch(
            config, tracer=scalar_tracer, faults=plan.faults
        )
        sim = Simulation(
            switch, plan.traffic_factory(), warmup_cycles=plan.warmup_cycles
        )
        scalar = sim.run(plan.measure_cycles, drain=plan.drain)
        for name in fields:
            if getattr(scalar, name) != getattr(fleet, name):
                mismatches.append(
                    f"fleet lane {lane}: result field {name!r} differs "
                    f"(scalar={getattr(scalar, name)!r}, "
                    f"fleet={getattr(fleet, name)!r})"
                )
        if trace:
            lane_events = fleet_tracer.lane_tracer(
                lane, columns=fleet_columns
            ).events
            scalar_events = scalar_tracer.events
            if lane_events != scalar_events:
                limit = min(len(lane_events), len(scalar_events))
                first_diff = next(
                    (
                        k for k in range(limit)
                        if lane_events[k] != scalar_events[k]
                    ),
                    limit,
                )
                mismatches.append(
                    f"fleet lane {lane}: traced event stream differs at "
                    f"event {first_diff} (scalar has "
                    f"{len(scalar_events)} events, fleet "
                    f"{len(lane_events)}; scalar="
                    f"{scalar_events[first_diff:first_diff + 3]!r}, "
                    f"fleet={lane_events[first_diff:first_diff + 3]!r})"
                )
    return mismatches

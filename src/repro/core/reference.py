"""Frozen seed implementation of the Hi-Rise switch (golden reference).

:class:`ReferenceHiRiseSwitch` is the original, un-optimized cycle kernel
kept verbatim from the seed tree.  It exists for exactly two purposes:

* **golden-trace equivalence** — the optimized fast-path kernel in
  :mod:`repro.core.hirise` must produce bit-identical
  :class:`~repro.network.engine.SimulationResult`\\ s to this class for
  every arbitration scheme x allocation policy under the same seeds
  (``tests/core/test_golden_equivalence.py``);
* **performance baselining** — ``scripts/bench_kernel.py --reference``
  measures it so the before/after cycles/s trajectory stays visible.

Do not optimize or otherwise modify the arbitration logic here; any
behavioural change belongs in :mod:`repro.core.hirise` and must keep the
equivalence suite green.

Structure (Section III-A): the N inputs and N outputs are split evenly over
L layers.  Each layer has a *local switch* routing its N/L inputs to N/L
dedicated intermediate outputs (one per final output on the same layer) and
to ``c`` layer-to-layer channels (L2LCs) toward each other layer, and an
*inter-layer switch* of N/L sub-blocks, each arbitrating one final output
among the ``c*(L-1)`` incoming L2LCs plus the local intermediate output.

Arbitration is two-phase but completes in a single cycle (two-phase
clocking, Section IV-C):

* **Phase 1 (local)** — every idle input presents one request (for the
  intermediate output dedicated to a same-layer destination, or for an
  L2LC chosen by the allocation policy); each free local resource picks a
  winner by LRG.  *The local priority vector is not updated yet.*
* **Phase 2 (inter-layer)** — each free final output arbitrates among the
  local winners reaching it (over L2LCs and the local intermediate) using
  the configured scheme (L2L-LRG / WLRG / CLRG).  Only a final-output win
  back-propagates the local LRG update, which is what guarantees
  starvation freedom: a repeatedly losing input keeps its local priority
  while rising at the inter-layer switch.

A winning packet locks its whole path — input port, local resource (L2LC or
intermediate output), and final output — until its tail flit transfers, and
data moves end-to-end in one cycle per flit, exactly like the flat switch.
"""

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arbitration.age import AgeArbiter
from repro.arbitration.clrg import CLRGArbiter
from repro.arbitration.lrg import LRGArbiter
from repro.arbitration.round_robin import RoundRobinArbiter
from repro.arbitration.wlrg import WLRGArbiter
from repro.core.channels import make_allocation
from repro.core.config import ArbitrationScheme, HiRiseConfig
from repro.faults import FaultCursor, FaultSchedule, apply_fault_events
from repro.network.engine import SwitchModel
from repro.network.flit import Flit
from repro.network.packet import Packet
from repro.network.port import InputPort
from repro.obs.trace import (
    CLRG_HALVE,
    COOL,
    EJECT,
    P1_GRANT,
    P2_BLOCK,
    P2_GRANT,
    REASON_CHANNEL_FAILED,
    REASON_OUTPUT_BUSY,
    REASON_OUTPUT_COOLING,
    REASON_RESOURCE_BUSY,
    REASON_RESOURCE_COOLING,
    VIA_BLOCK,
)

# Resource keys: ("int", layer, local_output) for intermediate outputs,
# ("ch", src_layer, dst_layer, channel) for layer-to-layer channels.
ResourceKey = Tuple


def _reference_halve_hook(tracer, output: int):
    """CLRG counter-bank callback: records a halving against ``output``."""

    def on_halve(halvings: int) -> None:
        tracer.emit(CLRG_HALVE, output, halvings)

    return on_halve


@dataclass
class _ReferenceLocalWin:
    """Outcome of one phase-1 (local switch) arbitration."""

    input_port: int          # global id of the winning primary input
    dst_output: int          # global final output it requests
    weight: int              # live requestor count (for WLRG)
    resource: ResourceKey    # the resource this winner would occupy
    local_arbiter: LRGArbiter
    local_slot: int          # slot to update in the local arbiter on a win
    age: int = 0             # head-flit wait in cycles (for AGE arbitration)


class ReferenceHiRiseSwitch(SwitchModel):
    """Seed-version cycle-accurate Hi-Rise switch (golden reference).

    Args:
        config: Architectural parameters (radix, layers, channel
            multiplicity, allocation policy, arbitration scheme).
        tracer: Optional :class:`repro.obs.SwitchTracer`; records the
            same cycle-level events as the fast kernel (observe-only, so
            arbitration decisions are untouched).
        faults: Optional :class:`repro.faults.FaultSchedule`; applied
            through the same per-cycle hook as the fast kernel (events
            due at a cycle land at the very start of ``step()``), so
            faulted runs stay bit-identical across kernels.
    """

    def __init__(
        self,
        config: Optional[HiRiseConfig] = None,
        tracer: Optional[object] = None,
        faults: Optional[FaultSchedule] = None,
        invariants: Optional[object] = None,
        perf: Optional[object] = None,
    ) -> None:
        self.config = config or HiRiseConfig()
        cfg = self.config
        self.num_ports = cfg.radix
        self.allocation = make_allocation(cfg)
        self.ports: List[InputPort] = [
            InputPort(i, cfg.port_config) for i in range(cfg.radix)
        ]

        ports_per_layer = cfg.ports_per_layer
        # Phase-1 arbiters, all over local input indices.
        self.int_arbiters: Dict[Tuple[int, int], LRGArbiter] = {
            (layer, j): LRGArbiter(ports_per_layer)
            for layer in range(cfg.layers)
            for j in range(ports_per_layer)
        }
        self.chan_arbiters: Dict[Tuple[int, int, int], LRGArbiter] = {}
        self.pair_arbiters: Dict[Tuple[int, int], LRGArbiter] = {}
        for src in range(cfg.layers):
            for dst in range(cfg.layers):
                if src == dst:
                    continue
                self.pair_arbiters[(src, dst)] = LRGArbiter(ports_per_layer)
                for channel in range(cfg.channel_multiplicity):
                    self.chan_arbiters[(src, dst, channel)] = LRGArbiter(
                        ports_per_layer
                    )

        # Phase-2 arbiters: one per final output (inter-layer sub-block).
        self.subblock_arbiters: Dict[int, object] = {
            output: self._make_subblock_arbiter() for output in range(cfg.radix)
        }

        # Path state.
        self.resource_owner: Dict[ResourceKey, int] = {}
        self.output_owner: List[Optional[int]] = [None] * cfg.radix
        # input -> (resource, output) of its live connection.
        self.connections: Dict[int, Tuple[ResourceKey, int]] = {}
        # input -> cycle its live (or most recent) path was granted.
        self.grant_cycle: Dict[int, int] = {}
        self._arb_cycle = -1
        # Paths whose tail transferred this cycle (arbitration blackout).
        self._cooling_inputs: set = set()
        self._cooling_outputs: set = set()
        self._cooling_resources: set = set()
        # L2LCs with faulty TSV bundles: never granted (robustness ext.).
        self.failed_channels = frozenset(cfg.failed_channels)
        # Stuck inputs (dynamic faults): masked from arbitration via
        # _arb_ports, which aliases self.ports until a fault narrows it.
        self.stuck_inputs: set = set()
        self._arb_ports: List[InputPort] = self.ports
        self._fault_cursor = FaultCursor(faults) if faults is not None else None

        self._tracer = tracer
        if tracer is not None:
            tracer.bind(self)
            # Tuple resource key -> flat id, so the reference kernel
            # emits the same resource ids as the fast kernel.
            self._rid_of_key = {
                key: rid
                for rid, key in enumerate(cfg.resource_key_table)
            }
            for output, arbiter in self.subblock_arbiters.items():
                counters = getattr(arbiter, "counters", None)
                if counters is not None:
                    counters.on_halve = _reference_halve_hook(tracer, output)

        # Opt-in phase-level performance counters, wired exactly like
        # the fast kernel (clock reads only, bit-identical attached).
        self._perf = perf
        if perf is not None:
            perf.bind(self)
            self.inject = self._inject_perf  # type: ignore[method-assign]

        # Opt-in runtime invariant verification (repro.check), wired
        # after the tracer exactly like the fast kernel: the checker
        # only observes, so checked runs stay bit-identical.
        self._invariants = invariants
        if invariants is not None:
            invariants.bind(self)

    def _make_subblock_arbiter(self):
        cfg = self.config
        slots = cfg.subblock_inputs
        if cfg.arbitration is ArbitrationScheme.L2L_LRG:
            return LRGArbiter(slots)
        if cfg.arbitration is ArbitrationScheme.WLRG:
            return WLRGArbiter(slots)
        if cfg.arbitration is ArbitrationScheme.CLRG:
            if cfg.qos_weights is not None:
                from repro.arbitration.qos import QoSCLRGArbiter

                return QoSCLRGArbiter(
                    slots, cfg.radix, cfg.qos_weights, cfg.num_classes
                )
            return CLRGArbiter(slots, cfg.radix, cfg.num_classes)
        if cfg.arbitration is ArbitrationScheme.L2L_RR:
            return RoundRobinArbiter(slots)
        if cfg.arbitration is ArbitrationScheme.AGE:
            return AgeArbiter(slots)
        raise ValueError(f"unknown arbitration scheme: {cfg.arbitration}")

    def healthy_channel(self, src_layer: int, dst_layer: int, nominal: int) -> int:
        """Remap a binned channel choice around failed TSV bundles.

        Returns the nominal channel when healthy, otherwise the next
        healthy channel toward the same destination layer (configuration
        validation guarantees one exists).
        """
        c = self.config.channel_multiplicity
        for offset in range(c):
            channel = (nominal + offset) % c
            if (src_layer, dst_layer, channel) not in self.failed_channels:
                return channel
        raise AssertionError("config validation guarantees a healthy channel")

    def _healthy_channel_or_none(
        self, src_layer: int, dst_layer: int, nominal: int
    ) -> Optional[int]:
        """Like :meth:`healthy_channel`, but None when the pair is dead.

        Dynamic faults (unlike static config validation) may fail every
        channel between a layer pair; viability uses this variant so a
        partition degrades the switch instead of crashing it.
        """
        c = self.config.channel_multiplicity
        for offset in range(c):
            channel = (nominal + offset) % c
            if (src_layer, dst_layer, channel) not in self.failed_channels:
                return channel
        return None

    def _refresh_fault_state(self) -> None:
        """Rebuild fault-dependent state after channel/input events.

        The reference kernel consults ``failed_channels`` dynamically,
        so only the arbitration port list needs recomputing.
        """
        if self.stuck_inputs:
            stuck = self.stuck_inputs
            self._arb_ports = [
                port for port in self.ports if port.port_id not in stuck
            ]
        else:
            self._arb_ports = self.ports

    # ------------------------------------------------------------------
    # SwitchModel interface
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        if not 0 <= packet.src < self.num_ports:
            raise ValueError(f"source port {packet.src} out of range")
        if not 0 <= packet.dst < self.num_ports:
            raise ValueError(f"destination port {packet.dst} out of range")
        self.ports[packet.src].enqueue_packet(packet)
        if self._tracer is not None:
            self._tracer.inject(
                packet.created_cycle, packet.src, packet.dst,
                packet.num_flits, packet.packet_id,
            )

    def _inject_perf(self, packet: Packet) -> None:
        perf = self._perf
        start = time.perf_counter_ns()
        ReferenceHiRiseSwitch.inject(self, packet)
        perf.add("inject", time.perf_counter_ns() - start, 1)

    def step(self, cycle: int) -> List[Flit]:
        if self._perf is not None:
            return self._step_perf(cycle)
        if self._tracer is not None:
            return self._step_traced(cycle)
        # Scheduled faults land before anything else in the cycle, so a
        # channel failing at cycle k is masked from cycle k's arbitration
        # (its in-flight packet, if any, still quiesces via transmit).
        cursor = self._fault_cursor
        if cursor is not None:
            due = cursor.take(cycle)
            if due:
                apply_fault_events(self, due)
        # Paths released by a tail this cycle carried data on their wires,
        # so they cannot also arbitrate this cycle: every packet pays one
        # arbitration cycle ("arbitrate or transmit in a single cycle").
        self._cooling_inputs.clear()
        self._cooling_outputs.clear()
        self._cooling_resources.clear()
        ejected = self._transmit(cycle)
        for port in self.ports:
            port.refill(cycle)
        self._arbitrate(cycle)
        if self._invariants is not None:
            self._invariants.after_step(self, cycle, ejected)
        return ejected

    def _step_perf(self, cycle: int) -> List[Flit]:
        """Perf-counting step twin (see the fast kernel's _step_perf).

        The reference kernel's phases are already separate calls, so
        sampled cycles just put a monotonic read between them; traced
        sampled cycles are attributed whole as ``step``.
        """
        perf = self._perf
        perf.cycles_total += 1
        if cycle % perf.stride:
            return self._step_unsampled(cycle)
        perf.cycles_sampled += 1
        ns = time.perf_counter_ns
        if self._tracer is not None:
            t0 = ns()
            ejected = self._step_traced(cycle)
            perf.add("step", ns() - t0, len(ejected))
            return ejected
        cursor = self._fault_cursor
        if cursor is not None:
            due = cursor.take(cycle)
            if due:
                apply_fault_events(self, due)
        self._cooling_inputs.clear()
        self._cooling_outputs.clear()
        self._cooling_resources.clear()
        t1 = ns()
        ejected = self._transmit(cycle)
        t2 = ns()
        for port in self.ports:
            port.refill(cycle)
        t3 = ns()
        self._arb_cycle = cycle
        candidate_vcs: Dict[int, int] = {}
        local_winners = self._phase1_local(candidate_vcs, cycle)
        t4 = ns()
        self._phase2_interlayer(local_winners, candidate_vcs)
        t5 = ns()
        perf.add("transmit", t2 - t1, len(ejected))
        perf.add("refill", t3 - t2)
        perf.add("arbitrate", t4 - t3, len(local_winners))
        perf.add("commit", t5 - t4)
        if self._invariants is not None:
            self._invariants.after_step(self, cycle, ejected)
        return ejected

    def _step_unsampled(self, cycle: int) -> List[Flit]:
        # Twin of the untimed step body (step() minus the dispatches).
        if self._tracer is not None:
            return self._step_traced(cycle)
        cursor = self._fault_cursor
        if cursor is not None:
            due = cursor.take(cycle)
            if due:
                apply_fault_events(self, due)
        self._cooling_inputs.clear()
        self._cooling_outputs.clear()
        self._cooling_resources.clear()
        ejected = self._transmit(cycle)
        for port in self.ports:
            port.refill(cycle)
        self._arbitrate(cycle)
        if self._invariants is not None:
            self._invariants.after_step(self, cycle, ejected)
        return ejected

    def occupancy(self) -> int:
        return sum(port.total_occupancy() for port in self.ports)

    # ------------------------------------------------------------------
    # Transmit phase
    # ------------------------------------------------------------------
    def _transmit(self, cycle: int) -> List[Flit]:
        ejected: List[Flit] = []
        for port in self.ports:
            if port.active_has_flit():
                flit = port.transmit()
                flit.ejected_cycle = cycle
                ejected.append(flit)
                if flit.is_tail:
                    resource, output = self.connections.pop(flit.src)
                    del self.resource_owner[resource]
                    self.output_owner[output] = None
                    self._cooling_inputs.add(flit.src)
                    self._cooling_outputs.add(output)
                    self._cooling_resources.add(resource)
        return ejected

    # ------------------------------------------------------------------
    # Arbitration (two phases within one cycle)
    # ------------------------------------------------------------------
    def _arbitrate(self, cycle: int) -> None:
        self._arb_cycle = cycle
        candidate_vcs: Dict[int, int] = {}
        local_winners = self._phase1_local(candidate_vcs, cycle)
        self._phase2_interlayer(local_winners, candidate_vcs)

    def _viable_for(self, port_id: int):
        """Predicate: can this head flit's path be granted this cycle?

        The cross-points expose channel-free status (Fig 6), so an input
        never wastes its single request on a busy final output or a busy
        L2LC; another VC's head gets the request lines instead.
        """
        cfg = self.config
        src_layer = cfg.layer_of_port(port_id)
        local_input = cfg.local_index(port_id)

        def resource_free(resource: ResourceKey) -> bool:
            return (
                resource not in self.resource_owner
                and resource not in self._cooling_resources
            )

        def viable(flit: Flit) -> bool:
            if self.output_owner[flit.dst] is not None:
                return False
            if flit.dst in self._cooling_outputs:
                return False
            dst_layer = cfg.layer_of_port(flit.dst)
            if dst_layer == src_layer:
                return resource_free(("int", src_layer, cfg.local_index(flit.dst)))
            if self.allocation.is_binned:
                channel = self._healthy_channel_or_none(
                    src_layer, dst_layer,
                    self.allocation.channel_for(local_input, flit.dst),
                )
                if channel is None:  # dynamic faults killed the whole pair
                    return False
                return resource_free(("ch", src_layer, dst_layer, channel))
            return any(
                resource_free(("ch", src_layer, dst_layer, channel))
                for channel in range(cfg.channel_multiplicity)
                if (src_layer, dst_layer, channel) not in self.failed_channels
            )

        return viable

    def _phase1_local(
        self, candidate_vcs: Dict[int, int], cycle: int
    ) -> Dict[ResourceKey, _ReferenceLocalWin]:
        """Collect requests and run every free local resource's arbitration."""
        cfg = self.config
        int_requests: Dict[Tuple[int, int], List[int]] = {}
        chan_requests: Dict[Tuple[int, int, int], List[Tuple[int, int]]] = {}
        pair_requests: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        # Head-flit wait per (layer, local input), for AGE arbitration.
        ages: Dict[Tuple[int, int], int] = {}

        # _arb_ports aliases self.ports until a stuck-input fault
        # narrows it; stuck ports never present requests.
        for port in self._arb_ports:
            if port.port_id in self._cooling_inputs:
                continue
            vc = port.candidate_vc(self._viable_for(port.port_id))
            if vc is None:
                continue
            front = port.vcs[vc].front()
            assert front is not None and front.is_head
            candidate_vcs[port.port_id] = vc
            dst = front.dst
            src_layer = cfg.layer_of_port(port.port_id)
            local_input = cfg.local_index(port.port_id)
            ages[(src_layer, local_input)] = cycle - front.created_cycle
            dst_layer = cfg.layer_of_port(dst)
            if dst_layer == src_layer:
                key = (src_layer, cfg.local_index(dst))
                int_requests.setdefault(key, []).append(local_input)
            elif self.allocation.is_binned:
                channel = self.healthy_channel(
                    src_layer, dst_layer,
                    self.allocation.channel_for(local_input, dst),
                )
                key = (src_layer, dst_layer, channel)
                chan_requests.setdefault(key, []).append((local_input, dst))
            else:
                key = (src_layer, dst_layer)
                pair_requests.setdefault(key, []).append((local_input, dst))

        winners: Dict[ResourceKey, _ReferenceLocalWin] = {}

        for (layer, local_out), requestors in int_requests.items():
            resource = ("int", layer, local_out)
            if resource in self.resource_owner or resource in self._cooling_resources:
                continue
            arbiter = self.int_arbiters[(layer, local_out)]
            local_win = arbiter.arbitrate(requestors)
            assert local_win is not None
            winners[resource] = _ReferenceLocalWin(
                input_port=cfg.global_port(layer, local_win),
                dst_output=cfg.global_port(layer, local_out),
                weight=len(requestors),
                resource=resource,
                local_arbiter=arbiter,
                local_slot=local_win,
                age=ages[(layer, local_win)],
            )

        for (src, dst_layer, channel), requests in chan_requests.items():
            resource = ("ch", src, dst_layer, channel)
            if resource in self.resource_owner or resource in self._cooling_resources:
                continue
            arbiter = self.chan_arbiters[(src, dst_layer, channel)]
            dst_by_input = dict(requests)
            local_win = arbiter.arbitrate(dst_by_input.keys())
            assert local_win is not None
            winners[resource] = _ReferenceLocalWin(
                input_port=cfg.global_port(src, local_win),
                dst_output=dst_by_input[local_win],
                weight=len(requests),
                resource=resource,
                local_arbiter=arbiter,
                local_slot=local_win,
                age=ages[(src, local_win)],
            )

        for (src, dst_layer), requests in pair_requests.items():
            free_channels = [
                channel
                for channel in range(cfg.channel_multiplicity)
                if ("ch", src, dst_layer, channel) not in self.resource_owner
                and ("ch", src, dst_layer, channel) not in self._cooling_resources
                and (src, dst_layer, channel) not in self.failed_channels
            ]
            if not free_channels:
                continue
            arbiter = self.pair_arbiters[(src, dst_layer)]
            dst_by_input = dict(requests)
            ranked = sorted(dst_by_input.keys(), key=arbiter.rank)
            # The priority mux serialises: the top-ranked requestors take
            # the free channels in order.
            weight = -(-len(requests) // cfg.channel_multiplicity)  # ceil
            for channel, local_win in zip(free_channels, ranked):
                resource = ("ch", src, dst_layer, channel)
                winners[resource] = _ReferenceLocalWin(
                    input_port=cfg.global_port(src, local_win),
                    dst_output=dst_by_input[local_win],
                    weight=weight,
                    resource=resource,
                    local_arbiter=arbiter,
                    local_slot=local_win,
                    age=ages[(src, local_win)],
                )
        return winners

    def _phase2_interlayer(
        self,
        local_winners: Dict[ResourceKey, _ReferenceLocalWin],
        candidate_vcs: Dict[int, int],
    ) -> None:
        """Per-sub-block arbitration among local winners; lock paths."""
        cfg = self.config
        # Group candidates by final output; each local winner targets
        # exactly one output and each input appears at most once, so the
        # sub-blocks are independent.
        by_output: Dict[int, List[Tuple[int, _ReferenceLocalWin]]] = {}
        for resource, win in local_winners.items():
            output = win.dst_output
            if self.output_owner[output] is not None:
                continue
            if output in self._cooling_outputs:
                continue
            if resource[0] == "int":
                slot = cfg.local_slot
            else:
                _, src, dst_layer, channel = resource
                slot = cfg.slot_of_channel(dst_layer, src, channel)
            by_output.setdefault(output, []).append((slot, win))

        for output, candidates in by_output.items():
            winner = self._subblock_arbitrate(output, candidates)
            if winner is None:
                continue
            self._establish(winner, output, candidate_vcs)

    def _subblock_arbitrate(
        self, output: int, candidates: List[Tuple[int, "_ReferenceLocalWin"]]
    ) -> Optional[_ReferenceLocalWin]:
        """Run the configured scheme for one sub-block; commit its state."""
        cfg = self.config
        arbiter = self.subblock_arbiters[output]
        wins_by_slot = {slot: win for slot, win in candidates}

        if cfg.arbitration in (
            ArbitrationScheme.L2L_LRG, ArbitrationScheme.L2L_RR
        ):
            slot = arbiter.arbitrate(wins_by_slot.keys())
            if slot is None:
                return None
            arbiter.update(slot)
            return wins_by_slot[slot]

        if cfg.arbitration is ArbitrationScheme.AGE:
            request = arbiter.arbitrate_requests(
                (slot, win.age) for slot, win in candidates
            )
            if request is None:
                return None
            slot, age = request
            arbiter.commit(slot, age)
            return wins_by_slot[slot]

        if cfg.arbitration is ArbitrationScheme.WLRG:
            request = arbiter.arbitrate_requests(
                (slot, win.weight) for slot, win in candidates
            )
            if request is None:
                return None
            slot, weight = request
            arbiter.commit(slot, weight)
            return wins_by_slot[slot]

        # CLRG: class by primary input, LRG over slots to break ties.
        request = arbiter.arbitrate_requests(
            (slot, win.input_port) for slot, win in candidates
        )
        if request is None:
            return None
        slot, primary_input = request
        arbiter.commit(slot, primary_input)
        return wins_by_slot[slot]

    def _establish(
        self, win: _ReferenceLocalWin, output: int, candidate_vcs: Dict[int, int]
    ) -> None:
        """Lock the winner's full path and back-propagate the local update."""
        port = self.ports[win.input_port]
        port.grant(candidate_vcs[win.input_port])
        self.resource_owner[win.resource] = win.input_port
        self.output_owner[output] = win.input_port
        self.connections[win.input_port] = (win.resource, output)
        self.grant_cycle[win.input_port] = self._arb_cycle
        # The local switch priority update is triggered only by the final
        # output win (Section III-B.1).
        win.local_arbiter.update(win.local_slot)

    # ------------------------------------------------------------------
    # Traced step (selected at construction when a tracer is given)
    # ------------------------------------------------------------------
    def _step_traced(self, cycle: int) -> List[Flit]:
        """Traced step(): identical state transitions plus event emission.

        Emits the same event stream as the fast kernel's traced path
        (flat resource ids via ``_rid_of_key``), derived from the
        unchanged transmit/refill/arbitrate helpers.
        """
        tracer = self._tracer
        tracer.cycle = cycle
        cursor = self._fault_cursor
        if cursor is not None:
            due = cursor.take(cycle)
            if due:
                apply_fault_events(self, due)
        self._cooling_inputs.clear()
        self._cooling_outputs.clear()
        self._cooling_resources.clear()
        conns_before = dict(self.connections)
        ejected = self._transmit(cycle)
        emit = tracer.emit
        rid_of_key = self._rid_of_key
        for flit in ejected:
            emit(EJECT, flit.src, flit.dst, flit.seq, 1 if flit.is_tail else 0)
        grant_cycle = self.grant_cycle
        for src in sorted(self._cooling_inputs):
            resource, output = conns_before[src]
            emit(COOL, rid_of_key[resource], src, output,
                 grant_cycle.get(src, -1))
        for port in self.ports:
            port.refill(cycle)
        self._trace_viability()
        self._arb_cycle = cycle
        candidate_vcs: Dict[int, int] = {}
        winners = self._phase1_local(candidate_vcs, cycle)
        for resource, win in winners.items():
            emit(P1_GRANT, rid_of_key[resource], win.input_port,
                 win.dst_output, win.weight)
        self._phase2_interlayer(winners, candidate_vcs)
        # Every phase-1 winner was an idle input, so a connection present
        # after phase 2 can only be this cycle's grant.
        connections = self.connections
        is_clrg = self.config.arbitration is ArbitrationScheme.CLRG
        for resource, win in winners.items():
            input_port = win.input_port
            entry = connections.get(input_port)
            if entry is not None:
                output = entry[1]
                cls = -1
                if is_clrg:
                    cls = int(
                        self.subblock_arbiters[output]
                        .counters.class_of(input_port)
                    )
                emit(P2_GRANT, rid_of_key[resource], input_port, output, cls)
            else:
                emit(P2_BLOCK, rid_of_key[resource], input_port,
                     win.dst_output)
        if self._invariants is not None:
            self._invariants.after_step(self, cycle, ejected)
        return ejected

    def _trace_viability(self) -> None:
        """Emit ``via_block`` for idle inputs with head flits but no
        viable request (same reason decomposition as the fast kernel)."""
        cfg = self.config
        emit = self._tracer.emit
        rid_of_key = self._rid_of_key
        for port in self._arb_ports:
            port_id = port.port_id
            if port_id in self._cooling_inputs or port.active_vc is not None:
                continue
            viable_for = self._viable_for(port_id)
            heads = []
            viable = False
            for vc in port.vcs:
                head = vc.front()
                if head is not None and head.is_head:
                    if viable_for(head):
                        viable = True
                        break
                    heads.append(head)
            if viable or not heads:
                continue
            dst = heads[0].dst
            if self.output_owner[dst] is not None:
                reason = REASON_OUTPUT_BUSY
            elif dst in self._cooling_outputs:
                reason = REASON_OUTPUT_COOLING
            else:
                src_layer = cfg.layer_of_port(port_id)
                dst_layer = cfg.layer_of_port(dst)
                if dst_layer == src_layer:
                    keys = [("int", src_layer, cfg.local_index(dst))]
                elif self.allocation.is_binned:
                    channel = self._healthy_channel_or_none(
                        src_layer, dst_layer,
                        self.allocation.channel_for(
                            cfg.local_index(port_id), dst
                        ),
                    )
                    keys = (
                        [] if channel is None
                        else [("ch", src_layer, dst_layer, channel)]
                    )
                else:
                    keys = [
                        ("ch", src_layer, dst_layer, channel)
                        for channel in range(cfg.channel_multiplicity)
                        if (src_layer, dst_layer, channel)
                        not in self.failed_channels
                    ]
                if not keys:
                    # Dynamic faults killed every channel toward the
                    # destination layer.
                    reason = REASON_CHANNEL_FAILED
                else:
                    reason = REASON_RESOURCE_COOLING
                    for key in keys:
                        if (key in self.resource_owner
                                and key not in self._cooling_resources):
                            reason = REASON_RESOURCE_BUSY
                            break
            emit(VIA_BLOCK, port_id, dst, reason)

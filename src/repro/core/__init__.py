"""The Hi-Rise 3D switch — the paper's primary contribution.

``HiRiseSwitch`` is a cycle-accurate model of the hierarchical 3D switch:
N inputs/outputs split over L layers, a local switch and an inter-layer
switch per layer, and ``c`` dedicated layer-to-layer channels (L2LCs)
between every pair of layers.  Arbitration is two-phase within a single
cycle and supports the paper's three schemes (baseline layer-to-layer LRG,
weighted LRG, and the proposed class-based LRG).
"""

from repro.core.config import (
    AllocationPolicy,
    ArbitrationScheme,
    HiRiseConfig,
)
from repro.core.channels import (
    InputBinnedAllocation,
    OutputBinnedAllocation,
    PriorityAllocation,
    make_allocation,
)
from repro.core.hirise import HiRiseSwitch
from repro.core.reference import ReferenceHiRiseSwitch
from repro.core.fleet import (
    FLEET_AVAILABLE,
    FleetKernel,
    FleetSimulation,
    LanePlan,
    fleet_supports,
    plans_compatible,
    run_fleet_plans,
    verify_fleet_parity,
)

__all__ = [
    "AllocationPolicy",
    "ArbitrationScheme",
    "HiRiseConfig",
    "HiRiseSwitch",
    "ReferenceHiRiseSwitch",
    "InputBinnedAllocation",
    "OutputBinnedAllocation",
    "PriorityAllocation",
    "make_allocation",
    "FLEET_AVAILABLE",
    "FleetKernel",
    "FleetSimulation",
    "LanePlan",
    "fleet_supports",
    "plans_compatible",
    "run_fleet_plans",
    "verify_fleet_parity",
]

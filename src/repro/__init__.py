"""repro — a full reproduction of *Hi-Rise: A High-Radix Switch for 3D
Integration with Single-cycle Arbitration* (MICRO 2014).

Public API highlights:

* :class:`repro.core.HiRiseSwitch` / :class:`repro.core.HiRiseConfig` —
  the paper's hierarchical 3D switch with CLRG arbitration;
* :class:`repro.switches.SwizzleSwitch2D` and
  :class:`repro.switches.FoldedSwitch3D` — the 2D and folded baselines;
* :mod:`repro.traffic` — synthetic traffic patterns (uniform random,
  hotspot, bursty, adversarial, ...);
* :mod:`repro.metrics` — latency/throughput/fairness statistics and the
  saturation-throughput search;
* :mod:`repro.physical` — calibrated 32 nm area/frequency/energy/TSV cost
  models;
* :mod:`repro.manycore` — the 64-core application-level simulator
  (Table VI);
* :mod:`repro.harness` — regenerates every table and figure of the paper.
"""

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.switches import FoldedSwitch3D, SwizzleSwitch2D
from repro.network import FLIT_BITS, PACKET_FLITS, Simulation

__version__ = "1.0.0"

__all__ = [
    "HiRiseConfig",
    "HiRiseSwitch",
    "SwizzleSwitch2D",
    "FoldedSwitch3D",
    "Simulation",
    "FLIT_BITS",
    "PACKET_FLITS",
    "__version__",
]

"""Fig 9(a): operating frequency versus radix.

Paper shapes: the 2D switch is faster at low radix (the hierarchy's
two-stage overhead dominates small switches); beyond ~radix 32-48 every
3D configuration is faster and the gap widens; the 1/2/4-channel curves
converge as radix grows; at radix 64 the anchors are 1.69 GHz (2D) and
2.24/2.46/2.64 GHz (4/2/1-channel).
"""

import pytest

from conftest import emit, run_once
from repro.harness import fig9a_frequency_vs_radix, render_series


def test_fig9a_reproduction(benchmark):
    series = run_once(benchmark, fig9a_frequency_vs_radix)
    emit(render_series(series, "Fig 9(a): frequency vs radix",
                       ["radix", "GHz"]))
    flat = dict(series["2D"])
    c4 = dict(series["3D 4-Channel"])
    c2 = dict(series["3D 2-Channel"])
    c1 = dict(series["3D 1-Channel"])

    # Anchors at radix 64.
    assert flat[64] == pytest.approx(1.69, rel=0.03)
    assert c4[64] == pytest.approx(2.24, rel=0.03)
    assert c2[64] == pytest.approx(2.46, rel=0.03)
    assert c1[64] == pytest.approx(2.64, rel=0.03)

    # 2D wins at low radix, loses beyond the crossover.
    for radix in (8, 16, 32):
        assert flat[radix] > c4[radix]
    for radix in (48, 64, 96, 128):
        assert c4[radix] > flat[radix]

    # The gap widens with radix.
    assert c4[128] - flat[128] > c4[64] - flat[64] > 0

    # Channel-multiplicity curves converge at high radix.
    assert (c1[128] / c4[128]) < (c1[16] / c4[16])

    # Every curve decreases monotonically with radix.
    for name, points in series.items():
        freqs = [f for _, f in points]
        assert freqs == sorted(freqs, reverse=True), name

"""Fig 9(c): energy per 128-bit transaction versus radix.

Paper shapes: 3D energy grows on a much gentler slope than 2D (whose long
unrepeated buses make energy super-linear), so for a fixed energy budget
the 3D switch affords a significantly higher radix; at radix 64 the
anchors are 71 pJ (2D) and 42/39/37 pJ (4/2/1-channel).
"""

import pytest

from conftest import emit, run_once
from repro.harness import fig9c_energy_vs_radix, render_series


def test_fig9c_reproduction(benchmark):
    series = run_once(benchmark, fig9c_energy_vs_radix)
    emit(render_series(series, "Fig 9(c): energy per transaction vs radix",
                       ["radix", "pJ"]))
    flat = dict(series["2D"])
    c4 = dict(series["3D 4-Channel"])
    c1 = dict(series["3D 1-Channel"])

    # Anchors at radix 64.
    assert flat[64] == pytest.approx(71, rel=0.03)
    assert c4[64] == pytest.approx(42, rel=0.03)
    assert c1[64] == pytest.approx(37, rel=0.03)

    # The 2D slope is much steeper at high radix.
    slope_2d = flat[128] - flat[64]
    slope_3d = c4[128] - c4[64]
    assert slope_3d < slope_2d / 4

    # Iso-energy: the 3D switch at radix 128 costs less than 2D at 64.
    assert c4[128] < flat[64]

    # Energy grows monotonically with radix for every configuration.
    for name, points in series.items():
        energies = [e for _, e in points]
        assert energies == sorted(energies), name

"""Extension: kilo-core fabric comparison — Hi-Rise vs 2D routers in a mesh.

Section VI-E argues future kilo-core chips need concentrated high-radix
routers, and that at high radix the 3D switch's clock advantage carries
over to the composed network.  This benchmark builds the Fig 13 topology
at the kilo-core design point — a 2x2 mesh of radix-64 routers with
concentration 48 (192 terminals) — once with Hi-Rise routers at 2.2 GHz
and once with flat 2D routers at 1.69 GHz (each router's modelled clock),
and compares latency and delivered bandwidth in packets/ns under uniform
random terminal-to-terminal traffic at a load the fabric's bisection can
carry (concentration 48 with four parallel links per direction keeps the
router radix at 64).
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.network.engine import Simulation
from repro.physical import cost_of
from repro.switches import SwizzleSwitch2D
from repro.topology import MeshConfig, MeshInterconnect, MeshNetwork
from repro.traffic import UniformRandomTraffic


def build(router: str):
    config = MeshConfig(
        rows=2, cols=2, concentration=48, layers=4,
        links_per_direction=4, layer_aware=True,
    )
    if router == "hirise":
        hirise = HiRiseConfig(radix=64, layers=4, channel_multiplicity=4)
        factory = lambda radix: HiRiseSwitch(hirise)
        frequency = cost_of(hirise).frequency_ghz
    else:
        factory = lambda radix: SwizzleSwitch2D(radix)
        frequency = cost_of("2d").frequency_ghz
    mesh = MeshNetwork(config, factory)
    return MeshInterconnect(mesh), frequency


def measure(router: str, load_per_ns: float = 0.05):
    interconnect, frequency = build(router)
    load_per_cycle = min(1.0, load_per_ns / frequency)
    traffic = UniformRandomTraffic(
        interconnect.num_ports, load_per_cycle, seed=17
    )
    sim = Simulation(interconnect, traffic, warmup_cycles=400)
    result = sim.run(2000)
    return {
        "accepted_per_ns": result.throughput_packets_per_cycle * frequency,
        "latency_ns": result.avg_latency_cycles / frequency,
        "frequency": frequency,
    }


def test_kilocore_fabric_comparison(benchmark):
    results = run_once(
        benchmark,
        lambda: {router: measure(router) for router in ("hirise", "2d")},
    )
    lines = ["Kilo-core fabric: 2x2 mesh of radix-64 routers, 192 terminals"]
    for router, data in results.items():
        lines.append(
            f"  {router:<7} @ {data['frequency']:.2f} GHz : "
            f"{data['accepted_per_ns']:6.2f} pkts/ns accepted, "
            f"latency {data['latency_ns']:.1f} ns"
        )
    emit("\n".join(lines))

    hirise = results["hirise"]
    flat = results["2d"]

    # At the high-radix design point the Hi-Rise routers' clock advantage
    # carries to the composed fabric: lower latency at matched bandwidth.
    assert hirise["latency_ns"] < flat["latency_ns"]
    assert hirise["accepted_per_ns"] == pytest.approx(
        flat["accepted_per_ns"], rel=0.1
    )  # both fabrics carry the (sub-saturation) offered load

    # Sanity: offered 0.05 pkts/ns x 192 terminals = 9.6 pkts/ns.
    assert hirise["accepted_per_ns"] == pytest.approx(9.6, rel=0.15)

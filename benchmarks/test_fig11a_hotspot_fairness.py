"""Fig 11(a): per-input latency under hotspot traffic (all -> output 63).

Paper shapes: under baseline L-2-L LRG the hotspot layer's own inputs
(48-63) see several-times-higher latency — the local intermediate output
is one sub-block slot serving 16 contenders while each L2LC slot serves
only 4 — while WLRG and CLRG flatten the profile to (near) the flat 2D
switch's.  The paper's magnitudes (~600 cycles starved vs ~100 flat) are
reproduced at the saturation plateau (see EXPERIMENTS.md on the paper's
80%-of-saturation operating point).
"""

import math

import pytest

from conftest import emit, run_once
from repro.harness import fig11a_hotspot_latency
from repro.metrics import jain_index


def by_layer(latencies):
    means = []
    for group in range(4):
        vals = [
            latencies[i]
            for i in range(group * 16, (group + 1) * 16)
            if not math.isnan(latencies[i])
        ]
        means.append(sum(vals) / len(vals))
    return means


def test_fig11a_reproduction(benchmark):
    results = run_once(
        benchmark,
        lambda: fig11a_hotspot_latency(
            warmup_cycles=1500, measure_cycles=15000
        ),
    )
    lines = ["Fig 11(a): mean per-layer latency (cycles), hotspot -> o/p 63"]
    for name, latencies in results.items():
        layers = by_layer(latencies)
        lines.append(
            f"  {name:<14} " + "  ".join(f"L{i+1}:{v:7.1f}" for i, v in enumerate(layers))
        )
    emit("\n".join(lines))

    l2l = by_layer(results["3D L-2-L LRG"])
    clrg = by_layer(results["3D CLRG"])
    wlrg = by_layer(results["3D WLRG"])
    flat = by_layer(results["2D"])

    # L-2-L LRG starves the hotspot's local layer (inputs 48-63).
    remote_l2l = sum(l2l[:3]) / 3
    assert l2l[3] > 5 * remote_l2l

    # CLRG and WLRG flatten the profile dramatically.
    assert clrg[3] < 0.55 * l2l[3]
    assert wlrg[3] < 0.7 * l2l[3]
    assert max(clrg) / min(clrg) < 2.5

    # The flat 2D switch is the fairness reference (near saturation the
    # latency estimate is noisy, hence the loose bound).
    assert max(flat) / min(flat) < 2.5

    # CLRG's worst layer is comparable to the 2D switch's worst input,
    # not to L-2-L's starved layer.
    assert clrg[3] < 2.5 * max(flat)

"""Fig 11(c): per-input throughput on the baseline's adversarial pattern.

The Section III-B example: inputs {3, 7, 11, 15} on layer 1 (all binned
to the same L2LC) and input {20} on layer 2, all requesting output 63.

Paper shapes: under L-2-L LRG input 20 alternates with the shared channel
and captures half the output — 4x the throughput of each layer-1 input —
while WLRG and CLRG equalise all five inputs; the flat 2D switch is even
by construction.
"""

import pytest

from conftest import emit, run_once
from repro.harness import fig11c_adversarial_throughput

SHARED = (3, 7, 11, 15)
LONE = 20


def test_fig11c_reproduction(benchmark):
    results = run_once(
        benchmark,
        lambda: fig11c_adversarial_throughput(
            warmup_cycles=1500, measure_cycles=12000
        ),
    )
    lines = ["Fig 11(c): per-input throughput (packets/ns), adversarial"]
    for name, tps in results.items():
        lines.append(
            f"  {name:<14} "
            + "  ".join(f"i{src}:{tp:.4f}" for src, tp in sorted(tps.items()))
        )
    emit("\n".join(lines))

    l2l = results["3D L-2-L LRG"]
    wlrg = results["3D WLRG"]
    clrg = results["3D CLRG"]
    flat = results["2D"]

    # L-2-L LRG: the lone input gets ~4x each shared input ({x,20,x,20,..}
    # gives input 20 half the output, the four sharers an eighth each).
    shared_mean = sum(l2l[s] for s in SHARED) / 4
    assert l2l[LONE] == pytest.approx(4 * shared_mean, rel=0.10)

    # WLRG and CLRG equalise (every input within 10% of the mean).
    for scheme in (wlrg, clrg):
        mean = sum(scheme.values()) / 5
        for src, tp in scheme.items():
            assert tp == pytest.approx(mean, rel=0.10), src

    # The flat 2D switch is even.
    mean = sum(flat.values()) / 5
    for tp in flat.values():
        assert tp == pytest.approx(mean, rel=0.05)

    # Fair schemes deliver the same aggregate as the unfair one (the
    # output is the bottleneck either way).
    assert sum(clrg.values()) == pytest.approx(sum(l2l.values()), rel=0.15)

"""Table IV: implementation cost of the channel-multiplicity design space.

Paper values (64-radix; 3D switches are 4-layer; throughput is uniform
random saturation in Tbps):

    2D            0.672  1.69 GHz  71 pJ   9.24 Tbps     0 TSVs
    3D Folded     0.705  1.58 GHz  73 pJ   8.86 Tbps  8192
    3D 4-Channel  0.451  2.24 GHz  42 pJ  10.97 Tbps  6144
    3D 2-Channel  0.315  2.46 GHz  39 pJ   7.65 Tbps  3072
    3D 1-Channel  0.247  2.64 GHz  37 pJ   4.27 Tbps  1536

Key shapes: the 1-channel switch starves on inter-layer bandwidth; the
2-channel lands ~19% below 2D; the 4-channel beats 2D by ~15-18%.
"""

import pytest

from conftest import emit, run_once
from repro.harness import render_table, table4


def test_table4_reproduction(benchmark):
    rows = run_once(
        benchmark, lambda: table4(warmup_cycles=400, measure_cycles=2000)
    )
    emit(render_table(rows, "Table IV: channel-multiplicity design space"))
    by_name = {row.design: row for row in rows}
    flat = by_name["2D 64x64"]
    c4 = by_name["3D 4-Channel"]
    c2 = by_name["3D 2-Channel"]
    c1 = by_name["3D 1-Channel"]

    # Every published throughput within 10%.
    for row in rows:
        assert row.throughput_tbps == pytest.approx(
            row.paper_throughput_tbps, rel=0.10
        ), row.design

    # Shape: 4-channel beats 2D; 2-channel is below 2D; 1-channel is far
    # below (the dedicated channels bottleneck, Section VI-A).
    assert c4.throughput_tbps > flat.throughput_tbps * 1.05
    assert c2.throughput_tbps < flat.throughput_tbps
    assert c1.throughput_tbps < 0.55 * flat.throughput_tbps

    # Cost ordering: fewer channels -> smaller, faster, leaner.
    assert c1.area_mm2 < c2.area_mm2 < c4.area_mm2 < flat.area_mm2
    assert c1.frequency_ghz > c2.frequency_ghz > c4.frequency_ghz
    assert c1.tsv_count < c2.tsv_count < c4.tsv_count

    # Headline: 4-channel saves ~33% area and ~40% energy over 2D.
    assert 1 - c4.area_mm2 / flat.area_mm2 == pytest.approx(0.33, abs=0.03)
    assert 1 - c4.energy_pj / flat.energy_pj == pytest.approx(0.40, abs=0.04)

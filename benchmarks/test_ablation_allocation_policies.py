"""Ablation: L2LC channel allocation policies (Section III-A).

The paper describes three rules for mapping inputs onto the ``c`` channels
toward a destination layer — input binned (implemented in its cross-point
design), output binned, and priority based — and argues that fixed binning
"may lead to under utilization of the critical vertical L2LCs under
certain adversarial traffic" while the priority mux "incurs higher delay
because arbitration across L2LCs is now serialized".

This ablation measures both halves of that trade-off:

* on the binning-adversarial pattern (channel sharers targeting distinct
  remote outputs) the priority policy recovers the throughput that fixed
  binning serialises away (higher vertical-channel utilization, measured
  with the probe);
* the physical model charges the priority mux a clock penalty, so under
  uniform random traffic — where binning is not a bottleneck — the binned
  policies win in delivered Tbps.
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import ProbedSwitch, accepted_throughput
from repro.physical import cost_of
from repro.traffic import AdversarialTraffic, UniformRandomTraffic
from repro.traffic.adversarial import binning_adversarial

POLICIES = ("input_binned", "output_binned", "priority")


def config_for(policy):
    return HiRiseConfig(allocation=policy, arbitration="clrg")


def adversarial_point(policy):
    config = config_for(policy)
    demands = binning_adversarial(
        HiRiseConfig(allocation="input_binned", arbitration="clrg")
    )
    probe = ProbedSwitch(HiRiseSwitch(config))
    result = accepted_throughput(
        lambda: probe,
        lambda load: AdversarialTraffic(64, load, demands, seed=3),
        load=0.9,
        warmup_cycles=500,
        measure_cycles=3000,
    )
    return (
        result.throughput_packets_per_cycle,
        probe.mean_channel_utilization(),
    )


def uniform_tbps(policy):
    config = config_for(policy)
    result = accepted_throughput(
        lambda: HiRiseSwitch(config),
        lambda load: UniformRandomTraffic(64, load, seed=7),
        load=0.99,
        warmup_cycles=400,
        measure_cycles=2000,
    )
    flits = result.throughput_flits_per_cycle
    return cost_of(config).throughput_tbps(flits)


def test_allocation_policy_ablation(benchmark):
    def experiment():
        return {
            policy: {
                "adversarial": adversarial_point(policy),
                "uniform_tbps": uniform_tbps(policy),
            }
            for policy in POLICIES
        }

    results = run_once(benchmark, experiment)
    lines = ["Channel-allocation policy ablation"]
    for policy, data in results.items():
        packets, utilization = data["adversarial"]
        lines.append(
            f"  {policy:<14} adversarial {packets:5.2f} pkts/cyc "
            f"(L2LC util {utilization:.2f})  UR {data['uniform_tbps']:.2f} Tbps"
        )
    emit("\n".join(lines))

    adv = {p: results[p]["adversarial"][0] for p in POLICIES}
    util = {p: results[p]["adversarial"][1] for p in POLICIES}
    tbps = {p: results[p]["uniform_tbps"] for p in POLICIES}

    # On binning-adversarial traffic the priority mux recovers throughput
    # and drives the vertical channels harder than input binning.
    assert adv["priority"] > 1.5 * adv["input_binned"]
    assert util["priority"] > util["input_binned"]

    # Under uniform random traffic the fixed-binned policies deliver more
    # Tbps: the serialized priority mux costs clock rate.
    assert tbps["input_binned"] > tbps["priority"]
    assert cost_of(config_for("priority")).frequency_ghz < cost_of(
        config_for("input_binned")
    ).frequency_ghz

    # Input and output binning are interchangeable on symmetric traffic.
    assert tbps["output_binned"] == pytest.approx(
        tbps["input_binned"], rel=0.08
    )

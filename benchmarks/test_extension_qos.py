"""Extension: QoS bandwidth differentiation via weighted class counters.

The Swizzle-Switch family supports quality-of-service arbitration (DAC'12,
reference [15]); this extension folds QoS into CLRG by charging each win
``1/weight`` instead of 1, keeping the cross-point structure unchanged.
The benchmark gives four contending inputs weights 4:2:1:1 on a contested
output and checks that delivered bandwidth follows the weights while
aggregate throughput is unaffected.
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import accepted_throughput
from repro.traffic import AdversarialTraffic

# Contenders on three different layers plus one local, all -> output 60.
CONTENDERS = {0: 60, 16: 60, 32: 60, 48: 60}
WEIGHTS = {0: 4.0, 16: 2.0, 32: 1.0, 48: 1.0}


def run_system(qos: bool):
    weights = [1.0] * 64
    if qos:
        for src, weight in WEIGHTS.items():
            weights[src] = weight
    config = HiRiseConfig(
        arbitration="clrg",
        qos_weights=tuple(weights) if qos else None,
        num_classes=8 if qos else 3,
    )
    result = accepted_throughput(
        lambda: HiRiseSwitch(config),
        lambda load: AdversarialTraffic(64, load, CONTENDERS, seed=4),
        load=0.9,
        warmup_cycles=1000,
        measure_cycles=10000,
    )
    per_input = result.per_input_throughput(64)
    return {src: per_input[src] for src in sorted(CONTENDERS)}


def test_qos_weighted_shares(benchmark):
    results = run_once(
        benchmark, lambda: {"plain": run_system(False), "qos": run_system(True)}
    )
    lines = ["QoS extension: per-input share of the contested output"]
    for mode, shares in results.items():
        lines.append(
            f"  {mode:<6} "
            + "  ".join(f"i{s}:{v:.4f}" for s, v in shares.items())
        )
    emit("\n".join(lines))

    plain = results["plain"]
    qos = results["qos"]

    # Plain CLRG: equal shares.
    mean = sum(plain.values()) / 4
    for share in plain.values():
        assert share == pytest.approx(mean, rel=0.1)

    # QoS: shares proportional to 4:2:1:1.
    assert qos[0] / qos[32] == pytest.approx(4.0, rel=0.15)
    assert qos[16] / qos[32] == pytest.approx(2.0, rel=0.15)
    assert qos[32] == pytest.approx(qos[48], rel=0.1)

    # Differentiation does not cost aggregate bandwidth.
    assert sum(qos.values()) == pytest.approx(sum(plain.values()), rel=0.1)

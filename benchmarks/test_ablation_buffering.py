"""Ablation: virtual-channel count and buffer depth.

The paper fixes 4 virtual channels with 4-flit buffers per port (Section
V) without justifying the point.  This ablation sweeps both knobs on the
headline Hi-Rise configuration under overdriven uniform random traffic:
a single VC suffers head-of-line loss, two VCs recover most of it, and the
4x4 choice sits on the knee — deeper/wider buffering buys little.
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import saturation_throughput
from repro.network.port import PortConfig
from repro.traffic import UniformRandomTraffic

SWEEP = [
    (1, 4), (2, 4), (4, 4), (8, 4),   # VC count at fixed depth
    (4, 1), (4, 2), (4, 8),           # depth at fixed VC count
]


def measure(num_vcs, vc_depth):
    config = HiRiseConfig(
        port_config=PortConfig(num_vcs=num_vcs, vc_depth=vc_depth)
    )
    return saturation_throughput(
        lambda: HiRiseSwitch(config),
        lambda load: UniformRandomTraffic(64, load, seed=7),
        warmup_cycles=300,
        measure_cycles=1500,
    )


def test_buffering_ablation(benchmark):
    results = run_once(
        benchmark,
        lambda: {(v, d): measure(v, d) for v, d in SWEEP},
    )
    lines = ["Buffering ablation (saturation packets/cycle, UR, Hi-Rise c4)"]
    for (vcs, depth), packets in results.items():
        lines.append(f"  {vcs} VCs x {depth} flits : {packets:5.2f}")
    emit("\n".join(lines))

    paper_point = results[(4, 4)]

    # One VC loses clearly to the paper's 4 (head-of-line blocking).
    assert results[(1, 4)] < 0.93 * paper_point

    # The knee: 2 VCs already recover most of the gap; doubling to 8 VCs
    # buys under ~12% where 1 -> 4 bought ~37%.
    assert results[(2, 4)] > results[(1, 4)]
    assert results[(8, 4)] < 1.12 * paper_point

    # Depth below the packet length (4 flits) throttles streaming (the
    # refill path cannot keep a shallow VC fed); the paper's depth-4 is
    # sufficient and depth-8 adds nothing.
    assert results[(4, 1)] < 0.9 * paper_point
    assert results[(4, 2)] < 0.9 * paper_point
    assert results[(4, 8)] <= 1.02 * paper_point

    # The paper's 4x4 is within ~10% of the best measured point.
    assert paper_point > 0.89 * max(results.values())

"""Table V: implementation cost of the arbitration variants.

Paper values (64-radix; 3D switches are 4-channel 4-layer; WLRG is
omitted because its hardware implementation is infeasible):

    2D          0.672  1.69 GHz  71 pJ   9.24 Tbps     0 TSVs
    3D L-2-L    0.451  2.24 GHz  42 pJ  10.97 Tbps  6144
    3D CLRG     0.451  2.2  GHz  44 pJ  10.65 Tbps  6144

Key shape: CLRG's fairness machinery costs *no area*, ~2% frequency and
2 pJ over the baseline L-2-L LRG, while both 3D variants hold ~15% more
throughput than the flat 2D switch (the abstract's headline numbers).
"""

import pytest

from conftest import emit, run_once
from repro.harness import render_table, table5


def test_table5_reproduction(benchmark):
    rows = run_once(
        benchmark, lambda: table5(warmup_cycles=400, measure_cycles=2000)
    )
    emit(render_table(rows, "Table V: arbitration variants"))
    flat, l2l, clrg = rows

    assert clrg.frequency_ghz == pytest.approx(2.2, rel=0.03)
    assert clrg.energy_pj == pytest.approx(44.0, rel=0.05)
    assert clrg.throughput_tbps == pytest.approx(10.65, rel=0.10)
    assert clrg.tsv_count == 6144

    # CLRG pays no area over L-2-L LRG and only a small speed/energy tax.
    assert clrg.area_mm2 == pytest.approx(l2l.area_mm2, rel=0.01)
    assert clrg.frequency_ghz < l2l.frequency_ghz
    assert l2l.frequency_ghz / clrg.frequency_ghz < 1.05
    assert clrg.energy_pj - l2l.energy_pj == pytest.approx(2.0, abs=0.5)

    # Both 3D variants beat the 2D switch on throughput by ~15%.
    assert clrg.throughput_tbps / flat.throughput_tbps == pytest.approx(
        10.65 / 9.24, abs=0.08
    )
    assert l2l.throughput_tbps > clrg.throughput_tbps

"""Ablation: the full arbitration-scheme zoo on the adversarial pattern.

Section VII positions CLRG against the related work: "a single iteration
of iSLIP is similar to the baseline L-2-L LRG we discussed before and does
not solve the fairness issues", while age-based (OCF-style) arbitration is
fair but "requires a prohibitively expensive comparison".  This ablation
runs every implemented inter-layer scheme on the Section III-B adversarial
pattern and checks that ordering: RR composes as unfairly as L-2-L LRG;
WLRG, CLRG and AGE all reach the flat-LRG fair share.
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import accepted_throughput, jain_index
from repro.traffic import AdversarialTraffic
from repro.traffic.adversarial import paper_adversarial_demands

SCHEMES = ("l2l_lrg", "l2l_rr", "wlrg", "clrg", "age")
DEMANDS = paper_adversarial_demands()


def shares_for(scheme):
    config = HiRiseConfig(arbitration=scheme)
    result = accepted_throughput(
        lambda: HiRiseSwitch(config),
        lambda load: AdversarialTraffic(64, load, DEMANDS, seed=5),
        load=0.5,
        warmup_cycles=1200,
        measure_cycles=10000,
    )
    per_input = result.per_input_throughput(64)
    return {src: per_input[src] for src in sorted(DEMANDS)}


def test_arbiter_zoo_fairness(benchmark):
    results = run_once(
        benchmark, lambda: {scheme: shares_for(scheme) for scheme in SCHEMES}
    )
    lines = ["Arbitration-scheme zoo (adversarial pattern, pkts/cycle)"]
    for scheme, shares in results.items():
        jain = jain_index(list(shares.values()))
        lines.append(
            f"  {scheme:<8} Jain {jain:.4f}  "
            + "  ".join(f"i{s}:{v:.4f}" for s, v in shares.items())
        )
    emit("\n".join(lines))

    jains = {
        scheme: jain_index(list(shares.values()))
        for scheme, shares in results.items()
    }

    # Rotating-pointer (iSLIP-like) composition inherits the baseline's
    # unfairness: the lone layer-2 input still gets ~4x each sharer.
    for scheme in ("l2l_lrg", "l2l_rr"):
        shares = results[scheme]
        shared_mean = sum(shares[s] for s in (3, 7, 11, 15)) / 4
        assert shares[20] > 3 * shared_mean, scheme
        assert jains[scheme] < 0.85, scheme

    # The fair schemes all reach near-perfect Jain fairness.
    for scheme in ("wlrg", "clrg", "age"):
        assert jains[scheme] > 0.98, scheme

    # CLRG matches the hardware-infeasible ideals within noise.
    assert jains["clrg"] == pytest.approx(jains["age"], abs=0.02)
    assert jains["clrg"] == pytest.approx(jains["wlrg"], abs=0.02)

"""Section VI-E discussion: Hi-Rise vs whole-fabric alternatives.

The paper's discussion quantifies fabric power: the 2D Swizzle-Switch is
"33% better than mesh and 28% better than flattened butterfly", and
Hi-Rise's further 38% improvement compounds to "about 58% power savings
over flattened butterfly".

This benchmark rebuilds the comparison from this repository's calibrated
router models plus documented global-wire estimates (the paper publishes
no wire numbers): per-transaction transport energy for the classic mesh,
a concentrated mesh, a flattened butterfly, and the two single switches.
The invented wire constants make absolute percentages approximate, so the
assertions check orderings and generous savings bands around the paper's
figures — the *story* (single high-radix switch beats multi-hop fabrics;
Hi-Rise compounds the saving) is what must hold.
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig
from repro.physical import cost_of
from repro.physical.fabric import (
    flattened_butterfly_cost,
    mesh_fabric_cost,
    single_switch_cost,
)


def experiment():
    flat = cost_of("2d")
    hirise = cost_of(HiRiseConfig())
    return {
        "mesh (classic)": mesh_fabric_cost(64, concentration=1),
        "mesh (c=4)": mesh_fabric_cost(64, concentration=4),
        "flattened butterfly": flattened_butterfly_cost(64, concentration=4),
        "2D Swizzle-Switch": single_switch_cost(
            flat.energy_pj, flat.frequency_ghz
        ),
        "Hi-Rise": single_switch_cost(
            hirise.energy_pj, hirise.frequency_ghz
        ),
    }


def test_fabric_energy_comparison(benchmark):
    fabrics = run_once(benchmark, experiment)
    lines = ["Section VI-E: per-transaction transport energy by fabric"]
    for name, fabric in fabrics.items():
        lines.append(
            f"  {name:<22} {fabric.energy_pj:7.1f} pJ "
            f"(avg hops {fabric.avg_hops:.2f}, latency {fabric.latency_ns:.2f} ns)"
        )
    emit("\n".join(lines))

    mesh = fabrics["mesh (classic)"].energy_pj
    cmesh = fabrics["mesh (c=4)"].energy_pj
    butterfly = fabrics["flattened butterfly"].energy_pj
    flat = fabrics["2D Swizzle-Switch"].energy_pj
    hirise = fabrics["Hi-Rise"].energy_pj

    # Energy ordering: Hi-Rise < 2D single switch < flattened butterfly
    # < concentrated mesh < classic mesh.
    assert hirise < flat < butterfly < cmesh < mesh

    # The paper's relative claims, within generous bands (wire constants
    # are estimates): 2D saves vs mesh (paper 33%) and vs FB (paper 28%);
    # Hi-Rise saves vs FB (paper ~58%).
    assert 0.15 < 1 - flat / cmesh < 0.60
    assert 0.05 < 1 - flat / butterfly < 0.45
    assert 0.35 < 1 - hirise / butterfly < 0.70

    # Hi-Rise over 2D is the calibrated 38% (exact, no wire estimates).
    assert 1 - hirise / flat == pytest.approx(0.38, abs=0.03)

    # Latency: the single switches beat the classic mesh's accumulated
    # hop delay but the flattened butterfly's two express hops are quick.
    assert fabrics["Hi-Rise"].latency_ns < fabrics["mesh (classic)"].latency_ns

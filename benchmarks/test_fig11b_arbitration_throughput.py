"""Fig 11(b): throughput versus load for the arbitration schemes (UR).

Paper shapes: under uniform random traffic all three 3D schemes behave
identically at cycle level (no fairness stress), so throughput ranks by
clock: L-2-L LRG marginally above CLRG (2.24 vs 2.2 GHz), both ~15% above
the 2D switch; WLRG matches the 3D family.
"""

import pytest

from conftest import emit, run_once
from repro.harness import fig11b_arbitration_throughput, render_series


def test_fig11b_reproduction(benchmark):
    series = run_once(
        benchmark,
        lambda: fig11b_arbitration_throughput(
            loads_per_ns=(0.05, 0.15, 0.25, 0.35, 0.45),
            warmup_cycles=400,
            measure_cycles=2000,
        ),
    )
    emit(render_series(series, "Fig 11(b): throughput vs load (UR)",
                       ["pkts/in/ns", "pkts/ns"]))

    def peak(name):
        return max(tp for _, tp in series[name])

    # All 3D schemes clearly above 2D at saturation (~15%).
    for scheme in ("3D L-2-L LRG", "3D WLRG", "3D CLRG"):
        assert peak(scheme) > 1.05 * peak("2D"), scheme
    assert peak("3D CLRG") / peak("2D") == pytest.approx(
        10.65 / 9.24, abs=0.08
    )

    # CLRG slightly below L-2-L LRG (pure clock effect).
    assert peak("3D CLRG") < peak("3D L-2-L LRG")
    assert peak("3D CLRG") > 0.95 * peak("3D L-2-L LRG")

    # Below saturation, accepted tracks offered for every scheme.
    for name, points in series.items():
        load, accepted = points[0]
        assert accepted == pytest.approx(load * 64, rel=0.1), name

    # Accepted throughput never decreases with offered load (no
    # throughput collapse past saturation).
    for name, points in series.items():
        rates = [tp for _, tp in points]
        assert all(b >= a * 0.95 for a, b in zip(rates, rates[1:])), name

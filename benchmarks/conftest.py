"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper and prints the
reproduced rows/series alongside the paper's values.  ``emit`` bypasses
pytest's output capture so the reproduction report is visible in the
benchmark run's console output (and in files it is tee'd to).
"""

import sys


def emit(text: str) -> None:
    """Print to the real stdout, bypassing pytest capture."""
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

"""Fig 9(b): operating frequency versus number of stacked layers.

Paper shapes: frequency peaks at an intermediate layer count (few layers
leave the per-layer switches large; many layers multiply the L2LCs); at
radix 64 the optimum is 3-5 layers with the maximum at 4, and the optimum
shifts toward more layers as radix grows.
"""

import pytest

from conftest import emit, run_once
from repro.harness import fig9b_frequency_vs_layers, render_series


def test_fig9b_reproduction(benchmark):
    series = run_once(benchmark, fig9b_frequency_vs_layers)
    emit(render_series(series, "Fig 9(b): frequency vs stacked layers",
                       ["layers", "GHz"]))

    def best_layers(name):
        points = dict(series[name])
        return max(points, key=points.get)

    # Radix 64: optimum in the 3-5 layer band.
    assert best_layers("Radix 64") in (3, 4, 5)

    # Optimum shifts toward more layers at higher radix.
    assert best_layers("Radix 48") <= best_layers("Radix 128")

    # Interior maximum: the curve falls off on both sides.
    for name, points in series.items():
        freqs = [f for _, f in points]
        peak = freqs.index(max(freqs))
        assert freqs[0] <= freqs[peak], name
        assert freqs[-1] < freqs[peak], name

    # Anchor: radix 64 at 4 layers is the 2.24 GHz design point.
    assert dict(series["Radix 64"])[4] == pytest.approx(2.24, rel=0.03)

"""Extension: where does the Table VI speedup come from?

The memory-latency instrumentation decomposes each request's latency by
serving level.  Running a heavy mix on both fabrics shows the mechanism
behind the application speedups: the network-dominated component (L2-hit
round trips) shrinks with the Hi-Rise switch's clock and contention
advantage, while the DRAM-dominated component barely moves (80 ns dwarfs
the fabric) — so speedup grows with the *hit-traffic* share of stall time,
i.e. with MPKI, exactly the Table VI trend.
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.manycore import MIXES, ManyCoreSystem, SystemConfig, mix_core_assignment
from repro.physical import cost_of
from repro.switches import SwizzleSwitch2D

MIX = MIXES[6]  # Mix7, 66.9 MPKI


def run(fabric: str, cycles_baseline=8000, seed=0):
    config = SystemConfig(seed=seed)
    profiles = mix_core_assignment(MIX, config.num_cores, seed=seed)
    if fabric == "2d":
        switch = SwizzleSwitch2D(64)
        frequency = cost_of("2d").frequency_ghz
        cycles = cycles_baseline
    else:
        hirise = HiRiseConfig()
        switch = HiRiseSwitch(hirise)
        frequency = cost_of(hirise).frequency_ghz
        cycles = int(round(cycles_baseline / cost_of("2d").frequency_ghz
                           * frequency))
    system = ManyCoreSystem(switch, frequency, profiles, config)
    result = system.run(cycles)
    breakdown = system.memory_latency.breakdown(system.network_cycle_ns)
    return {
        "ipc": result.system_ipc,
        "l2_hit_ns": breakdown.l2_hit_mean_ns,
        "dram_ns": breakdown.dram_mean_ns,
        "dram_fraction": breakdown.dram_fraction,
        "requests": breakdown.completed,
    }


def test_memory_latency_breakdown(benchmark):
    results = run_once(
        benchmark, lambda: {fabric: run(fabric) for fabric in ("2d", "hirise")}
    )
    lines = [f"Memory-latency breakdown on {MIX.name} "
             f"(avg MPKI {MIX.avg_mpki:.1f})"]
    for fabric, data in results.items():
        lines.append(
            f"  {fabric:<7} IPC {data['ipc']:6.1f}  "
            f"L2-hit {data['l2_hit_ns']:6.1f} ns  "
            f"DRAM {data['dram_ns']:6.1f} ns  "
            f"(DRAM fraction {data['dram_fraction']:.2f}, "
            f"{data['requests']} requests)"
        )
    emit("\n".join(lines))

    flat = results["2d"]
    hirise = results["hirise"]

    # The network-dominated component improves markedly on Hi-Rise.
    assert hirise["l2_hit_ns"] < 0.85 * flat["l2_hit_ns"]

    # The DRAM component is dominated by the 80 ns access on both.
    assert flat["dram_ns"] > 80.0 and hirise["dram_ns"] > 80.0
    # ...and improves by a smaller *relative* margin than the hit path.
    hit_gain = 1 - hirise["l2_hit_ns"] / flat["l2_hit_ns"]
    dram_gain = 1 - hirise["dram_ns"] / flat["dram_ns"]
    assert hit_gain > dram_gain

    # The latency advantage shows up as the Table VI speedup.
    assert hirise["ipc"] / flat["ipc"] > 1.05

    # Both systems observe the same workload's miss mix.
    assert hirise["dram_fraction"] == pytest.approx(
        flat["dram_fraction"], abs=0.03
    )

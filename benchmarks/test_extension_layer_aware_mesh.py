"""Extension: layer-aware link selection in the mesh of 3D switches.

Section VI-E: "Layer-aware routing algorithms that minimize the traversal
of traffic in the vertical direction will also help alleviate the L2LC
bottleneck problems within the switch."  With multiple mesh links per
direction spread over the stacked layers, a transiting packet can exit on
the link sharing its entry layer, so the hop never consumes a vertical
channel inside the router.  The benchmark compares layer-oblivious and
layer-aware link selection on the same traffic and measures L2LC
utilization (probe) and delivery latency.
"""

import numpy as np
import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import ProbedSwitch
from repro.topology import MeshConfig, MeshNetwork


def run_mesh(layer_aware: bool, packets=400, seed=11):
    config = MeshConfig(
        rows=3, cols=3, concentration=12, layers=4,
        links_per_direction=4, layer_aware=layer_aware,
    )
    probes = []

    def factory(radix):
        probe = ProbedSwitch(
            HiRiseSwitch(HiRiseConfig(radix=radix, layers=4,
                                      channel_multiplicity=2))
        )
        probes.append(probe)
        return probe

    mesh = MeshNetwork(config, factory)
    rng = np.random.default_rng(seed)
    created = []
    for _ in range(packets):
        src = (int(rng.integers(3)), int(rng.integers(3)))
        dst = (int(rng.integers(3)), int(rng.integers(3)))
        created.append(
            mesh.create_packet(
                src, int(rng.integers(12)), dst, int(rng.integers(12)),
            )
        )
        mesh.step()
    mesh.run(1200)
    delivered = [p for p in created if p.delivered_cycle is not None]
    latencies = [p.latency for p in delivered]
    utilization = sum(p.mean_channel_utilization() for p in probes) / len(probes)
    return {
        "delivered": len(delivered),
        "total": len(created),
        "mean_latency": sum(latencies) / len(latencies),
        "l2lc_utilization": utilization,
    }


def test_layer_aware_link_selection(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            "layer-oblivious": run_mesh(False),
            "layer-aware": run_mesh(True),
        },
    )
    lines = ["Layer-aware mesh routing extension (3x3 mesh, 4 links/direction)"]
    for mode, data in results.items():
        lines.append(
            f"  {mode:<16} delivered {data['delivered']}/{data['total']}  "
            f"latency {data['mean_latency']:.1f} cyc  "
            f"L2LC util {data['l2lc_utilization']:.4f}"
        )
    emit("\n".join(lines))

    naive = results["layer-oblivious"]
    aware = results["layer-aware"]

    # Both modes deliver everything.
    assert naive["delivered"] == naive["total"]
    assert aware["delivered"] == aware["total"]

    # Layer-aware selection cuts vertical-channel traffic substantially.
    assert aware["l2lc_utilization"] < 0.7 * naive["l2lc_utilization"]

    # And does not hurt latency.
    assert aware["mean_latency"] <= naive["mean_latency"] * 1.1

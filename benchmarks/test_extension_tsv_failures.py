"""Extension: graceful degradation under TSV bundle failures.

3D integration's dominant manufacturing risk is TSV yield; a failed bundle
takes a whole layer-to-layer channel with it.  This extension disables
channels (the rerouting logic rebinds affected flows to the next healthy
channel toward the same layer) and measures the saturation-throughput
degradation curve under uniform random traffic, for both the binned and
priority allocation policies.
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import saturation_throughput
from repro.traffic import UniformRandomTraffic

# Progressive failure sets: kill channel 0 of more and more layer pairs.
FAILURE_STAGES = {
    0: (),
    1: ((0, 1, 0),),
    3: ((0, 1, 0), (0, 2, 0), (0, 3, 0)),
    6: ((0, 1, 0), (0, 2, 0), (0, 3, 0), (1, 0, 0), (2, 0, 0), (3, 0, 0)),
    12: tuple(
        (src, dst, 0)
        for src in range(4)
        for dst in range(4)
        if src != dst
    ),
}


def measure(allocation, failed):
    config = HiRiseConfig(allocation=allocation, failed_channels=failed)
    return saturation_throughput(
        lambda: HiRiseSwitch(config),
        lambda load: UniformRandomTraffic(64, load, seed=7),
        warmup_cycles=300,
        measure_cycles=1500,
    )


def test_tsv_failure_degradation(benchmark):
    def experiment():
        return {
            allocation: {
                count: measure(allocation, failed)
                for count, failed in FAILURE_STAGES.items()
            }
            for allocation in ("input_binned", "priority")
        }

    results = run_once(benchmark, experiment)
    lines = ["TSV failure degradation (saturation packets/cycle, UR)"]
    for allocation, curve in results.items():
        lines.append(
            f"  {allocation:<13} "
            + "  ".join(f"{k}fail:{v:.2f}" for k, v in curve.items())
        )
    emit("\n".join(lines))

    for allocation, curve in results.items():
        healthy = curve[0]
        # Monotone-ish degradation, but graceful: losing 12 of the 48
        # channels (25%) costs well under 25% of throughput because the
        # survivors absorb rerouted flows.
        assert curve[1] <= healthy * 1.02, allocation
        assert curve[12] < healthy, allocation
        assert curve[12] > 0.72 * healthy, allocation

    # Priority allocation degrades no worse than static binning: it
    # spreads rerouted load over all healthy channels by construction.
    binned_loss = 1 - results["input_binned"][12] / results["input_binned"][0]
    priority_loss = 1 - results["priority"][12] / results["priority"][0]
    assert priority_loss <= binned_loss + 0.05

"""Table I: implementation cost of 2D versus the 3D folded switch.

Paper values (64-radix, 4 layers, 128-bit):

    2D        0.672 mm2  1.69 GHz  71 pJ  9.24 Tbps      0 TSVs
    3D Folded 0.705 mm2  1.58 GHz  73 pJ  8.86 Tbps   8192 TSVs

The headline claim: naively folding the 2D switch over four layers makes
it *worse* on every axis except footprint — slower (TSV loading on every
output line), slightly larger, and ~7% lower throughput.
"""

import pytest

from conftest import emit, run_once
from repro.harness import render_table, table1


def test_table1_reproduction(benchmark):
    rows = run_once(
        benchmark, lambda: table1(warmup_cycles=300, measure_cycles=1500)
    )
    emit(render_table(rows, "Table I: 2D vs 3D folded (64-radix)"))
    flat, folded = rows

    # Cost model anchors (within 3%).
    assert flat.area_mm2 == pytest.approx(0.672, rel=0.03)
    assert folded.area_mm2 == pytest.approx(0.705, rel=0.03)
    assert flat.frequency_ghz == pytest.approx(1.69, rel=0.03)
    assert folded.frequency_ghz == pytest.approx(1.58, rel=0.03)
    assert folded.tsv_count == 8192

    # Shape: folding hurts frequency, energy, and throughput.
    assert folded.frequency_ghz < flat.frequency_ghz
    assert folded.energy_pj > flat.energy_pj
    assert folded.throughput_tbps < flat.throughput_tbps
    # ~7% throughput loss (frequency-driven; identical cycle behaviour).
    ratio = folded.throughput_tbps / flat.throughput_tbps
    assert ratio == pytest.approx(8.86 / 9.24, abs=0.04)

"""Section VI-B corner case: inter-layer-only pathological traffic.

"The worst case scenario is, all the four inputs using the same L2LC,
request for different outputs on another layer.  In this corner case, the
throughput of the 3D switch can get limited up to 1/4th of the flat 2D
switch" — and no arbitration scheme helps, because the bottleneck is the
dedicated channel's bandwidth, not fairness.
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import saturation_throughput
from repro.switches import SwizzleSwitch2D
from repro.traffic import AdversarialTraffic, interlayer_worstcase


def measure(factory, demands):
    return saturation_throughput(
        factory,
        lambda load: AdversarialTraffic(64, load, demands, seed=3),
        overdrive_load=0.99,
        warmup_cycles=400,
        measure_cycles=2000,
    )


def test_pathological_interlayer_corner(benchmark):
    def experiment():
        results = {}
        config = HiRiseConfig(arbitration="clrg")
        demands = interlayer_worstcase(config)
        results["2D"] = measure(lambda: SwizzleSwitch2D(64), demands)
        for arbitration in ("l2l_lrg", "clrg"):
            cfg = HiRiseConfig(arbitration=arbitration)
            results[arbitration] = measure(
                lambda cfg=cfg: HiRiseSwitch(cfg), demands
            )
        return results

    results = run_once(benchmark, experiment)
    emit(
        "Pathological inter-layer-only traffic (packets/cycle):\n  "
        + "  ".join(f"{k}: {v:.3f}" for k, v in results.items())
    )

    # The 3D switch collapses toward the channel bound: 4 channels per
    # layer-pair serve 16 inputs' distinct-output demand -> about 1/4 of
    # the 2D switch's delivered rate.
    for scheme in ("l2l_lrg", "clrg"):
        ratio = results[scheme] / results["2D"]
        assert 0.15 < ratio < 0.45, (scheme, ratio)

    # Arbitration schemes cannot fix a bandwidth bottleneck: L-2-L LRG
    # and CLRG deliver the same throughput here.
    assert results["clrg"] == pytest.approx(results["l2l_lrg"], rel=0.10)

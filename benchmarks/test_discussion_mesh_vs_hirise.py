"""Introduction motivation: one high-radix 3D switch vs a low-radix mesh.

"Conventional interconnects constructed out of low-radix switches such as
a 2D-Mesh do not scale well because of the decreased performance resulting
from larger hop counts" (Section I).  This benchmark makes that concrete
*cycle-accurately*: 64 terminals connected either by one radix-64 Hi-Rise
switch or by an 8x8 mesh of radix-5 routers (the classic mesh, built from
the same simulator components), compared at matched offered bandwidth.

Router clocks come from the calibrated model; the tiny radix-5 routers
clock much faster than the big switch, but their accumulated hop latency
loses to the single-cycle radix-64 fabric by ~4x at low load, an
advantage that persists under moderate load.  (The simulated mesh's links are idealised — full
128-bit width at the router clock — so its *bandwidth* is optimistic
here; the wiring/energy cost of such links is what the fabric-energy
benchmark accounts for.)
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.network.engine import Simulation
from repro.physical import cost_of
from repro.physical.fabric import ROUTER_PIPELINE_CYCLES
from repro.physical.geometry import flat2d_geometry
from repro.physical.timing import frequency_ghz
from repro.switches import SwizzleSwitch2D
from repro.topology import MeshConfig, MeshInterconnect, MeshNetwork
from repro.traffic import UniformRandomTraffic


def build_mesh():
    config = MeshConfig(rows=8, cols=8, concentration=1, layers=1)
    mesh = MeshNetwork(config, lambda radix: SwizzleSwitch2D(radix))
    # Radix-5 routers clock fast, but buffered VC routers pipeline over
    # several stages; charge the same pipeline factor the analytical
    # fabric model documents.
    clock = frequency_ghz(flat2d_geometry(5)) / ROUTER_PIPELINE_CYCLES
    return MeshInterconnect(mesh), clock


def build_hirise():
    config = HiRiseConfig()
    return HiRiseSwitch(config), cost_of(config).frequency_ghz


def measure(builder, load_per_ns, warmup=400, cycles=2000):
    fabric, clock = builder()
    load_cycle = min(1.0, load_per_ns / clock)
    traffic = UniformRandomTraffic(64, load_cycle, seed=19)
    sim = Simulation(fabric, traffic, warmup_cycles=warmup)
    result = sim.run(cycles)
    return {
        "clock": clock,
        "latency_ns": result.avg_latency_cycles / clock,
        "accepted_per_ns": result.throughput_packets_per_cycle * clock,
    }


def test_mesh_vs_hirise_cycle_accurate(benchmark):
    def experiment():
        out = {}
        for name, builder in (("8x8 mesh", build_mesh),
                              ("Hi-Rise", build_hirise)):
            out[name] = {
                "low": measure(builder, load_per_ns=0.05),
                "high": measure(builder, load_per_ns=0.15),
            }
        return out

    results = run_once(benchmark, experiment)
    lines = ["Intro motivation: 64 terminals, mesh vs single Hi-Rise"]
    for name, data in results.items():
        lines.append(
            f"  {name:<9} @ {data['low']['clock']:.2f} GHz : "
            f"latency {data['low']['latency_ns']:6.1f} ns at 0.05 pkts/in/ns, "
            f"latency {data['high']['latency_ns']:6.1f} ns at 0.15"
        )
    emit("\n".join(lines))

    mesh = results["8x8 mesh"]
    hirise = results["Hi-Rise"]

    # Low load: the single switch's one-traversal latency beats the
    # mesh's accumulated hops by a wide margin (paper Section I).
    assert hirise["low"]["latency_ns"] < 0.5 * mesh["low"]["latency_ns"]

    # At a moderate load (below both fabrics' saturation) the >2x
    # advantage persists.
    assert hirise["high"]["latency_ns"] < 0.5 * mesh["high"]["latency_ns"]

    # Both fabrics carry the light load fully.
    assert mesh["low"]["accepted_per_ns"] == pytest.approx(3.2, rel=0.15)
    assert hirise["low"]["accepted_per_ns"] == pytest.approx(3.2, rel=0.15)

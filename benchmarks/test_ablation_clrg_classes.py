"""Ablation: how many CLRG priority classes are enough?

Section III-B.4: "The number of classes (counter length) required is a
heuristic that needs to be tuned"; Section IV-B: "We find empirically that
three classes provide reasonable fairness for a 64-radix Hi-Rise switch."

This ablation sweeps the class count on the adversarial pattern (where
fairness is measured as each requestor's share of the contested output)
and confirms the paper's choice: two classes already fix most of the
baseline's unfairness, three are essentially as fair as the age-based
ideal, and more classes add nothing.
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import accepted_throughput, jain_index
from repro.traffic import AdversarialTraffic
from repro.traffic.adversarial import paper_adversarial_demands

DEMANDS = paper_adversarial_demands()


def fairness_of(config):
    result = accepted_throughput(
        lambda: HiRiseSwitch(config),
        lambda load: AdversarialTraffic(64, load, DEMANDS, seed=5),
        load=0.5,
        warmup_cycles=1200,
        measure_cycles=10000,
    )
    per_input = result.per_input_throughput(64)
    shares = [per_input[src] for src in sorted(DEMANDS)]
    return jain_index(shares), sum(shares)


def test_clrg_class_count_ablation(benchmark):
    def experiment():
        results = {}
        results["l2l_lrg (baseline)"] = fairness_of(
            HiRiseConfig(arbitration="l2l_lrg")
        )
        for classes in (2, 3, 4, 8):
            results[f"clrg {classes} classes"] = fairness_of(
                HiRiseConfig(arbitration="clrg", num_classes=classes)
            )
        results["age (ideal)"] = fairness_of(HiRiseConfig(arbitration="age"))
        return results

    results = run_once(benchmark, experiment)
    lines = ["CLRG class-count ablation (adversarial pattern)"]
    for name, (jain, total) in results.items():
        lines.append(f"  {name:<20} Jain {jain:.4f}  total {total:.4f} pkts/cyc")
    emit("\n".join(lines))

    baseline_jain = results["l2l_lrg (baseline)"][0]
    ideal_jain = results["age (ideal)"][0]

    # The baseline is visibly unfair; the age-based ideal is near perfect.
    assert baseline_jain < 0.85
    assert ideal_jain > 0.98

    # Three classes (the paper's choice) reach near-ideal fairness...
    assert results["clrg 3 classes"][0] > 0.98

    # ...and adding more classes does not buy measurable fairness.
    assert results["clrg 8 classes"][0] == pytest.approx(
        results["clrg 3 classes"][0], abs=0.02
    )

    # Even two classes repair most of the baseline's bias.
    assert results["clrg 2 classes"][0] > baseline_jain + 0.1

    # Fairness does not cost aggregate throughput (the output is the
    # bottleneck either way).
    totals = [total for _, total in results.values()]
    assert max(totals) - min(totals) < 0.15 * max(totals)

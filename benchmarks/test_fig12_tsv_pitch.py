"""Fig 12: sensitivity of frequency and area to TSV pitch.

Paper shapes (4-channel 4-layer 64-radix Hi-Rise): area grows and
frequency falls as TSV pitch increases (keep-out area is quadratic in
pitch, TSV capacitance roughly linear); the sensitivity is mild near the
0.8 um reference — a 25% larger pitch costs only ~1.7% area and ~1.8%
frequency — and the 2D switch (no TSVs) is flat.
"""

import pytest

from conftest import emit, run_once
from repro.harness import fig12_tsv_pitch, render_series
from repro.core import HiRiseConfig
from repro.physical import cost_of
from repro.physical.technology import Technology


def test_fig12_reproduction(benchmark):
    points = run_once(benchmark, fig12_tsv_pitch)
    emit(render_series({"Hi-Rise 4-ch 4-layer": points},
                       "Fig 12: TSV pitch sensitivity",
                       ["pitch um", "GHz", "mm2"]))

    pitches = [p for p, _, _ in points]
    freqs = [f for _, f, _ in points]
    areas = [a for _, _, a in points]

    # Monotone: frequency falls, area grows with pitch.
    assert freqs == sorted(freqs, reverse=True)
    assert areas == sorted(areas)

    # Mild sensitivity near the reference point (+25% pitch).
    config = HiRiseConfig(arbitration="l2l_lrg")
    base = cost_of(config)
    bumped = cost_of(config, technology=Technology().with_tsv_pitch(1.0))
    area_up = bumped.area_mm2 / base.area_mm2 - 1
    freq_down = 1 - bumped.frequency_ghz / base.frequency_ghz
    assert area_up == pytest.approx(0.017, abs=0.02)
    assert freq_down == pytest.approx(0.018, abs=0.02)

    # Large pitches hurt substantially (the "less advanced technology"
    # regime of Section VI-C).
    by_pitch = {p: (f, a) for p, f, a in points}
    assert by_pitch[4.8][1] > 1.5 * by_pitch[0.8][1]   # area blow-up
    assert by_pitch[4.8][0] < 0.8 * by_pitch[0.8][0]   # frequency loss

"""Fig 10: latency versus load under uniform random traffic.

Paper shapes (64-radix, loads in packets/input/ns, latency in ns):

* the 3D configurations have ~20% lower zero-load latency than 2D (same
  cycle count, higher clock);
* the 1-channel switch saturates at a very low injection rate;
* the 2-channel saturates below 2D; the 4-channel saturates above 2D;
* the folded switch tracks 2D but saturates ~7% earlier.
"""

import math

import pytest

from conftest import emit, run_once
from repro.harness import fig10_latency_vs_load, render_series


def test_fig10_reproduction(benchmark):
    series = run_once(
        benchmark,
        lambda: fig10_latency_vs_load(
            loads_per_ns=(0.03, 0.06, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35),
            warmup_cycles=400,
            measure_cycles=2000,
        ),
    )
    emit(render_series(series, "Fig 10: latency vs load (uniform random)",
                       ["pkts/in/ns", "latency ns", "accepted pkts/ns"]))

    def zero_load_latency(name):
        return series[name][0][1]

    def accepted_at(name, load):
        return dict((l, a) for l, _lat, a in series[name])[load]

    # Zero-load latency: ~20% better for the 3D configurations.
    improvement = 1 - zero_load_latency("3D 4-Channel") / zero_load_latency("2D")
    assert improvement == pytest.approx(0.22, abs=0.08)

    # Saturation ordering at the highest offered load.
    top = 0.35
    assert accepted_at("3D 4-Channel", top) > accepted_at("2D", top)
    assert accepted_at("2D", top) > accepted_at("3D Folded", top)
    assert accepted_at("3D Folded", top) > accepted_at("3D 2-Channel", top)
    assert accepted_at("3D 2-Channel", top) > accepted_at("3D 1-Channel", top)

    # The 1-channel configuration saturates at a very low rate (~0.13
    # pkts/input/ns): by 0.15 its latency has exploded while the
    # 4-channel configuration is still flat.
    lat_c1 = dict((l, lat) for l, lat, _ in series["3D 1-Channel"])
    lat_c4 = dict((l, lat) for l, lat, _ in series["3D 4-Channel"])
    assert lat_c1[0.15] > 4 * lat_c1[0.03]
    assert lat_c4[0.15] < 2.5 * lat_c4[0.03]

    # Latency grows monotonically with load for every design.
    for name, points in series.items():
        latencies = [lat for _, lat, _ in points if not math.isnan(lat)]
        assert all(b >= a * 0.95 for a, b in zip(latencies, latencies[1:])), name

"""Table VI: application-workload speedups of Hi-Rise over the 2D switch.

Eight multi-programmed 64-core mixes; the paper reports speedups growing
with each mix's average MPKI, from 1.02 (Mix1, 15 MPKI) to 1.15-1.16
(Mix7/Mix8, ~67-76 MPKI), averaging ~8%.

The reproduction runs the full 64-core system (cores, L1s, shared L2
banks, memory controllers) over both cycle-accurate switches at their
modelled clocks, for equal wall-clock time, and compares total retired
instructions.
"""

import pytest

from conftest import emit, run_once
from repro.harness import render_table, table6


def test_table6_reproduction(benchmark):
    rows = run_once(
        benchmark, lambda: table6(network_cycles_baseline=6000, seed=0)
    )
    emit(render_table(rows, "Table VI: Hi-Rise vs 2D application speedup"))

    # Every mix's average MPKI matches the paper (the fitted profiles).
    for row in rows:
        assert row.avg_mpki == pytest.approx(row.paper_avg_mpki, abs=0.15)

    # Hi-Rise never loses; the heavy mixes gain clearly.
    for row in rows:
        assert row.speedup > 0.99, row.mix
    by_mix = {row.mix: row for row in rows}
    assert by_mix["Mix8"].speedup > 1.08
    assert by_mix["Mix7"].speedup > 1.05
    assert by_mix["Mix1"].speedup < 1.05

    # Speedup broadly grows with MPKI: the average of the heavy half
    # exceeds the light half by a clear margin.
    light = [row.speedup for row in rows[:4]]
    heavy = [row.speedup for row in rows[4:]]
    assert sum(heavy) / 4 > sum(light) / 4 + 0.02

    # System-level average improvement in the paper's ~8% ballpark.
    average = sum(row.speedup for row in rows) / len(rows)
    assert 1.03 < average < 1.14

"""Ablation: packet length (flits per packet).

The paper simulates 4-flit packets on 128-bit flits (a 64-byte cache line
plus header).  Packet length trades serialisation latency against
arbitration overhead: every packet pays one arbitration cycle, so short
packets waste a larger fraction of the wires' time while long packets
stretch zero-load latency.  The sweep quantifies both effects on the
headline Hi-Rise switch.
"""

import pytest

from conftest import emit, run_once
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import accepted_throughput, saturation_throughput
from repro.traffic import UniformRandomTraffic

LENGTHS = (1, 2, 4, 8)


def measure(num_flits):
    # Buffer depth must cover the packet (the buffering ablation shows a
    # too-shallow VC stalls streaming), so depth scales with length.
    from repro.network.port import PortConfig

    config = HiRiseConfig(
        port_config=PortConfig(num_vcs=4, vc_depth=max(4, num_flits))
    )
    saturation_flits = saturation_throughput(
        lambda: HiRiseSwitch(config),
        lambda load: UniformRandomTraffic(
            64, load, seed=7, packet_flits=num_flits
        ),
        warmup_cycles=300,
        measure_cycles=1500,
    ) * num_flits
    zero_load = accepted_throughput(
        lambda: HiRiseSwitch(config),
        lambda load: UniformRandomTraffic(
            64, load, seed=8, packet_flits=num_flits
        ),
        load=0.002,
        warmup_cycles=200,
        measure_cycles=3000,
    ).avg_latency_cycles
    return saturation_flits, zero_load


def test_packet_length_ablation(benchmark):
    results = run_once(
        benchmark, lambda: {n: measure(n) for n in LENGTHS}
    )
    lines = ["Packet-length ablation (Hi-Rise c4, uniform random)"]
    for num_flits, (flits, latency) in results.items():
        lines.append(
            f"  {num_flits} flits/packet : saturation {flits:5.1f} "
            f"flits/cycle, zero-load latency {latency:4.1f} cycles"
        )
    emit("\n".join(lines))

    # Flit throughput grows with packet length: the per-packet
    # arbitration cycle amortises (1-flit packets waste half the slots).
    flit_rates = [results[n][0] for n in LENGTHS]
    assert flit_rates == sorted(flit_rates)
    assert results[1][0] < 0.6 * results[4][0]

    # Zero-load latency is the serialisation time: ~num_flits cycles.
    for num_flits in LENGTHS:
        assert results[num_flits][1] == pytest.approx(num_flits, abs=1.5)

    # The paper's 4-flit point captures most of the amortisation benefit.
    assert results[4][0] > 0.85 * results[8][0]

"""Tests of queueing estimates and graph connectivity proofs."""

import pytest

from repro.analysis import (
    build_resource_graph,
    is_fully_connected,
    md1_wait_cycles,
    output_latency_estimate,
    reachable_outputs,
    service_cycles,
    zero_load_latency_cycles,
)
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import accepted_throughput
from repro.traffic import HotspotTraffic, TraceTraffic


class TestQueueingFormulas:
    def test_service_and_zero_load(self):
        assert service_cycles(4) == 5
        assert zero_load_latency_cycles(4) == 4

    def test_md1_grows_toward_saturation(self):
        waits = [md1_wait_cycles(load) for load in (0.05, 0.10, 0.15, 0.19)]
        assert waits == sorted(waits)
        assert waits[-1] > 5 * waits[0]

    def test_md1_rejects_saturation(self):
        with pytest.raises(ValueError):
            md1_wait_cycles(0.2)  # rho = 1 at 4-flit packets
        with pytest.raises(ValueError):
            md1_wait_cycles(-0.1)

    def test_zero_load_matches_simulator_exactly(self):
        switch = HiRiseSwitch(HiRiseConfig())
        trace = TraceTraffic([(0, 0, 63)], packet_flits=4)
        from repro.network.engine import Simulation

        result = Simulation(switch, trace).run(30, drain=True)
        assert result.packet_latencies == [zero_load_latency_cycles(4)]

    def test_md1_predicts_hotspot_latency_scale(self):
        """At 80% hotspot load the M/D/1 estimate lands within ~35% of
        the simulated 2D mean (arrivals are near-Poisson, service is
        deterministic — the residual gap is the 64-source correlation)."""
        from repro.switches import SwizzleSwitch2D

        load = 0.8 * 0.2
        estimate = output_latency_estimate(load)
        result = accepted_throughput(
            lambda: SwizzleSwitch2D(64),
            lambda l: HotspotTraffic(64, l, hotspot_output=63, seed=5),
            load / 64,
            warmup_cycles=2000,
            measure_cycles=15000,
        )
        assert result.avg_latency_cycles == pytest.approx(estimate, rel=0.35)


class TestConnectivityGraph:
    @pytest.mark.parametrize(
        "allocation", ["input_binned", "output_binned", "priority"]
    )
    def test_full_connectivity_all_policies(self, allocation):
        config = HiRiseConfig(radix=16, layers=4, channel_multiplicity=2,
                              allocation=allocation)
        assert is_fully_connected(config)

    def test_connectivity_preserved_under_failures(self):
        config = HiRiseConfig(
            radix=16, layers=4, channel_multiplicity=2,
            failed_channels=((0, 1, 0), (2, 3, 1), (1, 0, 1)),
        )
        assert is_fully_connected(config)

    def test_reachable_outputs_is_everything(self):
        config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=1)
        assert reachable_outputs(config, 0) == set(range(8))

    def test_failed_channel_absent_from_graph(self):
        config = HiRiseConfig(
            radix=16, layers=4, channel_multiplicity=2,
            failed_channels=((0, 3, 0),),
        )
        graph = build_resource_graph(config)
        assert ("ch", 0, 3, 0) not in graph
        assert ("ch", 0, 3, 1) in graph

    def test_graph_structure_counts(self):
        """c=1, L=4, N=64: 64 inputs, 64 outputs, 64 intermediate outputs
        and 12 channels."""
        config = HiRiseConfig(channel_multiplicity=1)
        graph = build_resource_graph(config)
        kinds = {}
        for node in graph.nodes:
            kinds[node[0]] = kinds.get(node[0], 0) + 1
        assert kinds["in"] == 64
        assert kinds["out"] == 64
        assert kinds["int"] == 64
        assert kinds["ch"] == 12

    def test_port_range_checked(self):
        with pytest.raises(ValueError):
            reachable_outputs(HiRiseConfig(), 64)

"""Tests of the analytical capacity bounds, validated against simulation."""

import pytest

from repro.analysis import bottleneck, resource_loads, throughput_bound
from repro.analysis.capacity import service_capacity
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import saturation_throughput
from repro.traffic import AdversarialTraffic, UniformRandomTraffic
from repro.traffic.adversarial import interlayer_worstcase


def uniform_demands(config, rate):
    """Uniform random traffic's expected demand matrix."""
    n = config.radix
    per_pair = rate / (n - 1)
    return {
        (src, dst): per_pair
        for src in range(n)
        for dst in range(n)
        if src != dst
    }


class TestServiceCapacity:
    def test_paper_packet_length(self):
        assert service_capacity(4) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            service_capacity(0)


class TestResourceLoads:
    def test_single_flow_loads_three_resources(self):
        config = HiRiseConfig(channel_multiplicity=1)
        loads = resource_loads(config, {(0, 63): 0.1})
        resources = {entry.resource for entry in loads}
        assert ("input", 0) in resources
        assert ("output", 63) in resources
        assert ("ch", 0, 3, 0) in resources

    def test_same_layer_flow_has_no_channel(self):
        config = HiRiseConfig()
        loads = resource_loads(config, {(0, 9): 0.1})
        assert not any(e.resource[0] == "ch" for e in loads)

    def test_priority_policy_pools_channels(self):
        config = HiRiseConfig(allocation="priority")
        loads = resource_loads(config, {(0, 63): 0.1})
        pooled = [e for e in loads if e.resource[0] == "pair"]
        assert len(pooled) == 1
        assert pooled[0].capacity == pytest.approx(4 * 0.2)

    def test_validation(self):
        config = HiRiseConfig()
        with pytest.raises(ValueError):
            resource_loads(config, {(0, 64): 0.1})
        with pytest.raises(ValueError):
            resource_loads(config, {(0, 1): -0.1})
        with pytest.raises(ValueError):
            bottleneck(config, {})


class TestBoundsExplainThePaper:
    def test_hotspot_bound_is_output_capacity(self):
        """All inputs on one output: the bound is 0.2 packets/cycle."""
        config = HiRiseConfig()
        demands = {(src, 63): 1.0 for src in range(64)}
        assert throughput_bound(config, demands) == pytest.approx(0.2)
        assert bottleneck(config, demands).resource == ("output", 63)

    def test_one_channel_uniform_bottleneck_is_the_channel(self):
        """c=1: each L2LC carries 16 inputs' remote traffic — the paper's
        explanation of the 1-channel configuration's early saturation."""
        config = HiRiseConfig(channel_multiplicity=1)
        demands = uniform_demands(config, rate=1.0)
        worst = bottleneck(config, demands)
        assert worst.resource[0] == "ch"

    def test_four_channels_balance_channel_and_output_capacity(self):
        """c=4 is the balanced design point: the channel bound sits within
        2% of the output bound under uniform traffic — which is why the
        paper stops at 4 channels (more would buy nothing)."""
        config = HiRiseConfig(channel_multiplicity=4)
        demands = uniform_demands(config, rate=1.0)
        channel_util = max(
            e.utilisation for e in resource_loads(config, demands)
            if e.resource[0] == "ch"
        )
        output_util = max(
            e.utilisation for e in resource_loads(config, demands)
            if e.resource[0] == "output"
        )
        assert channel_util == pytest.approx(output_util, rel=0.02)

    def test_bound_grows_with_channel_multiplicity_until_balanced(self):
        config1 = HiRiseConfig(channel_multiplicity=1)
        config2 = HiRiseConfig(channel_multiplicity=2)
        config4 = HiRiseConfig(channel_multiplicity=4)
        bounds = [
            throughput_bound(config, uniform_demands(config, 1.0))
            for config in (config1, config2, config4)
        ]
        assert bounds[0] < bounds[1] < bounds[2]
        # c=4's bound approaches the output-capacity ceiling (12.8).
        assert bounds[2] == pytest.approx(64 * 0.2, rel=0.03)

    def test_pathological_bound_matches_section6b(self):
        """Inter-layer-only worst case: c packets/(flits+1) per layer pair
        -> 16 channels x 0.2 = 3.2 packets/cycle for the 4-channel switch
        ~ 1/4 of the 2D switch's ~12.8 packets/cycle output bound."""
        config = HiRiseConfig()
        demands = {
            pair: 1.0 for pair in interlayer_worstcase(config).items()
        }
        bound = throughput_bound(config, demands)
        assert bound == pytest.approx(16 * 0.2, rel=1e-6)


class TestBoundsDominateSimulation:
    @pytest.mark.parametrize("channels", [1, 2, 4])
    def test_uniform_saturation_below_bound(self, channels):
        config = HiRiseConfig(channel_multiplicity=channels)
        demands = uniform_demands(config, rate=1.0)
        bound = throughput_bound(config, demands)
        simulated = saturation_throughput(
            lambda: HiRiseSwitch(config),
            lambda load: UniformRandomTraffic(64, load, seed=7),
            warmup_cycles=300,
            measure_cycles=1200,
        )
        assert simulated <= bound * 1.02
        # The simulator reaches a solid fraction of the analytical bound
        # (the gap is two-phase matching inefficiency).
        assert simulated >= 0.55 * bound

    def test_adversarial_bound_tight(self):
        """Fixed single-output contention: simulation reaches ~the bound
        (no matching losses when one output serialises everything)."""
        config = HiRiseConfig()
        flows = {3: 63, 7: 63, 11: 63, 15: 63, 20: 63}
        demands = {(src, dst): 1.0 for src, dst in flows.items()}
        bound = throughput_bound(config, demands)
        simulated = saturation_throughput(
            lambda: HiRiseSwitch(config),
            lambda load: AdversarialTraffic(64, load, flows, seed=5),
            warmup_cycles=400,
            measure_cycles=2000,
        )
        assert simulated == pytest.approx(bound, rel=0.05)

"""Property test: the connectivity proof predicts faulted delivery.

For every (src, dst) pair under a set of injected channel failures, a
single-packet simulation must deliver the packet **iff** the resource
graph proves ``dst`` reachable from ``src`` — the analytical model and
the cycle-accurate kernel must agree on exactly which flows survive,
including a full partition where the static validator would have
rejected the configuration outright.
"""

import pytest

from repro.analysis import reachable_outputs
from repro.core.config import AllocationPolicy, HiRiseConfig
from repro.core.hirise import HiRiseSwitch
from repro.faults import FaultSchedule, fail_channel, reachable_fraction
from repro.network.engine import Simulation
from repro.traffic import TraceTraffic

# radix 8, 2 layers, c=2: small enough to sweep all 64 (src, dst) pairs
# per scenario, rich enough to distinguish degraded from dead pairs.
FAILURE_SCENARIOS = {
    "healthy": frozenset(),
    "one-of-two": frozenset({(0, 1, 0)}),
    "partition-0-to-1": frozenset({(0, 1, 0), (0, 1, 1)}),
    "full-isolation": frozenset(
        {(0, 1, 0), (0, 1, 1), (1, 0, 0), (1, 0, 1)}
    ),
}


def make_config(allocation=AllocationPolicy.INPUT_BINNED):
    return HiRiseConfig(
        radix=8, layers=2, channel_multiplicity=2, allocation=allocation,
    )


def delivers(config, failed, src, dst):
    """Whether a lone src->dst packet arrives under the injected faults."""
    schedule = FaultSchedule([
        fail_channel(0, *channel) for channel in sorted(failed)
    ])
    switch = HiRiseSwitch(config, faults=schedule)
    traffic = TraceTraffic([(0, src, dst)], packet_flits=4)
    # Zero-load latency is a handful of cycles; 60 cycles is decisive
    # either way without tripping the drain-stall detector.
    result = Simulation(switch, traffic, warmup_cycles=0).run(60)
    return result.packets_ejected == 1


@pytest.mark.parametrize(
    "scenario",
    list(FAILURE_SCENARIOS.values()),
    ids=list(FAILURE_SCENARIOS),
)
def test_delivery_matches_reachability_proof(scenario):
    config = make_config()
    for src in range(config.radix):
        proven = reachable_outputs(config, src, failed_channels=scenario)
        for dst in range(config.radix):
            delivered = delivers(config, scenario, src, dst)
            assert delivered == (dst in proven), (
                f"src={src} dst={dst} failed={sorted(scenario)}: "
                f"simulated delivery {delivered} but graph says "
                f"{dst in proven}"
            )


@pytest.mark.parametrize(
    "allocation", list(AllocationPolicy), ids=lambda a: a.value
)
def test_partition_reachability_per_allocation(allocation):
    # A full 0->1 partition severs exactly the cross-layer flows from
    # layer 0, whatever the allocation policy.
    config = make_config(allocation)
    partition = FAILURE_SCENARIOS["partition-0-to-1"]
    for src in range(4):
        assert reachable_outputs(
            config, src, failed_channels=partition
        ) == {0, 1, 2, 3}
    for src in range(4, 8):
        assert reachable_outputs(
            config, src, failed_channels=partition
        ) == set(range(8))


def test_reachable_fraction_agrees_with_pairwise_proof():
    config = make_config()
    for name, scenario in FAILURE_SCENARIOS.items():
        pairwise = sum(
            len(reachable_outputs(config, src, failed_channels=scenario))
            for src in range(config.radix)
        ) / config.radix ** 2
        assert reachable_fraction(config, frozenset(scenario)) == (
            pytest.approx(pairwise)
        ), name

"""Tests of the simulation engine and result accounting."""

import math

import pytest

from repro.network import engine as engine_module
from repro.network.engine import Simulation, SimulationResult
from repro.switches import SwizzleSwitch2D
from repro.traffic import TraceTraffic, UniformRandomTraffic


class TestSimulationResult:
    def test_empty_result_semantics(self):
        result = SimulationResult()
        assert result.throughput_packets_per_cycle == 0.0
        assert math.isnan(result.avg_latency_cycles)

    def test_per_input_helpers(self):
        result = SimulationResult(
            cycles=10,
            per_input_ejected={0: 5, 1: 0},
            per_input_latency_sum={0: 50},
        )
        throughput = result.per_input_throughput(2)
        assert throughput == [0.5, 0.0]
        latency = result.per_input_avg_latency(2)
        assert latency[0] == 10.0
        assert math.isnan(latency[1])


class TestSimulationLoop:
    def test_trace_delivery_and_conservation(self):
        switch = SwizzleSwitch2D(4)
        trace = TraceTraffic([(0, 0, 1), (0, 2, 3), (5, 1, 2)], packet_flits=2)
        sim = Simulation(switch, trace)
        result = sim.run(measure_cycles=30, drain=True)
        assert result.packets_injected == 3
        assert result.packets_ejected == 3
        assert result.flits_ejected == 6
        assert switch.occupancy() == 0

    def test_zero_load_latency_is_packet_length(self):
        # One isolated 4-flit packet: granted the cycle it arrives, flits
        # eject over the next 4 cycles -> latency 4 cycles.
        switch = SwizzleSwitch2D(4)
        trace = TraceTraffic([(0, 0, 1)], packet_flits=4)
        result = Simulation(switch, trace).run(20, drain=True)
        assert result.packet_latencies == [4]

    def test_warmup_not_measured(self):
        switch = SwizzleSwitch2D(8)
        traffic = UniformRandomTraffic(8, load=0.05, seed=3)
        sim = Simulation(switch, traffic, warmup_cycles=100)
        result = sim.run(measure_cycles=0)
        assert result.cycles == 0
        assert result.packets_ejected == 0
        assert sim.cycle == 100

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            Simulation(SwizzleSwitch2D(4), TraceTraffic([]), warmup_cycles=-1)

    def test_injected_counted_in_window_only(self):
        switch = SwizzleSwitch2D(4)
        trace = TraceTraffic([(0, 0, 1), (50, 2, 3)], packet_flits=1)
        sim = Simulation(switch, trace, warmup_cycles=10)
        result = sim.run(measure_cycles=100, drain=True)
        # Packet at cycle 0 falls in warm-up: not counted as injected, but
        # its delivery happens before the window so it is not ejected
        # either; the cycle-50 packet is fully measured.
        assert result.packets_injected == 1
        assert result.packets_ejected == 1


class TestStreamingLatencyStats:
    def test_streaming_aggregates_are_exact(self):
        result = SimulationResult()
        samples = [4, 9, 7, 4, 12]
        for latency in samples:
            result.record_latency(latency)
        assert result.latency_count == len(samples)
        assert result.latency_sum == sum(samples)
        assert result.avg_latency_cycles == sum(samples) / len(samples)
        mean = sum(samples) / len(samples)
        variance = sum((x - mean) ** 2 for x in samples) / len(samples)
        assert result.latency_variance_cycles == pytest.approx(variance)
        assert result.packet_latencies == samples

    def test_sample_list_stays_bounded(self):
        result = SimulationResult(latency_sample_limit=8)
        for latency in range(100):
            result.record_latency(latency)
        assert len(result.packet_latencies) <= 8
        # Decimation is deterministic: surviving samples are a strided
        # subsequence starting at the first sample.
        stride = result._sample_stride
        assert result.packet_latencies == list(
            range(0, result.packet_latencies[-1] + 1, stride)
        )
        # Aggregates are unaffected by decimation.
        assert result.latency_count == 100
        assert result.latency_sum == sum(range(100))
        assert result.avg_latency_cycles == sum(range(100)) / 100

    def test_engine_passes_sample_limit_through(self):
        switch = SwizzleSwitch2D(4)
        traffic = UniformRandomTraffic(4, load=0.5, seed=5)
        sim = Simulation(switch, traffic, latency_sample_limit=4)
        result = sim.run(measure_cycles=200, drain=True)
        assert result.latency_count == result.packets_ejected
        assert len(result.packet_latencies) <= 4
        assert result.avg_latency_cycles == (
            result.latency_sum / result.latency_count
        )

    def test_rejects_bad_sample_limit(self):
        with pytest.raises(ValueError):
            Simulation(
                SwizzleSwitch2D(4), TraceTraffic([]), latency_sample_limit=0
            )


class TestDrainStallDetection:
    def test_wedged_switch_raises_with_snapshot(self, monkeypatch):
        class WedgedSwitch(SwizzleSwitch2D):
            def step(self, cycle):
                return []  # never delivers anything

        monkeypatch.setattr(engine_module, "DRAIN_IDLE_LIMIT", 25)
        switch = WedgedSwitch(4)
        trace = TraceTraffic([(0, 0, 1)], packet_flits=2)
        sim = Simulation(switch, trace)
        with pytest.raises(RuntimeError, match="no progress for 25"):
            sim.run(measure_cycles=5, drain=True)

    def test_snapshot_names_occupied_ports(self, monkeypatch):
        class WedgedSwitch(SwizzleSwitch2D):
            def step(self, cycle):
                return []

        monkeypatch.setattr(engine_module, "DRAIN_IDLE_LIMIT", 10)
        switch = WedgedSwitch(4)
        trace = TraceTraffic([(0, 2, 1)], packet_flits=3)
        sim = Simulation(switch, trace)
        with pytest.raises(RuntimeError, match=r'"port":2,"flits":3'):
            sim.run(measure_cycles=1, drain=True)

    def test_snapshot_is_parseable_telemetry(self, monkeypatch):
        import json
        import re

        class WedgedSwitch(SwizzleSwitch2D):
            def step(self, cycle):
                return []

        monkeypatch.setattr(engine_module, "DRAIN_IDLE_LIMIT", 10)
        sim = Simulation(
            WedgedSwitch(4), TraceTraffic([(0, 2, 1)], packet_flits=3)
        )
        with pytest.raises(RuntimeError) as excinfo:
            sim.run(measure_cycles=1, drain=True)
        match = re.search(r"telemetry: (\{.*\})", str(excinfo.value))
        assert match is not None
        snapshot = json.loads(match.group(1))
        assert snapshot["occupancy"] == 3
        assert snapshot["ports"] == [{"port": 2, "flits": 3}]

"""Unit tests for input ports (refill, candidate selection, connections)."""

import pytest

from repro.network.packet import Packet
from repro.network.port import InputPort, PortConfig


def make_packet(pid, dst, num_flits=4, src=0):
    return Packet(packet_id=pid, src=src, dst=dst, num_flits=num_flits)


class TestPortConfig:
    def test_defaults_match_paper(self):
        config = PortConfig()
        assert config.num_vcs == 4
        assert config.vc_depth == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            PortConfig(num_vcs=0)
        with pytest.raises(ValueError):
            PortConfig(vc_depth=0)


class TestRefill:
    def test_one_flit_per_cycle(self):
        port = InputPort(0)
        port.enqueue_packet(make_packet(1, dst=3))
        assert len(port.source_queue) == 4
        port.refill(cycle=0)
        assert len(port.source_queue) == 3
        assert port.buffered_flits() == 1

    def test_head_goes_to_free_vc_body_follows(self):
        port = InputPort(0, PortConfig(num_vcs=2, vc_depth=4))
        port.enqueue_packet(make_packet(1, dst=3, num_flits=2))
        port.refill(0)
        port.refill(1)
        assert port.vcs[0].owner_packet == 1
        assert len(port.vcs[0]) == 2
        assert len(port.vcs[1]) == 0

    def test_second_packet_takes_second_vc(self):
        port = InputPort(0, PortConfig(num_vcs=2, vc_depth=1))
        port.enqueue_packet(make_packet(1, dst=3, num_flits=1))
        port.enqueue_packet(make_packet(2, dst=5, num_flits=1))
        port.refill(0)
        port.refill(1)
        assert port.vcs[0].owner_packet == 1
        assert port.vcs[1].owner_packet == 2

    def test_stalls_when_no_vc_available(self):
        port = InputPort(0, PortConfig(num_vcs=1, vc_depth=1))
        port.enqueue_packet(make_packet(1, dst=3, num_flits=2))
        port.refill(0)  # head occupies the only slot
        port.refill(1)  # body cannot enter (vc full)
        assert port.buffered_flits() == 1
        assert len(port.source_queue) == 1

    def test_records_injection_cycle(self):
        port = InputPort(0)
        port.enqueue_packet(make_packet(1, dst=3, num_flits=1))
        port.refill(17)
        assert port.vcs[0].front().injected_cycle == 17


class TestCandidateSelection:
    def test_candidate_is_head_flit_vc(self):
        port = InputPort(0)
        port.enqueue_packet(make_packet(1, dst=3, num_flits=1))
        port.refill(0)
        vc = port.candidate_vc()
        assert vc == 0
        assert port.requested_output() == 3

    def test_no_candidate_when_empty_or_busy(self):
        port = InputPort(0)
        assert port.candidate_vc() is None
        port.enqueue_packet(make_packet(1, dst=3, num_flits=2))
        port.refill(0)
        port.grant(0)
        assert port.is_busy
        assert port.candidate_vc() is None

    def test_viability_filter_skips_blocked_vc(self):
        port = InputPort(0, PortConfig(num_vcs=2, vc_depth=4))
        port.enqueue_packet(make_packet(1, dst=3, num_flits=1))
        port.enqueue_packet(make_packet(2, dst=5, num_flits=1))
        port.refill(0)
        port.refill(1)
        # Output 3 busy: the filter must route the request to packet 2.
        vc = port.candidate_vc(viable=lambda f: f.dst != 3)
        assert vc == 1
        assert port.vcs[vc].front().dst == 5

    def test_round_robin_rotates_after_grant(self):
        port = InputPort(0, PortConfig(num_vcs=2, vc_depth=4))
        port.enqueue_packet(make_packet(1, dst=3, num_flits=1))
        port.enqueue_packet(make_packet(2, dst=5, num_flits=1))
        port.refill(0)
        port.refill(1)
        assert port.candidate_vc() == 0
        port.grant(0)
        port.transmit()  # completes packet 1 (single flit)
        assert port.candidate_vc() == 1


class TestConnection:
    def test_transmit_streams_and_releases_on_tail(self):
        port = InputPort(0)
        port.enqueue_packet(make_packet(1, dst=3, num_flits=2))
        port.refill(0)
        port.refill(1)
        port.grant(0)
        assert port.is_busy
        first = port.transmit()
        assert first.is_head and port.is_busy
        second = port.transmit()
        assert second.is_tail and not port.is_busy

    def test_grant_while_busy_raises(self):
        port = InputPort(0)
        port.enqueue_packet(make_packet(1, dst=3, num_flits=2))
        port.refill(0)
        port.grant(0)
        with pytest.raises(RuntimeError):
            port.grant(0)

    def test_transmit_without_connection_raises(self):
        with pytest.raises(RuntimeError):
            InputPort(0).transmit()

    def test_active_has_flit_tracks_buffer(self):
        port = InputPort(0)
        port.enqueue_packet(make_packet(1, dst=3, num_flits=2))
        port.refill(0)
        port.grant(0)
        assert port.active_has_flit()
        port.transmit()
        assert not port.active_has_flit()  # body not refilled yet
        port.refill(1)
        assert port.active_has_flit()

    def test_occupancy_accounting(self):
        port = InputPort(0)
        port.enqueue_packet(make_packet(1, dst=3, num_flits=4))
        assert port.total_occupancy() == 4
        port.refill(0)
        assert port.total_occupancy() == 4
        assert port.buffered_flits() == 1

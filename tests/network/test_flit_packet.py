"""Unit tests for the flit/packet data model."""

import pytest

from repro.network.flit import Flit
from repro.network.packet import Packet, PacketFactory


class TestFlit:
    def test_head_and_tail_flags(self):
        head = Flit(packet_id=1, src=0, dst=5, seq=0, num_flits=4)
        body = Flit(packet_id=1, src=0, dst=5, seq=2, num_flits=4)
        tail = Flit(packet_id=1, src=0, dst=5, seq=3, num_flits=4)
        assert head.is_head and not head.is_tail
        assert not body.is_head and not body.is_tail
        assert tail.is_tail and not tail.is_head

    def test_single_flit_packet_is_head_and_tail(self):
        flit = Flit(packet_id=1, src=0, dst=5, seq=0, num_flits=1)
        assert flit.is_head and flit.is_tail


class TestPacket:
    def test_to_flits_order_and_identity(self):
        packet = Packet(packet_id=7, src=3, dst=9, num_flits=4, created_cycle=11)
        flits = packet.to_flits()
        assert len(flits) == 4
        assert [f.seq for f in flits] == [0, 1, 2, 3]
        assert all(f.packet_id == 7 for f in flits)
        assert all(f.src == 3 and f.dst == 9 for f in flits)
        assert all(f.created_cycle == 11 for f in flits)
        assert flits[0].is_head and flits[-1].is_tail

    def test_payload_travels_on_head_only(self):
        packet = Packet(packet_id=1, src=0, dst=1, num_flits=3, payload="req")
        flits = packet.to_flits()
        assert flits[0].payload == "req"
        assert flits[1].payload is None and flits[2].payload is None

    def test_latency_requires_ejection(self):
        packet = Packet(packet_id=1, src=0, dst=1, created_cycle=5)
        with pytest.raises(ValueError):
            _ = packet.latency
        packet.ejected_cycle = 25
        assert packet.latency == 20

    def test_rejects_invalid_sizes(self):
        with pytest.raises(ValueError):
            Packet(packet_id=1, src=0, dst=1, num_flits=0)
        with pytest.raises(ValueError):
            Packet(packet_id=1, src=-1, dst=1)


class TestPacketFactory:
    def test_ids_are_unique_and_monotonic(self):
        factory = PacketFactory()
        packets = [factory.create(0, 1, created_cycle=i) for i in range(10)]
        ids = [p.packet_id for p in packets]
        assert ids == sorted(set(ids))
        assert factory.packets_created == 10

    def test_default_and_override_flit_count(self):
        factory = PacketFactory(num_flits=4)
        assert factory.create(0, 1, 0).num_flits == 4
        assert factory.create(0, 1, 0, num_flits=1).num_flits == 1

    def test_rejects_zero_flits(self):
        with pytest.raises(ValueError):
            PacketFactory(num_flits=0)

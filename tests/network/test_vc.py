"""Unit tests for virtual channel buffers."""

import pytest

from repro.network.packet import Packet
from repro.network.vc import VirtualChannel


def flits_of(packet_id, num_flits, src=0, dst=1):
    return Packet(packet_id=packet_id, src=src, dst=dst, num_flits=num_flits).to_flits()


class TestVirtualChannel:
    def test_allocation_on_head_release_on_tail(self):
        vc = VirtualChannel(depth=4)
        assert vc.is_free
        flits = flits_of(1, 3)
        for f in flits:
            vc.push(f)
        assert vc.owner_packet == 1
        vc.pop()
        vc.pop()
        assert vc.owner_packet == 1  # tail still inside
        tail = vc.pop()
        assert tail.is_tail
        assert vc.is_free

    def test_rejects_foreign_body_flit(self):
        vc = VirtualChannel(depth=4)
        vc.push(flits_of(1, 2)[0])
        foreign = flits_of(2, 2)[1]
        assert not vc.can_accept(foreign)
        with pytest.raises(RuntimeError):
            vc.push(foreign)

    def test_rejects_head_when_occupied(self):
        vc = VirtualChannel(depth=4)
        vc.push(flits_of(1, 2)[0])
        other_head = flits_of(2, 2)[0]
        assert not vc.can_accept(other_head)

    def test_depth_limit(self):
        vc = VirtualChannel(depth=2)
        flits = flits_of(1, 4)
        vc.push(flits[0])
        vc.push(flits[1])
        assert not vc.has_space
        assert not vc.can_accept(flits[2])

    def test_fifo_order(self):
        vc = VirtualChannel(depth=4)
        flits = flits_of(1, 4)
        for f in flits:
            vc.push(f)
        assert [vc.pop().seq for _ in range(4)] == [0, 1, 2, 3]

    def test_next_packet_reuses_freed_vc(self):
        vc = VirtualChannel(depth=2)
        first = flits_of(1, 1)[0]
        vc.push(first)
        vc.pop()
        second = flits_of(2, 1)[0]
        assert vc.can_accept(second)
        vc.push(second)
        assert vc.owner_packet == 2

    def test_front_and_len(self):
        vc = VirtualChannel(depth=4)
        assert vc.front() is None
        flits = flits_of(1, 2)
        vc.push(flits[0])
        assert vc.front() is flits[0]
        assert len(vc) == 1

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            VirtualChannel(depth=0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            VirtualChannel().pop()

"""Property-based tests (hypothesis) over the cycle-accurate switches.

Invariants checked for randomly generated configurations and traffic:

* conservation — every injected flit is eventually delivered, exactly once;
* grant safety — no output, input, or L2LC ever serves two packets at once;
* determinism — identical seeds produce identical runs;
* destination correctness — every flit ejects at the port it addressed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.network.engine import Simulation
from repro.switches import SwizzleSwitch2D
from repro.traffic import TraceTraffic


@st.composite
def hirise_configs(draw):
    layers = draw(st.sampled_from([2, 4]))
    ports_per_layer = draw(st.sampled_from([2, 4]))
    radix = layers * ports_per_layer
    channels = draw(st.sampled_from([1, 2]))
    allocation = draw(
        st.sampled_from(["input_binned", "output_binned", "priority"])
    )
    arbitration = draw(
        st.sampled_from(["l2l_lrg", "wlrg", "clrg", "l2l_rr", "age"])
    )
    return HiRiseConfig(
        radix=radix,
        layers=layers,
        channel_multiplicity=channels,
        allocation=allocation,
        arbitration=arbitration,
    )


@st.composite
def traffic_traces(draw, radix, max_cycle=40, max_events=30):
    events = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=max_cycle),
                st.integers(min_value=0, max_value=radix - 1),
                st.integers(min_value=0, max_value=radix - 1),
            ),
            max_size=max_events,
        )
    )
    flits = draw(st.sampled_from([1, 2, 4]))
    return [(c, s, d) for c, s, d in events if s != d], flits


class TestHiRiseProperties:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_conservation_and_destinations(self, data):
        config = data.draw(hirise_configs())
        events, flits = data.draw(traffic_traces(config.radix))
        switch = HiRiseSwitch(config)
        trace = TraceTraffic(events, packet_flits=flits)
        delivered = []
        for cycle in range(400):
            for packet in trace.packets_for_cycle(cycle):
                switch.inject(packet)
            delivered.extend(switch.step(cycle))
            if cycle > 50 and switch.occupancy() == 0:
                break
        assert switch.occupancy() == 0
        assert len(delivered) == len(events) * flits
        for flit in delivered:
            assert flit.ejected_cycle is not None

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_grant_safety_every_cycle(self, data):
        config = data.draw(hirise_configs())
        events, flits = data.draw(traffic_traces(config.radix))
        switch = HiRiseSwitch(config)
        trace = TraceTraffic(events, packet_flits=flits)
        for cycle in range(150):
            for packet in trace.packets_for_cycle(cycle):
                switch.inject(packet)
            switch.step(cycle)
            owners = list(switch.connections.items())
            outputs = [output for _, (_, output) in owners]
            resources = [resource for _, (resource, _) in owners]
            assert len(outputs) == len(set(outputs))
            assert len(resources) == len(set(resources))


class TestFlatSwitchProperties:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_conservation(self, data):
        radix = data.draw(st.sampled_from([4, 8]))
        events, flits = data.draw(traffic_traces(radix))
        switch = SwizzleSwitch2D(radix)
        trace = TraceTraffic(events, packet_flits=flits)
        result = Simulation(switch, trace).run(100, drain=True)
        assert result.packets_ejected == len(events)
        assert switch.occupancy() == 0

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_flit_destination_matches_packet(self, data):
        radix = data.draw(st.sampled_from([4, 8]))
        events, flits = data.draw(traffic_traces(radix))
        switch = SwizzleSwitch2D(radix)
        trace = TraceTraffic(events, packet_flits=flits)
        expected = {}
        for cycle in range(200):
            for packet in trace.packets_for_cycle(cycle):
                expected[packet.packet_id] = packet.dst
                switch.inject(packet)
            for flit in switch.step(cycle):
                assert flit.dst == expected[flit.packet_id]

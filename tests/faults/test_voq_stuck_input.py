"""Regression: stuck-input faults freeze VOQ state under the schedulers.

A stuck input must stop *requesting*: its source queue backs up, its
VOQ occupancy freezes (no refill), and the scheduler never grants it —
schedulers must not chase the phantom weight of a port that cannot
transmit.  Scripted under the MWM oracle (the scheduler most attracted
to big backlogs) with the matching invariant checker attached, whose
grant-legality check raises if a stuck input is ever matched.
"""

from repro.check.matching import MatchingInvariantChecker
from repro.core.config import HiRiseConfig
from repro.faults import FaultSchedule, fail_input, repair_input
from repro.switches import make_switch
from repro.traffic import UniformRandomTraffic

STUCK_AT, REPAIRED_AT, HORIZON = 100, 300, 800
STUCK = 3


def run_stuck_mwm():
    config = HiRiseConfig(
        radix=8, layers=2, channel_multiplicity=2, arbitration="mwm",
    )
    schedule = FaultSchedule([
        fail_input(STUCK_AT, STUCK), repair_input(REPAIRED_AT, STUCK),
    ])
    checker = MatchingInvariantChecker()
    switch = make_switch(config, faults=schedule, invariants=checker)
    # Load 0.15 pkt/input/cyc = 0.6 flits/cyc: inside the
    # 1-flit/cycle refill bandwidth, so a healthy input's source
    # queue stays near-empty and the fault window shows up cleanly.
    traffic = UniformRandomTraffic(8, 0.15, seed=7)

    voq_levels = {}     # cycle -> stuck input's total VOQ occupancy
    backlog = {}        # cycle -> stuck input's source-queue depth
    granted_while_stuck = []
    window_tails = {i: 0 for i in range(8)}  # tails inside the fault
    stage = switch.stages[STUCK]
    for cycle in range(HORIZON):
        for packet in traffic.packets_for_cycle(cycle):
            switch.inject(packet)
        ejected = switch.step(cycle)
        in_window = STUCK_AT <= cycle < REPAIRED_AT
        for flit in ejected:
            if flit.is_tail and in_window:
                window_tails[flit.src] += 1
        voq_levels[cycle] = sum(stage.occupancy_row)
        backlog[cycle] = len(stage.source)
        if in_window and switch.grant_cycle.get(STUCK) == cycle:
            granted_while_stuck.append(cycle)
    return switch, checker, voq_levels, backlog, granted_while_stuck, (
        window_tails
    )


class TestStuckInputUnderMWM:
    def setup_method(self):
        (self.switch, self.checker, self.voq_levels, self.backlog,
         self.granted_while_stuck, self.tails) = run_stuck_mwm()

    def test_scheduler_never_grants_the_stuck_input(self):
        assert self.granted_while_stuck == []
        # The invariant checker's grant-legality check covered every
        # cycle (it would have raised on a stuck-input grant).
        assert self.checker.cycles_checked == HORIZON

    def test_voq_occupancy_freezes_once_the_connection_drains(self):
        # No refill while stuck: occupancy only falls (an established
        # connection may finish draining), then holds a frozen level
        # until the repair.
        window = [
            self.voq_levels[c] for c in range(STUCK_AT, REPAIRED_AT)
        ]
        assert all(b <= a for a, b in zip(window, window[1:]))
        settle = window[len(window) // 2:]
        assert len(set(settle)) == 1

    def test_source_queue_backs_up_and_drains_after_repair(self):
        assert self.backlog[REPAIRED_AT - 1] > self.backlog[STUCK_AT] + 5
        assert self.backlog[HORIZON - 1] < self.backlog[REPAIRED_AT - 1]

    def test_healthy_inputs_keep_their_service_during_the_fault(self):
        # Inside the fault window the stuck input delivers at most the
        # one packet its established connection was still draining,
        # while every healthy input keeps its normal service rate.
        healthy = [self.tails[i] for i in range(8) if i != STUCK]
        assert self.tails[STUCK] <= 1
        assert min(healthy) >= 10

    def test_stuck_input_resumes_after_repair(self):
        assert STUCK not in self.switch.stuck_inputs
        resumed = any(
            self.switch.grant_cycle.get(STUCK, -1) >= REPAIRED_AT
            for _ in (0,)
        )
        assert resumed

"""Behavioural tests of dynamic fault injection inside the kernels.

Masking, quiescing, repair re-arming, stuck inputs, CLRG corruption,
partitions, live fault-state introspection, and the degradation
measurement built on top — on both the fast and reference kernels where
the behaviour is kernel-visible (the golden parity suite already pins
them bit-identical to each other).
"""

import pytest

from repro.core.config import ArbitrationScheme, HiRiseConfig
from repro.core.hirise import HiRiseSwitch
from repro.core.reference import ReferenceHiRiseSwitch
from repro.faults import (
    DegradationReport,
    FaultSchedule,
    apply_fault_events,
    corrupt_clrg,
    describe_fault_state,
    fail_channel,
    fail_input,
    measure_degradation,
    reachable_fraction,
    repair_channel,
    repair_input,
    verify_parity,
)
from repro.network.engine import Simulation
from repro.obs.snapshot import telemetry_snapshot
from repro.obs.trace import SwitchTracer
from repro.traffic import UniformRandomTraffic

KERNELS = {"fast": HiRiseSwitch, "reference": ReferenceHiRiseSwitch}


def make_config(**overrides):
    settings = dict(radix=8, layers=2, channel_multiplicity=2)
    settings.update(overrides)
    return HiRiseConfig(**settings)


def run_traced(switch_class, schedule, cycles=200, load=0.8, seed=3,
               config=None):
    tracer = SwitchTracer()
    switch = switch_class(config or make_config(), faults=schedule,
                          tracer=tracer)
    traffic = UniformRandomTraffic(switch.config.radix, load=load, seed=seed)
    result = Simulation(switch, traffic, warmup_cycles=0).run(cycles)
    return switch, tracer, result


@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=sorted(KERNELS))
class TestChannelFaults:
    def test_failed_channel_masked_from_new_grants(self, kernel):
        config = make_config()
        dead_rid = config.channel_resource_id(0, 1, 0)
        schedule = FaultSchedule([
            fail_channel(50, 0, 1, 0), repair_channel(150, 0, 1, 0),
        ])
        _switch, tracer, _result = run_traced(KERNELS[kernel], schedule)
        granted = [
            (record["cycle"], record["resource"])
            for record in tracer.records()
            if record.get("event") == "p2_grant"
            and record["resource"] == dead_rid
        ]
        # The quiescing owner may finish streaming, but no *new* grant
        # lands on the dead channel while it is down.
        assert all(
            cycle < 50 or cycle >= 150 for cycle, _resource in granted
        ), granted

    def test_fault_events_appear_in_trace(self, kernel):
        config = make_config()
        schedule = FaultSchedule([
            fail_channel(40, 0, 1, 1), repair_channel(90, 0, 1, 1),
        ])
        _switch, tracer, _result = run_traced(KERNELS[kernel], schedule)
        faults = [
            record for record in tracer.records()
            if record.get("event") in ("fault_inject", "fault_repair")
        ]
        assert [
            (record["event"], record["cycle"], record["target"])
            for record in faults
        ] == [
            ("fault_inject", 40, config.channel_resource_id(0, 1, 1)),
            ("fault_repair", 90, config.channel_resource_id(0, 1, 1)),
        ]

    def test_in_flight_packet_quiesces_without_flit_loss(self, kernel):
        # Every injected packet is eventually delivered despite the
        # mid-run failure window: the owner finishes streaming and
        # queued traffic reroutes or waits for the repair.
        schedule = FaultSchedule([
            fail_channel(50, 0, 1, 0), fail_channel(50, 0, 1, 1),
            repair_channel(120, 0, 1, 0), repair_channel(120, 0, 1, 1),
        ])
        config = make_config()
        switch = KERNELS[kernel](config, faults=schedule)
        traffic = UniformRandomTraffic(config.radix, load=0.7, seed=5)
        result = Simulation(switch, traffic, warmup_cycles=0).run(
            200, drain=True
        )
        assert result.flits_ejected > 0
        assert switch.occupancy() == 0

    def test_repair_rearms_channel(self, kernel):
        config = make_config()
        rid = config.channel_resource_id(0, 1, 0)
        schedule = FaultSchedule([
            fail_channel(20, 0, 1, 0), repair_channel(60, 0, 1, 0),
        ])
        _switch, tracer, _result = run_traced(
            KERNELS[kernel], schedule, cycles=300, load=1.0
        )
        assert any(
            record.get("event") == "p2_grant"
            and record["resource"] == rid and record["cycle"] >= 60
            for record in tracer.records()
        )

    def test_out_of_range_channel_rejected(self, kernel):
        config = make_config()
        switch = KERNELS[kernel](config)
        with pytest.raises(ValueError, match="out of range"):
            apply_fault_events(switch, [fail_channel(0, 0, 1, 9)])


@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=sorted(KERNELS))
class TestStuckInputs:
    def test_stuck_input_stops_winning_but_keeps_queueing(self, kernel):
        schedule = FaultSchedule([fail_input(50, 2)])
        switch, tracer, _result = run_traced(
            KERNELS[kernel], schedule, cycles=200, load=1.0
        )
        # No phase-2 win for the stuck input once its active packet (if
        # any) has quiesced; allow a short tail for the quiesce.
        wins = [
            record["cycle"] for record in tracer.records()
            if record.get("event") == "p2_grant" and record["input"] == 2
        ]
        assert all(cycle < 80 for cycle in wins)
        # The source queue keeps accumulating.
        assert switch.ports[2].total_occupancy() > 0
        assert 2 in switch.stuck_inputs

    def test_repair_resumes_service(self, kernel):
        schedule = FaultSchedule([fail_input(40, 1), repair_input(120, 1)])
        _switch, tracer, _result = run_traced(
            KERNELS[kernel], schedule, cycles=300, load=1.0
        )
        assert any(
            record.get("event") == "p2_grant"
            and record["input"] == 1 and record["cycle"] >= 120
            for record in tracer.records()
        )


class TestClrgCorruption:
    def test_corruption_overwrites_counter_bank(self):
        config = make_config(arbitration=ArbitrationScheme.CLRG)
        switch = HiRiseSwitch(config)
        counters = switch.subblock_arbiters[3].counters
        apply_fault_events(switch, [corrupt_clrg(0, 3, 999)])
        assert counters._counts == [counters.max_count] * counters.num_inputs
        apply_fault_events(switch, [corrupt_clrg(0, 3, 1, port=2)])
        assert counters._counts[2] == 1

    def test_corruption_is_noop_for_non_clrg_schemes(self):
        config = make_config(arbitration=ArbitrationScheme.L2L_LRG)
        switch = HiRiseSwitch(config)
        apply_fault_events(switch, [corrupt_clrg(0, 3, 2)])  # must not raise

    def test_corruption_perturbs_yet_preserves_parity(self):
        config = make_config(arbitration=ArbitrationScheme.CLRG)
        schedule = FaultSchedule([corrupt_clrg(60, 1, 3)])
        assert verify_parity(config, schedule, load=0.9, seed=2,
                             measure_cycles=150, warmup_cycles=20) == []


class TestPartition:
    def test_full_partition_starves_cross_layer_traffic(self):
        config = make_config()
        schedule = FaultSchedule([
            fail_channel(0, 0, 1, 0), fail_channel(0, 0, 1, 1),
        ])
        switch = HiRiseSwitch(config, faults=schedule)
        traffic = UniformRandomTraffic(config.radix, load=0.6, seed=7)
        result = Simulation(switch, traffic, warmup_cycles=0).run(300)
        ejections = result.per_output_ejected
        lower = sum(ejections.get(port, 0) for port in range(4))
        upper = sum(ejections.get(port, 0) for port in range(4, 8))
        # Layer-1 outputs only see same-layer traffic; layer-0 outputs
        # see both directions (1 -> 0 channels are healthy).
        assert lower > upper > 0

    def test_reachable_fraction_reflects_partition(self):
        config = make_config()
        assert reachable_fraction(config, frozenset()) == 1.0
        partitioned = reachable_fraction(
            config, frozenset({(0, 1, 0), (0, 1, 1)})
        )
        # Layer-0 inputs reach only their own layer: 4 of 8 outputs for
        # half the inputs -> 0.75 overall.
        assert partitioned == pytest.approx(0.75)


class TestIdempotenceAndIntrospection:
    def test_redundant_events_are_silent_noops(self):
        config = make_config()
        tracer = SwitchTracer()
        switch = HiRiseSwitch(config, tracer=tracer)
        apply_fault_events(switch, [fail_channel(0, 0, 1, 0)])
        before = len(tracer.events)
        apply_fault_events(switch, [fail_channel(0, 0, 1, 0)])
        apply_fault_events(switch, [repair_input(0, 5)])
        assert len(tracer.events) == before
        assert switch.failed_channels == {(0, 1, 0)}

    def test_describe_fault_state(self):
        config = make_config()
        schedule = FaultSchedule([
            fail_channel(0, 0, 1, 0), fail_input(0, 3),
            repair_channel(500, 0, 1, 0),
        ])
        switch = HiRiseSwitch(config, faults=schedule)
        switch.step(0)
        state = describe_fault_state(switch)
        assert state["failed_channels"] == [[0, 1, 0]]
        assert state["stuck_inputs"] == [3]
        assert state["applied_events"] == 2
        assert state["pending_events"] == 1

    def test_snapshot_includes_faults_only_when_active(self):
        config = make_config()
        healthy = HiRiseSwitch(config)
        assert "faults" not in telemetry_snapshot(healthy)
        faulted = HiRiseSwitch(config, faults=FaultSchedule([
            fail_channel(0, 1, 0, 1),
        ]))
        faulted.step(0)
        snapshot = telemetry_snapshot(faulted)
        assert snapshot["faults"]["failed_channels"] == [[1, 0, 1]]


class TestDegradationMeasurement:
    def test_phases_follow_the_schedule(self):
        config = make_config()
        schedule = FaultSchedule([
            fail_channel(80, 0, 1, 0), repair_channel(160, 0, 1, 0),
        ])
        report = measure_degradation(
            config, schedule, load=0.8, seed=1,
            measure_cycles=300, warmup_cycles=50,
        )
        assert isinstance(report, DegradationReport)
        assert [phase.failed_channels for phase in report.phases] == [0, 1, 0]
        assert report.phases[0].end_cycle == 80
        assert report.phases[1].start_cycle == 80
        assert all(
            phase.reachable_fraction == 1.0 for phase in report.phases
        )
        assert report.total_cycles == 300
        payload = report.to_dict()
        assert payload["schedule_events"] == 2
        assert len(payload["phases"]) == 3

    def test_partition_phase_reports_reduced_reachability(self):
        config = make_config()
        schedule = FaultSchedule([
            fail_channel(100, 0, 1, 0), fail_channel(100, 0, 1, 1),
        ])
        report = measure_degradation(
            config, schedule, load=0.6, seed=2,
            measure_cycles=200, warmup_cycles=40,
        )
        assert report.phases[-1].reachable_fraction == pytest.approx(0.75)

    def test_kernels_agree_on_degradation(self):
        config = make_config()
        schedule = FaultSchedule([fail_channel(60, 1, 0, 0)])
        fast = measure_degradation(
            config, schedule, load=0.7, seed=3,
            measure_cycles=150, warmup_cycles=20, kernel="fast",
        )
        reference = measure_degradation(
            config, schedule, load=0.7, seed=3,
            measure_cycles=150, warmup_cycles=20, kernel="reference",
        )
        assert fast.to_dict()["phases"] == reference.to_dict()["phases"]

    def test_verify_parity_reports_mismatches_as_strings(self):
        config = make_config()
        schedule = FaultSchedule.random(config, seed=9, horizon=150, faults=3)
        mismatches = verify_parity(
            config, schedule, load=0.8, seed=4,
            measure_cycles=150, warmup_cycles=20,
        )
        assert mismatches == []

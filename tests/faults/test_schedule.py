"""Tests of the fault schedule model: events, ordering, serialisation."""

import io
import json

import pytest

from repro.core.config import HiRiseConfig
from repro.faults import (
    CORRUPT_CLRG,
    EVENT_KINDS,
    FAIL_CHANNEL,
    SCHEDULE_FORMAT,
    FaultCursor,
    FaultEvent,
    FaultSchedule,
    corrupt_clrg,
    fail_channel,
    fail_input,
    repair_channel,
    repair_input,
)


class TestFaultEvent:
    def test_constructor_helpers_round_trip_their_fields(self):
        event = fail_channel(10, 0, 1, 1)
        assert event.cycle == 10
        assert event.kind == FAIL_CHANNEL
        assert event.channel == (0, 1, 1)
        event = corrupt_clrg(5, 3, 2, port=1)
        assert (event.output, event.value, event.port) == (3, 2, 1)

    def test_rejects_negative_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            fail_channel(-1, 0, 1, 0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0, "melt_switch")

    @pytest.mark.parametrize("kind", sorted(EVENT_KINDS))
    def test_rejects_missing_payload(self, kind):
        with pytest.raises(ValueError, match="needs"):
            FaultEvent(0, kind)

    def test_rejects_diagonal_channel(self):
        with pytest.raises(ValueError, match="no L2LC to itself"):
            fail_channel(0, 2, 2, 0)

    def test_rejects_malformed_channel_triple(self):
        with pytest.raises(ValueError, match="triple"):
            FaultEvent(0, FAIL_CHANNEL, channel=(0, 1))

    def test_dict_round_trip(self):
        for event in (
            fail_channel(7, 1, 0, 1),
            repair_input(9, 4),
            corrupt_clrg(3, 2, 1, port=0),
        ):
            assert FaultEvent.from_dict(event.to_dict()) == event

    def test_to_dict_only_carries_used_fields(self):
        record = fail_input(4, 2).to_dict()
        assert record == {"cycle": 4, "kind": "fail_input", "port": 2}
        assert "value" in corrupt_clrg(1, 0, 0).to_dict()


class TestFaultSchedule:
    def test_sorts_by_cycle_stably(self):
        # Same-cycle events keep their scripted order (fail before
        # repair at cycle 50 must apply in that order).
        events = [
            repair_channel(50, 0, 1, 0),
            fail_channel(20, 0, 1, 0),
            fail_channel(50, 2, 1, 1),
        ]
        schedule = FaultSchedule(events)
        assert [e.cycle for e in schedule] == [20, 50, 50]
        assert schedule.events[1].kind == "repair_channel"

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultSchedule([{"cycle": 3}])

    def test_equality_and_hash(self):
        a = FaultSchedule([fail_channel(5, 0, 1, 0)])
        b = FaultSchedule([fail_channel(5, 0, 1, 0)])
        assert a == b and hash(a) == hash(b)
        assert a != FaultSchedule()

    def test_max_cycle_and_event_cycles(self):
        schedule = FaultSchedule([
            fail_channel(30, 0, 1, 0),
            repair_channel(80, 0, 1, 0),
            fail_input(30, 2),
        ])
        assert schedule.max_cycle == 80
        assert schedule.event_cycles() == [30, 80]
        assert FaultSchedule().max_cycle == -1

    def test_json_file_round_trip(self, tmp_path):
        schedule = FaultSchedule([
            fail_channel(10, 0, 1, 0),
            corrupt_clrg(20, 5, 2, port=3),
            repair_channel(60, 0, 1, 0),
        ])
        path = tmp_path / "schedule.json"
        schedule.dump(str(path))
        payload = json.loads(path.read_text())
        assert payload["format"] == SCHEDULE_FORMAT
        assert FaultSchedule.load(str(path)) == schedule

    def test_stream_round_trip(self):
        schedule = FaultSchedule([fail_input(3, 1)])
        buffer = io.StringIO()
        schedule.dump(buffer)
        buffer.seek(0)
        assert FaultSchedule.load(buffer) == schedule

    def test_load_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a"):
            FaultSchedule.load(io.StringIO('{"format": "other", "events": []}'))

    def test_load_rejects_missing_events(self):
        source = io.StringIO(json.dumps({"format": SCHEDULE_FORMAT}))
        with pytest.raises(ValueError, match="events"):
            FaultSchedule.load(source)

    def test_state_at_replays_events_inclusively(self):
        schedule = FaultSchedule([
            fail_channel(10, 0, 1, 0),
            fail_input(20, 3),
            repair_channel(30, 0, 1, 0),
            repair_input(40, 3),
        ])
        assert schedule.state_at(9) == (frozenset(), frozenset())
        failed, stuck = schedule.state_at(10)
        assert failed == {(0, 1, 0)} and stuck == frozenset()
        failed, stuck = schedule.state_at(25)
        assert failed == {(0, 1, 0)} and stuck == {3}
        assert schedule.state_at(40) == (frozenset(), frozenset())

    def test_state_at_honours_static_initial_failures(self):
        schedule = FaultSchedule([repair_channel(5, 1, 0, 1)])
        failed, _ = schedule.state_at(5, initial_failed={(1, 0, 1), (0, 1, 0)})
        assert failed == {(0, 1, 0)}


class TestRandomSchedules:
    def make_config(self):
        return HiRiseConfig(radix=16, layers=4, channel_multiplicity=2)

    def test_same_seed_same_schedule(self):
        config = self.make_config()
        kwargs = dict(
            horizon=500, faults=8, include_inputs=True, include_clrg=True
        )
        assert FaultSchedule.random(config, seed=3, **kwargs) == \
            FaultSchedule.random(config, seed=3, **kwargs)
        assert FaultSchedule.random(config, seed=3, **kwargs) != \
            FaultSchedule.random(config, seed=4, **kwargs)

    def test_events_respect_geometry_and_horizon(self):
        config = self.make_config()
        schedule = FaultSchedule.random(
            config, seed=11, horizon=200, faults=12,
            include_inputs=True, include_clrg=True,
        )
        for event in schedule:
            if event.channel is not None:
                src, dst, channel = event.channel
                assert 0 <= src < config.layers
                assert 0 <= dst < config.layers and src != dst
                assert 0 <= channel < config.channel_multiplicity
            if event.kind == CORRUPT_CLRG:
                assert 0 <= event.output < config.radix
            if event.kind in ("fail_input", "repair_input"):
                assert 0 <= event.port < config.radix
            # Onsets land inside [start, horizon); repairs may trail it.
            if event.kind.startswith("fail") or event.kind == CORRUPT_CLRG:
                assert 0 <= event.cycle < 200

    def test_permanent_fraction_one_never_repairs(self):
        schedule = FaultSchedule.random(
            self.make_config(), seed=5, horizon=100, faults=6,
            permanent_fraction=1.0,
        )
        assert all(event.kind == FAIL_CHANNEL for event in schedule)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            FaultSchedule.random(self.make_config(), seed=0, horizon=0)


class TestFaultCursor:
    def test_take_returns_due_batches_in_order(self):
        schedule = FaultSchedule([
            fail_channel(5, 0, 1, 0),
            fail_input(5, 1),
            repair_channel(9, 0, 1, 0),
        ])
        cursor = FaultCursor(schedule)
        assert cursor.take(4) is None
        batch = cursor.take(5)
        assert [event.kind for event in batch] == ["fail_channel", "fail_input"]
        assert cursor.applied == 2 and cursor.remaining == 1
        assert cursor.take(8) is None
        assert [event.kind for event in cursor.take(9)] == ["repair_channel"]
        assert cursor.take(100) is None
        assert cursor.remaining == 0

    def test_catch_up_returns_whole_backlog(self):
        schedule = FaultSchedule([
            fail_channel(0, 0, 1, 0),
            fail_channel(3, 1, 0, 1),
            repair_channel(7, 0, 1, 0),
        ])
        cursor = FaultCursor(schedule)
        assert len(cursor.take(50)) == 3

    def test_cursors_are_independent_per_switch(self):
        schedule = FaultSchedule([fail_channel(2, 0, 1, 0)])
        first, second = FaultCursor(schedule), FaultCursor(schedule)
        assert first.take(2) is not None
        assert second.take(2) is not None

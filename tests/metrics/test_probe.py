"""Tests of the utilization probe."""

import pytest

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import ProbedSwitch
from repro.network.engine import Simulation
from repro.switches import SwizzleSwitch2D
from repro.traffic import TraceTraffic, UniformRandomTraffic


def run(probe, traffic, cycles):
    sim = Simulation(probe, traffic, warmup_cycles=0)
    return sim.run(cycles, drain=False)


class TestProbeDelegation:
    def test_transparent_to_simulation_results(self):
        bare = SwizzleSwitch2D(8)
        probed = ProbedSwitch(SwizzleSwitch2D(8))
        t1 = UniformRandomTraffic(8, 0.2, seed=9)
        t2 = UniformRandomTraffic(8, 0.2, seed=9)
        r_bare = Simulation(bare, t1).run(500)
        r_probed = Simulation(probed, t2).run(500)
        assert r_bare.packets_ejected == r_probed.packets_ejected
        assert r_bare.packet_latencies == r_probed.packet_latencies

    def test_occupancy_delegates(self):
        probe = ProbedSwitch(SwizzleSwitch2D(4))
        probe.inject(TraceTraffic([(0, 0, 1)]).factory.create(0, 1, 0))
        assert probe.occupancy() == probe.switch.occupancy() == 4


class TestMeasurements:
    def test_empty_probe_reports_zero(self):
        probe = ProbedSwitch(SwizzleSwitch2D(4))
        assert probe.output_utilization(0) == 0.0
        assert probe.delivered_flit_rate() == 0.0
        assert probe.mean_channel_utilization() == 0.0

    def test_single_flow_output_utilization(self):
        """A back-to-back flow keeps its output busy ~4/5 of cycles (four
        data cycles plus one arbitration cycle per packet)."""
        probe = ProbedSwitch(SwizzleSwitch2D(8))
        events = [(c, 0, 5) for c in range(0, 400, 2)]
        run(probe, TraceTraffic(events), 400)
        assert probe.output_utilization(5) == pytest.approx(0.8, abs=0.05)
        assert probe.output_utilization(3) == 0.0
        assert probe.delivered_flit_rate(5) == pytest.approx(0.8, abs=0.05)

    def test_channel_utilization_on_hirise(self):
        config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=1)
        probe = ProbedSwitch(HiRiseSwitch(config))
        # Cross-layer flow: local input 0 on layer 0 -> output on layer 1.
        events = [(c, 0, 5) for c in range(0, 400, 2)]
        run(probe, TraceTraffic(events), 400)
        utilizations = probe.channel_utilizations()
        assert ("ch", 0, 1, 0) in utilizations
        assert utilizations[("ch", 0, 1, 0)] == pytest.approx(0.8, abs=0.05)
        assert probe.mean_channel_utilization() > 0.0

    def test_utilizations_bounded(self):
        config = HiRiseConfig(radix=16, layers=4, channel_multiplicity=2)
        probe = ProbedSwitch(HiRiseSwitch(config))
        run(probe, UniformRandomTraffic(16, 0.5, seed=2), 500)
        for value in probe.channel_utilizations().values():
            assert 0.0 <= value <= 1.0
        for output in range(16):
            assert 0.0 <= probe.output_utilization(output) <= 1.0

    def test_flat_switch_has_no_channels(self):
        probe = ProbedSwitch(SwizzleSwitch2D(8))
        run(probe, UniformRandomTraffic(8, 0.3, seed=1), 300)
        assert probe.channel_utilizations() == {}
        assert probe.mean_channel_utilization() == 0.0


class TestKernelObservation:
    """The probe reads resource occupancy through different interfaces on
    the two Hi-Rise kernels: the fast kernel's ``busy_resources()`` view
    over its flat ``resource_owner`` array, and the reference kernel's
    tuple-keyed ``resource_owner`` dict.  Both must yield the same
    measurements for the same run."""

    def observe(self, switch_class):
        from repro.core.reference import ReferenceHiRiseSwitch  # noqa: F401

        config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=2)
        probe = ProbedSwitch(switch_class(config))
        run(probe, UniformRandomTraffic(8, 0.7, seed=12), 400)
        return probe

    def test_fast_and_reference_probes_agree(self):
        from repro.core.reference import ReferenceHiRiseSwitch

        fast = self.observe(HiRiseSwitch)
        reference = self.observe(ReferenceHiRiseSwitch)
        assert fast.channel_utilizations() == reference.channel_utilizations()
        assert fast._resource_busy == reference._resource_busy
        for output in range(8):
            assert fast.output_utilization(output) == (
                reference.output_utilization(output)
            )

    def test_fast_kernel_exposes_busy_resources_view(self):
        fast = self.observe(HiRiseSwitch)
        assert callable(getattr(fast.switch, "busy_resources"))
        for resource in fast.switch.busy_resources():
            assert resource[0] in ("int", "ch")

    def test_reference_kernel_uses_resource_owner_fallback(self):
        from repro.core.reference import ReferenceHiRiseSwitch

        reference = self.observe(ReferenceHiRiseSwitch)
        assert not hasattr(reference.switch, "busy_resources")
        assert isinstance(reference.switch.resource_owner, dict)

"""Tests of the confidence-interval utilities."""

import numpy as np
import pytest

from repro.metrics.confidence import (
    ConfidenceInterval,
    batch_means,
    replicate,
    t_interval,
)


class TestTInterval:
    def test_known_small_sample(self):
        ci = t_interval([1.0, 2.0, 3.0], confidence=0.95)
        assert ci.mean == pytest.approx(2.0)
        # s = 1, n = 3, t_{0.975,2} = 4.3027 -> half width 2.484.
        assert ci.half_width == pytest.approx(4.3027 / np.sqrt(3), rel=1e-3)
        assert ci.contains(2.0)
        assert not ci.contains(10.0)

    def test_zero_variance(self):
        ci = t_interval([5.0, 5.0, 5.0, 5.0])
        assert ci.half_width == 0.0
        assert ci.low == ci.high == 5.0

    def test_coverage_on_gaussian_data(self):
        """~95% of intervals from N(0,1) samples should contain 0."""
        rng = np.random.default_rng(3)
        hits = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(0, 1, size=20)
            if t_interval(list(sample)).contains(0.0):
                hits += 1
        assert hits / trials == pytest.approx(0.95, abs=0.04)

    def test_validation(self):
        with pytest.raises(ValueError):
            t_interval([1.0])
        with pytest.raises(ValueError):
            t_interval([1.0, 2.0], confidence=1.0)

    def test_relative_half_width(self):
        ci = ConfidenceInterval(mean=10.0, half_width=1.0,
                                confidence=0.95, observations=5)
        assert ci.relative_half_width == pytest.approx(0.1)
        zero = ConfidenceInterval(mean=0.0, half_width=1.0,
                                  confidence=0.95, observations=5)
        assert zero.relative_half_width == float("inf")


class TestBatchMeans:
    def test_batches_reduce_to_t_interval_of_averages(self):
        samples = list(range(100))
        ci = batch_means(samples, num_batches=10)
        assert ci.observations == 10
        assert ci.mean == pytest.approx(49.5)

    def test_remainder_dropped(self):
        samples = [1.0] * 23
        ci = batch_means(samples, num_batches=5)
        assert ci.mean == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means([1.0, 2.0], num_batches=1)
        with pytest.raises(ValueError):
            batch_means([1.0], num_batches=2)

    def test_on_simulation_latencies(self):
        """End-to-end: a CI over a real latency stream is tight and
        brackets the point estimate."""
        from repro.network.engine import Simulation
        from repro.switches import SwizzleSwitch2D
        from repro.traffic import UniformRandomTraffic

        switch = SwizzleSwitch2D(16)
        traffic = UniformRandomTraffic(16, 0.08, seed=4)
        result = Simulation(switch, traffic, warmup_cycles=300).run(3000)
        ci = batch_means(result.packet_latencies, num_batches=10)
        assert ci.contains(result.avg_latency_cycles)
        assert ci.relative_half_width < 0.15


class TestReplicate:
    def test_replications_use_distinct_seeds(self):
        seeds = []

        def experiment(seed):
            seeds.append(seed)
            return float(seed)

        ci = replicate(experiment, num_replications=4, base_seed=10)
        assert seeds == [10, 11, 12, 13]
        assert ci.mean == pytest.approx(11.5)

    def test_on_throughput_measurements(self):
        from repro.metrics import saturation_throughput
        from repro.switches import SwizzleSwitch2D
        from repro.traffic import UniformRandomTraffic

        def experiment(seed):
            return saturation_throughput(
                lambda: SwizzleSwitch2D(16),
                lambda load: UniformRandomTraffic(16, load, seed=seed),
                warmup_cycles=150,
                measure_cycles=800,
            )

        ci = replicate(experiment, num_replications=3)
        assert ci.relative_half_width < 0.1
        assert ci.mean > 1.0  # packets/cycle aggregate for radix 16

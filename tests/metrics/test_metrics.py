"""Tests of statistics, fairness indices, and the saturation search."""

import math

import pytest

from repro.metrics import (
    LatencyStats,
    accepted_throughput,
    jain_index,
    latency_vs_load,
    max_min_ratio,
    saturation_throughput,
)
from repro.switches import SwizzleSwitch2D
from repro.traffic import UniformRandomTraffic


class TestLatencyStats:
    def test_summary_values(self):
        stats = LatencyStats.from_samples(list(range(1, 101)))
        assert stats.count == 100
        assert stats.mean == pytest.approx(50.5)
        assert stats.p50 == 50
        assert stats.p95 == 95
        assert stats.p99 == 99
        assert stats.maximum == 100

    def test_single_sample(self):
        stats = LatencyStats.from_samples([7])
        assert stats.mean == stats.p50 == stats.p99 == stats.maximum == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples([])


class TestFairness:
    def test_jain_perfectly_fair(self):
        assert jain_index([3, 3, 3, 3]) == pytest.approx(1.0)

    def test_jain_maximally_unfair(self):
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_jain_all_zero_is_vacuously_fair(self):
        assert jain_index([0, 0]) == 1.0

    def test_jain_validation(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([-1, 2])

    def test_max_min_ratio(self):
        assert max_min_ratio([2, 4]) == 2.0
        assert max_min_ratio([5, 5]) == 1.0
        assert max_min_ratio([0, 0]) == 1.0
        assert math.isinf(max_min_ratio([0, 1]))


class TestSaturation:
    def test_accepted_tracks_offered_below_saturation(self):
        result = accepted_throughput(
            lambda: SwizzleSwitch2D(16),
            lambda load: UniformRandomTraffic(16, load, seed=1),
            load=0.05,
            warmup_cycles=200,
            measure_cycles=2000,
        )
        offered = 0.05 * 16
        assert result.throughput_packets_per_cycle == pytest.approx(
            offered, rel=0.1
        )

    def test_saturation_is_a_plateau(self):
        """Overdriving at 0.8 and 1.0 must deliver the same rate."""
        def measure(load):
            return accepted_throughput(
                lambda: SwizzleSwitch2D(16),
                lambda l: UniformRandomTraffic(16, l, seed=2),
                load=load,
                warmup_cycles=300,
                measure_cycles=1500,
            ).throughput_packets_per_cycle

        assert measure(0.8) == pytest.approx(measure(1.0), rel=0.05)

    def test_saturation_throughput_reasonable(self):
        sat = saturation_throughput(
            lambda: SwizzleSwitch2D(16),
            lambda load: UniformRandomTraffic(16, load, seed=3),
            warmup_cycles=300,
            measure_cycles=1500,
        )
        per_port_flits = sat * 4 / 16
        assert 0.5 < per_port_flits < 0.85

    def test_latency_vs_load_hockey_stick(self):
        series = latency_vs_load(
            lambda: SwizzleSwitch2D(16),
            lambda load: UniformRandomTraffic(16, load, seed=4),
            loads=[0.02, 0.08, 0.16],
            warmup_cycles=200,
            measure_cycles=1500,
        )
        latencies = [latency for _, latency, _ in series]
        assert latencies[0] < latencies[1] < latencies[2]
        # Zero-load latency close to the 4-cycle packet serialisation.
        assert latencies[0] < 8

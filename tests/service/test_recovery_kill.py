"""Satellite drill: SIGKILL the daemon mid-campaign, restart it on the
same state directory, and verify the recovered run is bit-identical to
an uninterrupted one — with completed work served from cache (the
cache-hit counter climbs, the simulation counter does not)."""

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.service import ServiceClient, job_fingerprint, run_job

SERVE_PATTERN = re.compile(r"serving on [^:]+:(\d+)")


def start_daemon(state_dir):
    """`repro serve` as a subprocess; returns (process, client)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state", str(state_dir), "--workers", "2", "--max-batch", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    line = process.stdout.readline()
    match = SERVE_PATTERN.search(line)
    if not match:
        process.kill()
        pytest.fail(f"daemon did not start: {line!r}")
    client = ServiceClient("127.0.0.1", int(match.group(1)),
                           timeout=60.0)
    client.wait_until_up()
    return process, client


def campaign_specs():
    """A mixed campaign: quick chaos probes plus real simulations."""
    specs = [{"kind": "chaos", "seed": seed} for seed in range(6)]
    specs.append({"kind": "simulate", "load": 0.2, "cycles": 250,
                  "warmup": 20, "seed": 3})
    specs.append({"kind": "simulate", "load": 0.35, "cycles": 250,
                  "warmup": 20, "seed": 4, "traffic": "hotspot"})
    return specs


def test_kill_minus_nine_then_restart_is_bit_identical(tmp_path):
    state = tmp_path / "state"
    specs = campaign_specs()
    baselines = {
        job_fingerprint(spec): run_job(spec) for spec in specs
    }

    process, client = start_daemon(state)
    try:
        for spec in specs:
            assert client.submit_with_backpressure(spec)["ok"]
        # Let part of the campaign land, then pull the plug hard.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if client.metrics()["counters"]["completed"] >= 2:
                break
            time.sleep(0.05)
        else:
            pytest.fail("campaign made no progress before the kill")
    finally:
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)

    # Restart on the same state: the journal replays what the crash
    # interrupted; nothing is lost, nothing diverges.
    process, client = start_daemon(state)
    try:
        for spec in specs:
            fingerprint = job_fingerprint(spec)
            outcome = client.result(fingerprint=fingerprint, wait_s=180)
            assert outcome["payload"] == baselines[fingerprint], (
                f"recovered result diverged for {spec}"
            )

        # Re-running the whole campaign is now pure cache: every
        # submission hits, and the simulation counter does not move.
        simulations_before = client.metrics()["counters"]["simulations"]
        for spec in specs:
            response = client.submit(spec)
            assert response["cache_hit"] is True, (
                f"expected a cache hit for {spec}"
            )
        counters = client.metrics()["counters"]
        assert counters["simulations"] == simulations_before
        assert counters["cache_hits"] >= len(specs)

        # The journal survived both lives and still replays cleanly.
        from repro.service.journal import JobJournal

        unsettled, settled, _ = JobJournal.replay(
            state / "journal.jsonl"
        )
        assert not unsettled
        assert len(settled) >= len(specs)
    finally:
        client.shutdown()
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()

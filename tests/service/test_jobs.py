"""Job specs: normalization, fingerprints, and pure execution."""

import pytest

from repro.service.cache import ResultCache
from repro.service.jobs import (
    execute_job_task,
    job_fingerprint,
    normalize_spec,
    run_job,
)


class TestNormalize:
    def test_defaults_are_filled(self):
        spec = normalize_spec({"kind": "simulate"})
        assert spec["traffic"] == "uniform"
        assert spec["load"] == 0.3
        assert spec["cycles"] == 300

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            normalize_spec({"kind": "teleport"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            normalize_spec({"kind": "simulate", "laod": 0.5})

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ValueError):
            normalize_spec({"kind": "simulate",
                            "config": {"radixx": 16}})

    def test_ill_typed_value_rejected(self):
        with pytest.raises(ValueError):
            normalize_spec({"kind": "simulate", "cycles": "many"})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            normalize_spec(["kind", "simulate"])


class TestFingerprint:
    def test_defaults_and_explicit_agree(self):
        assert job_fingerprint({"kind": "simulate"}) == job_fingerprint({
            "kind": "simulate", "traffic": "uniform", "load": 0.3,
            "seed": 1, "cycles": 300, "warmup": 40, "drain": False,
        })

    def test_different_work_differs(self):
        base = job_fingerprint({"kind": "simulate"})
        assert job_fingerprint({"kind": "simulate", "load": 0.4}) != base
        assert job_fingerprint({"kind": "audit"}) != base

    def test_config_order_normalized(self):
        # failed_channels in any order address the same cache entry
        # (inherited from config_fingerprint's normalisation).
        channels_one = {"failed_channels": [[0, 1, 0], [2, 3, 1]]}
        channels_two = {"failed_channels": [[2, 3, 1], [0, 1, 0]]}
        assert job_fingerprint(
            {"kind": "simulate", "config": channels_one}
        ) == job_fingerprint(
            {"kind": "simulate", "config": channels_two}
        )

    def test_is_a_sha256_hexdigest(self):
        fingerprint = job_fingerprint({"kind": "chaos"})
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")


class TestRunJob:
    def test_chaos_is_pure_without_chaos_dir(self):
        spec = {"kind": "chaos", "mode": "crash_always", "seed": 2}
        payload = run_job(spec)  # inert: drills need a chaos_dir
        assert payload == {"kind": "chaos", "mode": "crash_always",
                           "seed": 2, "value": 6.0}

    def test_simulate_deterministic(self):
        spec = {"kind": "simulate", "load": 0.2, "cycles": 40,
                "warmup": 5}
        assert run_job(spec) == run_job(spec)

    def test_sweep_payload_shape(self):
        spec = {"kind": "sweep", "loads": [0.1, 0.2], "cycles": 30,
                "warmup": 5, "replications": 2}
        payload = run_job(spec)
        assert payload["kind"] == "sweep"
        assert [point["load"] for point in payload["points"]] == [0.1, 0.2]
        assert all("half_width" in point for point in payload["points"])

    def test_fuzz_payload_shape(self):
        payload = run_job({"kind": "fuzz", "cases": 2, "max_radix": 8})
        assert payload["kind"] == "fuzz"
        assert payload["cases_run"] == 2

    def test_audit_payload_shape(self):
        payload = run_job({"kind": "audit", "cycles": 40, "warmup": 5})
        assert payload["kind"] == "audit"
        assert "summary" in payload


class TestExecuteJobTask:
    def test_writes_the_cache_entry(self, tmp_path):
        import json

        spec = {"kind": "chaos", "seed": 4}
        fingerprint = job_fingerprint(spec)
        value = execute_job_task(
            spec_json=json.dumps(spec), cache_root=str(tmp_path)
        )
        assert value == 1.0
        cached = ResultCache(tmp_path).get(fingerprint)
        assert cached == run_job(spec)

"""Unit coverage for the service's building blocks: queue, breaker,
journal, protocol, metrics."""

import threading

import pytest

from repro.service.breaker import CircuitBreaker
from repro.service.jobs import SERVICE_FORMAT
from repro.service.journal import JobJournal
from repro.service.metrics import ServiceMetrics
from repro.service.queue import BoundedJobQueue
from repro.service import protocol
from repro.util.jsonl import append_jsonl


class TestQueue:
    def test_fifo_within_priority(self):
        queue = BoundedJobQueue(8)
        for name in "abc":
            assert queue.offer(name)
        assert queue.take(3) == ["a", "b", "c"]

    def test_priority_order(self):
        queue = BoundedJobQueue(8)
        queue.offer("low", priority=0)
        queue.offer("high", priority=5)
        queue.offer("mid", priority=3)
        assert queue.take(3) == ["high", "mid", "low"]

    def test_bound_refuses(self):
        queue = BoundedJobQueue(2)
        assert queue.offer("a") and queue.offer("b")
        assert queue.is_full
        assert not queue.offer("c")
        queue.take(1)
        assert queue.offer("c")

    def test_take_times_out_empty(self):
        queue = BoundedJobQueue(2)
        assert queue.take(1, timeout=0.01) == []

    def test_close_refuses_and_wakes(self):
        queue = BoundedJobQueue(2)
        taken = []
        thread = threading.Thread(
            target=lambda: taken.append(queue.take(1, timeout=5.0))
        )
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert taken == [[]]
        assert not queue.offer("a")

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            BoundedJobQueue(0)


class TestBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.record_crash("fp")
        assert not breaker.record_crash("fp")
        assert breaker.record_crash("fp")
        assert breaker.is_open("fp")
        assert breaker.open_keys() == ["fp"]

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_crash("fp")
        breaker.record_success("fp")
        assert not breaker.record_crash("fp")
        assert not breaker.is_open("fp")

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_crash("bad")
        assert breaker.is_open("bad")
        assert not breaker.is_open("good")

    def test_reset_closes(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_crash("fp")
        breaker.reset("fp")
        assert not breaker.is_open("fp")


class TestJournal:
    def test_write_ahead_then_done_settles(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.accepted("job-0", "f" * 64, {"kind": "chaos"}, 1)
        journal.accepted("job-1", "e" * 64, {"kind": "chaos"}, 0)
        journal.done("job-0", "completed", "computed")
        journal.close()
        unsettled, settled, next_sequence = JobJournal.replay(path)
        assert [row["job_id"] for row in unsettled] == ["job-1"]
        assert settled["job-0"]["state"] == "completed"
        assert settled["job-0"]["fingerprint"] == "f" * 64
        assert next_sequence == 2

    def test_torn_tail_drops_only_the_tear(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.accepted("job-0", "f" * 64, {"kind": "chaos"}, 0)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "accepted", "job_id": "job-1"')
        unsettled, settled, next_sequence = JobJournal.replay(path)
        assert [row["job_id"] for row in unsettled] == ["job-0"]
        assert next_sequence == 1

    def test_missing_journal_is_empty(self, tmp_path):
        unsettled, settled, next_sequence = JobJournal.replay(
            tmp_path / "absent.jsonl"
        )
        assert unsettled == [] and settled == {} and next_sequence == 0

    def test_reopen_does_not_duplicate_header(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        JobJournal(path).close()
        JobJournal(path).close()
        text = path.read_text(encoding="utf-8")
        assert text.count('"header"') == 1

    def test_wrong_format_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        append_jsonl(path, {"format": "repro.perf/v1", "event": "header"})
        with pytest.raises(ValueError):
            JobJournal.replay(path)

    def test_unknown_event_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        append_jsonl(path, {"format": SERVICE_FORMAT, "event": "header"})
        append_jsonl(path, {"event": "exploded"})
        with pytest.raises(ValueError):
            JobJournal.replay(path)


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "submit", "spec": {"kind": "chaos"}}
        assert protocol.decode_line(protocol.encode(message)) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            protocol.decode_line(b"not json\n")
        with pytest.raises(ValueError):
            protocol.decode_line(b"[1, 2]\n")
        with pytest.raises(ValueError):
            protocol.decode_line(b"x" * (protocol.MAX_LINE_BYTES + 1))

    def test_responses_are_tagged(self):
        assert protocol.ok(x=1) == {
            "ok": True, "format": SERVICE_FORMAT, "x": 1,
        }
        response = protocol.error("overloaded", retry_after_s=1.5)
        assert response["ok"] is False
        assert response["error"] == "overloaded"
        assert response["retry_after_s"] == 1.5

    def test_unknown_error_code_refused(self):
        with pytest.raises(ValueError):
            protocol.error("weird_code")


class TestMetrics:
    def test_bump_and_snapshot(self):
        metrics = ServiceMetrics()
        metrics.bump("accepted")
        metrics.bump("cache_hits", 3)
        snapshot = metrics.snapshot()
        assert snapshot["accepted"] == 1
        assert snapshot["cache_hits"] == 3
        assert snapshot["queue_depth"] == 0

    def test_unknown_counter_refused(self):
        with pytest.raises(ValueError):
            ServiceMetrics().bump("made_up")

    def test_gauge_callbacks(self):
        metrics = ServiceMetrics()
        metrics.queue_depth_fn = lambda: 4
        metrics.inflight_fn = lambda: 2
        snapshot = metrics.snapshot()
        assert snapshot["queue_depth"] == 4
        assert snapshot["inflight"] == 2

    def test_prometheus_exposition(self):
        metrics = ServiceMetrics()
        metrics.bump("rejected_overload", 7)
        text = metrics.to_prometheus()
        assert "repro_service_rejected_overload 7" in text
        assert "# HELP repro_service_rejected_overload" in text

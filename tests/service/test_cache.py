"""Content-addressed cache: atomicity, digests, corruption quarantine."""

import json
import os

import pytest

from repro.service.cache import ResultCache, payload_digest
from repro.service.jobs import SERVICE_FORMAT

FP_A = "a" * 64
FP_B = "b" * 64
PAYLOAD = {"kind": "chaos", "value": 1.5, "points": [1, 2, 3]}


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_A, PAYLOAD)
        assert cache.get(FP_A) == PAYLOAD
        assert cache.hits == 1 and cache.misses == 0

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(FP_A) is None
        assert cache.misses == 1

    def test_entry_embeds_fingerprint_and_digest(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(FP_A, PAYLOAD)
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry["format"] == SERVICE_FORMAT
        assert entry["fingerprint"] == FP_A
        assert entry["sha256"] == payload_digest(PAYLOAD)

    def test_put_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = cache.put(FP_A, PAYLOAD).read_bytes()
        second = cache.put(FP_A, PAYLOAD).read_bytes()
        assert first == second

    def test_malformed_fingerprint_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.put("not-a-fingerprint", PAYLOAD)
        with pytest.raises(ValueError):
            cache.get("../../etc/passwd")


class TestCorruption:
    """Satellite: truncation and bit-flips are detected, quarantined,
    and never served; a recompute then heals the store."""

    def _corrupt_roundtrip(self, tmp_path, mutate):
        cache = ResultCache(tmp_path)
        path = cache.put(FP_A, PAYLOAD)
        mutate(path)
        assert cache.get(FP_A) is None  # never serve corrupt bytes
        assert cache.corrupt == 1
        assert cache.quarantined() == [f"{FP_A}.corrupt-0"]
        assert not cache.contains(FP_A)
        # Recompute heals: a fresh put serves again.
        cache.put(FP_A, PAYLOAD)
        assert cache.get(FP_A) == PAYLOAD

    def test_truncation(self, tmp_path):
        def truncate(path):
            raw = path.read_bytes()
            path.write_bytes(raw[: len(raw) // 2])

        self._corrupt_roundtrip(tmp_path, truncate)

    def test_bit_flip_in_payload(self, tmp_path):
        def flip(path):
            raw = bytearray(path.read_bytes())
            # Flip a bit inside the payload value region (the entry
            # still parses as JSON, so only the digest catches it).
            index = raw.find(b"1.5")
            assert index > 0
            raw[index] = ord("9")
            path.write_bytes(bytes(raw))

        self._corrupt_roundtrip(tmp_path, flip)

    def test_wrong_format_tag(self, tmp_path):
        def retag(path):
            entry = json.loads(path.read_text(encoding="utf-8"))
            entry["format"] = "repro.other/v1"
            path.write_text(json.dumps(entry), encoding="utf-8")

        self._corrupt_roundtrip(tmp_path, retag)

    def test_misfiled_entry(self, tmp_path):
        # An entry copied under the wrong name must not be served for
        # the name it sits under.
        cache = ResultCache(tmp_path)
        path = cache.put(FP_A, PAYLOAD)
        os.replace(path, cache.path_for(FP_B))
        assert cache.get(FP_B) is None
        assert cache.corrupt == 1

    def test_each_corruption_gets_its_own_quarantine_file(self, tmp_path):
        cache = ResultCache(tmp_path)
        for _ in range(3):
            path = cache.put(FP_A, PAYLOAD)
            path.write_text("garbage", encoding="utf-8")
            assert cache.get(FP_A) is None
        assert len(cache.quarantined()) == 3


class TestHousekeeping:
    def test_fingerprints_excludes_quarantine_and_temp(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_A, PAYLOAD)
        path = cache.put(FP_B, PAYLOAD)
        path.write_text("garbage", encoding="utf-8")
        cache.get(FP_B)
        (tmp_path / f".{FP_A}.tmp-99999").write_text("", encoding="utf-8")
        assert cache.fingerprints() == [FP_A]

    def test_sweep_temp(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / f".{FP_A}.tmp-99999").write_text("", encoding="utf-8")
        assert cache.sweep_temp() == 1
        assert cache.sweep_temp() == 0

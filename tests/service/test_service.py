"""The daemon end to end (in-process): admission control, coalescing,
overload shedding, breaker quarantine, corrupt-entry recompute, and
journal-driven recovery."""

import json
import time

import pytest

from repro.service import (
    ServiceClient,
    ServiceError,
    SweepService,
    job_fingerprint,
    run_job,
)


def make_service(tmp_path, **overrides):
    options = dict(workers=2, queue_limit=8, max_batch=2,
                   breaker_threshold=2, max_retries=5,
                   backoff_base=0.01, backoff_cap=0.05)
    options.update(overrides)
    return SweepService(tmp_path / "state", **options)


@pytest.fixture
def service(tmp_path):
    svc = make_service(tmp_path)
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture
def client(service):
    host, port = service.address
    return ServiceClient(host, port, timeout=60.0)


def chaos(seed, mode="ok"):
    return {"kind": "chaos", "seed": seed, "mode": mode}


class TestRoundTrip:
    def test_submit_compute_result(self, client):
        accepted = client.submit(chaos(1))
        assert accepted["state"] == "queued"
        outcome = client.result(job_id=accepted["job_id"], wait_s=60)
        assert outcome["payload"] == run_job(chaos(1))
        assert outcome["job"]["source"] == "computed"

    def test_second_submit_is_a_cache_hit(self, service, client):
        first = client.submit(chaos(2))
        client.result(job_id=first["job_id"], wait_s=60)
        second = client.submit(chaos(2))
        assert second["cache_hit"] is True
        assert second["state"] == "completed"
        assert second["job_id"] != first["job_id"]
        assert service.metrics.value("cache_hits") == 1
        assert service.metrics.value("simulations") == 1

    def test_result_by_fingerprint(self, client):
        accepted = client.submit(chaos(3))
        outcome = client.result(
            fingerprint=accepted["fingerprint"], wait_s=60
        )
        assert outcome["payload"] == run_job(chaos(3))

    def test_transient_failure_is_retried_transparently(
        self, service, client
    ):
        accepted = client.submit(chaos(4, "fail_once"))
        outcome = client.result(job_id=accepted["job_id"], wait_s=60)
        assert outcome["payload"]["value"] == run_job(chaos(4))["value"]
        assert service.metrics.value("retries") >= 1

    def test_crash_once_survives_via_pool_rebuild(self, service, client):
        accepted = client.submit(chaos(5, "crash_once"))
        outcome = client.result(job_id=accepted["job_id"], wait_s=120)
        assert outcome["payload"]["seed"] == 5
        assert service.metrics.value("crashes") >= 1


class TestProtocolErrors:
    def test_invalid_spec(self, service, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "teleport"})
        assert excinfo.value.code == "invalid_spec"
        assert service.metrics.value("rejected_invalid") == 1

    def test_unknown_job(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-999")
        assert excinfo.value.code == "unknown_job"

    def test_bad_request_line(self, service):
        import socket

        host, port = service.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            response = json.loads(sock.makefile("rb").readline())
        assert response["ok"] is False
        assert response["error"] == "bad_request"

    def test_unknown_op(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("teleport")
        assert excinfo.value.code == "bad_request"


class TestAdmission:
    """Dispatcher-free: drive the handler directly so queued jobs stay
    queued and admission decisions are deterministic."""

    def make_idle(self, tmp_path, **overrides):
        service = make_service(tmp_path, **overrides)
        service._recover()  # journal + replay, but no threads
        return service

    def test_overload_sheds_with_retry_after(self, tmp_path):
        service = self.make_idle(tmp_path, queue_limit=1)
        first = service.handle(
            {"op": "submit", "spec": chaos(1), "priority": 0}
        )
        assert first["ok"] is True
        shed = service.handle(
            {"op": "submit", "spec": chaos(2), "priority": 0}
        )
        assert shed["ok"] is False
        assert shed["error"] == "overloaded"
        assert shed["retry_after_s"] > 0
        assert service.metrics.value("rejected_overload") == 1

    def test_duplicate_in_flight_coalesces(self, tmp_path):
        service = self.make_idle(tmp_path)
        first = service.handle({"op": "submit", "spec": chaos(1)})
        second = service.handle({"op": "submit", "spec": chaos(1)})
        assert second["coalesced"] is True
        assert second["job_id"] == first["job_id"]
        assert service.metrics.value("accepted") == 1
        assert service.metrics.value("coalesced") == 1
        # Coalesced duplicates hold no queue slot.
        assert service.queue.depth == 1

    def test_write_ahead_precedes_queueing(self, tmp_path):
        from repro.service.journal import JobJournal

        service = self.make_idle(tmp_path)
        accepted = service.handle({"op": "submit", "spec": chaos(9)})
        unsettled, _, _ = JobJournal.replay(service.journal_path)
        assert [row["job_id"] for row in unsettled] == [
            accepted["job_id"]
        ]
        assert unsettled[0]["spec"] == service._jobs[
            accepted["job_id"]
        ]["spec"]


class TestBreaker:
    def test_deterministic_crasher_is_quarantined(self, service, client):
        spec = chaos(7, "crash_always")
        accepted = client.submit(spec)
        outcome = client.result(job_id=accepted["job_id"], wait_s=120)
        assert "payload" not in outcome
        assert outcome["job"]["state"] == "failed"
        assert service.breaker.is_open(job_fingerprint(spec))
        # Resubmission of the same content is refused outright.
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec)
        assert excinfo.value.code == "quarantined"
        assert service.metrics.value("rejected_quarantined") == 1
        # Unrelated work still flows: the daemon degraded, not died.
        other = client.submit(chaos(8))
        assert client.result(
            job_id=other["job_id"], wait_s=60
        )["payload"]["seed"] == 8


class TestCorruptRecompute:
    def test_corrupt_entry_recomputed_never_served(
        self, service, client
    ):
        accepted = client.submit(chaos(11))
        client.result(job_id=accepted["job_id"], wait_s=60)
        fingerprint = accepted["fingerprint"]
        path = service.cache.path_for(fingerprint)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x40  # bit-flip mid-entry
        path.write_bytes(bytes(raw))
        outcome = client.result(job_id=accepted["job_id"], wait_s=60)
        assert outcome["payload"] == run_job(chaos(11))
        assert service.metrics.value("cache_corrupt") == 1
        assert service.cache.quarantined()
        assert service.metrics.value("simulations") == 2  # recomputed


class TestRecovery:
    def test_unfinished_jobs_replay_to_identical_results(self, tmp_path):
        specs = [chaos(seed) for seed in range(3)]
        baselines = {
            job_fingerprint(spec): run_job(spec) for spec in specs
        }

        # Life 1: accept (journal) but never dispatch — the admission
        # side of a daemon that died with a full queue.
        first = make_service(tmp_path)
        first._recover()
        for spec in specs:
            assert first.handle({"op": "submit", "spec": spec})["ok"]
        first.journal.close()

        # Life 2: replay computes everything, bit-identically.
        second = make_service(tmp_path)
        second.start()
        try:
            host, port = second.address
            client = ServiceClient(host, port, timeout=60.0)
            for fingerprint, baseline in baselines.items():
                outcome = client.result(
                    fingerprint=fingerprint, wait_s=120
                )
                assert outcome["payload"] == baseline
            assert second.metrics.value("simulations") == len(specs)
        finally:
            second.stop()

        # Life 3: everything settles from cache at replay time —
        # zero re-simulations, all hits.
        third = make_service(tmp_path)
        third.start()
        try:
            host, port = third.address
            client = ServiceClient(host, port, timeout=60.0)
            for fingerprint, baseline in baselines.items():
                outcome = client.result(fingerprint=fingerprint,
                                        wait_s=30)
                assert outcome["payload"] == baseline
            assert third.metrics.value("simulations") == 0
            assert third.metrics.value("cache_hits") == 0  # settled jobs
            # Journal ids never collide across lives.
            assert third._next_sequence == len(specs)
        finally:
            third.stop()

    def test_replay_serves_landed_results_from_cache(self, tmp_path):
        # A job whose result landed before the crash replays as a
        # cache hit, not a recompute.
        spec = chaos(21)
        first = make_service(tmp_path)
        first._recover()
        accepted = first.handle({"op": "submit", "spec": spec})
        first.cache.put(accepted["fingerprint"], run_job(spec))
        first.journal.close()

        second = make_service(tmp_path)
        second._recover()
        job = second._jobs[accepted["job_id"]]
        assert job["state"] == "completed"
        assert job["source"] == "cache"
        assert second.metrics.value("cache_hits") == 1
        assert second.metrics.value("simulations") == 0
        second.journal.close()


def test_shutdown_op_stops_the_daemon(tmp_path):
    service = make_service(tmp_path)
    service.start()
    host, port = service.address
    client = ServiceClient(host, port, timeout=30.0)
    assert client.shutdown()["stopping"] is True
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        try:
            client.ping()
            time.sleep(0.05)
        except (OSError, ServiceError):
            break
    else:
        pytest.fail("daemon kept serving after shutdown")
    with pytest.raises((OSError, ServiceError)):
        client.ping()

"""Unit tests for L2LC allocation policies."""

import pytest

from repro.core import HiRiseConfig
from repro.core.channels import (
    InputBinnedAllocation,
    OutputBinnedAllocation,
    PriorityAllocation,
    make_allocation,
)


class TestInputBinned:
    def test_interleaved_by_input(self):
        config = HiRiseConfig(channel_multiplicity=4)
        alloc = InputBinnedAllocation(config)
        assert alloc.is_binned
        assert [alloc.channel_for(i, dst_output=63) for i in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_each_channel_services_n_over_lc_inputs(self):
        config = HiRiseConfig(channel_multiplicity=4)
        alloc = InputBinnedAllocation(config)
        by_channel = {}
        for local_input in range(config.ports_per_layer):
            by_channel.setdefault(
                alloc.channel_for(local_input, 0), []
            ).append(local_input)
        assert all(
            len(inputs) == config.inputs_per_channel
            for inputs in by_channel.values()
        )

    def test_destination_does_not_matter(self):
        config = HiRiseConfig(channel_multiplicity=2)
        alloc = InputBinnedAllocation(config)
        assert alloc.channel_for(5, 16) == alloc.channel_for(5, 63)


class TestOutputBinned:
    def test_binned_by_destination_local_index(self):
        config = HiRiseConfig(channel_multiplicity=4)
        alloc = OutputBinnedAllocation(config)
        assert alloc.is_binned
        # Outputs 48 and 52 on layer 3 have local indices 0 and 4 -> both
        # map to channel 0; output 49 (local 1) maps to channel 1.
        assert alloc.channel_for(0, 48) == 0
        assert alloc.channel_for(0, 52) == 0
        assert alloc.channel_for(0, 49) == 1

    def test_source_does_not_matter(self):
        config = HiRiseConfig(channel_multiplicity=2)
        alloc = OutputBinnedAllocation(config)
        assert alloc.channel_for(0, 33) == alloc.channel_for(9, 33)


class TestPriority:
    def test_not_binned_and_no_fixed_channel(self):
        config = HiRiseConfig(allocation="priority")
        alloc = PriorityAllocation(config)
        assert not alloc.is_binned
        with pytest.raises(NotImplementedError):
            alloc.channel_for(0, 63)


class TestFactory:
    @pytest.mark.parametrize(
        "policy,cls",
        [
            ("input_binned", InputBinnedAllocation),
            ("output_binned", OutputBinnedAllocation),
            ("priority", PriorityAllocation),
        ],
    )
    def test_make_allocation(self, policy, cls):
        config = HiRiseConfig(allocation=policy)
        assert isinstance(make_allocation(config), cls)

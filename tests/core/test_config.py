"""Unit tests for HiRiseConfig geometry and validation."""

import pytest

from repro.core import AllocationPolicy, ArbitrationScheme, HiRiseConfig


class TestValidation:
    def test_defaults_are_the_paper_headline_config(self):
        config = HiRiseConfig()
        assert config.radix == 64
        assert config.layers == 4
        assert config.channel_multiplicity == 4
        assert config.arbitration is ArbitrationScheme.CLRG
        assert config.allocation is AllocationPolicy.INPUT_BINNED
        assert config.num_classes == 3

    def test_string_enums_accepted(self):
        config = HiRiseConfig(allocation="output_binned", arbitration="wlrg")
        assert config.allocation is AllocationPolicy.OUTPUT_BINNED
        assert config.arbitration is ArbitrationScheme.WLRG

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"radix": 63},                       # not divisible by layers
            {"layers": 1},                       # too few layers
            {"radix": 2, "layers": 4},           # radix < layers
            {"channel_multiplicity": 0},
            {"num_classes": 1},
            {"allocation": "bogus"},
            {"arbitration": "bogus"},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            HiRiseConfig(**kwargs)


class TestGeometry:
    def test_paper_4channel_shapes(self):
        """Table IV: [(16x28), 16.(13x1)]x4 for the 4-channel config."""
        config = HiRiseConfig(channel_multiplicity=4)
        assert config.ports_per_layer == 16
        assert config.local_switch_shape == (16, 28)
        assert config.subblock_inputs == 13
        assert config.subblocks_per_layer == 16
        assert config.vertical_bus_count == 48

    def test_paper_2channel_shapes(self):
        config = HiRiseConfig(channel_multiplicity=2)
        assert config.local_switch_shape == (16, 22)
        assert config.subblock_inputs == 7

    def test_paper_1channel_shapes(self):
        config = HiRiseConfig(channel_multiplicity=1)
        assert config.local_switch_shape == (16, 19)
        assert config.subblock_inputs == 4

    def test_configuration_strings_match_table4(self):
        assert (
            HiRiseConfig(channel_multiplicity=4).configuration_string()
            == "[(16x28), 16.(13x1)]x4"
        )
        assert (
            HiRiseConfig(channel_multiplicity=1).configuration_string()
            == "[(16x19), 16.(4x1)]x4"
        )

    def test_inputs_per_channel(self):
        assert HiRiseConfig(channel_multiplicity=4).inputs_per_channel == 4
        assert HiRiseConfig(channel_multiplicity=1).inputs_per_channel == 16
        with pytest.raises(ValueError):
            _ = HiRiseConfig(
                radix=60, layers=4, channel_multiplicity=4
            ).inputs_per_channel


class TestPortMapping:
    def test_layer_and_local_index_roundtrip(self):
        config = HiRiseConfig()
        for port in range(config.radix):
            layer = config.layer_of_port(port)
            local = config.local_index(port)
            assert config.global_port(layer, local) == port

    def test_paper_example_ports(self):
        """Input 20 sits on layer 2 (index 1); output 63 on layer 4."""
        config = HiRiseConfig()
        assert config.layer_of_port(20) == 1
        assert config.local_index(20) == 4
        assert config.layer_of_port(63) == 3
        assert config.local_index(63) == 15

    def test_out_of_range(self):
        config = HiRiseConfig()
        with pytest.raises(ValueError):
            config.layer_of_port(64)
        with pytest.raises(ValueError):
            config.global_port(4, 0)
        with pytest.raises(ValueError):
            config.global_port(0, 16)


class TestSlotNumbering:
    def test_slots_cover_all_foreign_layer_channels(self):
        config = HiRiseConfig(channel_multiplicity=4)
        slots = config.subblock_slots(dst_layer=2)
        assert len(slots) == 12
        assert (2, 0) not in [s for s in slots]
        assert config.local_slot == 12

    def test_slot_of_channel_is_consistent_with_listing(self):
        config = HiRiseConfig(channel_multiplicity=2)
        for dst in range(4):
            listing = config.subblock_slots(dst)
            for index, (src, channel) in enumerate(listing):
                assert config.slot_of_channel(dst, src, channel) == index

    def test_self_channel_rejected(self):
        config = HiRiseConfig()
        with pytest.raises(ValueError):
            config.slot_of_channel(1, 1, 0)

"""Tests of the construction-time lookup tables in HiRiseConfig.

The fast-path cycle kernel indexes these tables directly (validation is
hoisted to construction); the public methods stay validating for API
callers.  Both views must agree exactly.
"""

import pickle

import pytest

from repro.core.config import HiRiseConfig


CONFIGS = [
    HiRiseConfig(radix=8, layers=2, channel_multiplicity=1),
    HiRiseConfig(radix=16, layers=4, channel_multiplicity=2),
    HiRiseConfig(radix=64, layers=4, channel_multiplicity=4),
    HiRiseConfig(
        radix=16, layers=4, channel_multiplicity=2,
        failed_channels=((0, 1, 0),),
    ),
]


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.configuration_string())
class TestPortTables:
    def test_tables_match_methods_for_every_port(self, cfg):
        for port in range(cfg.radix):
            assert cfg.layer_of_port_table[port] == cfg.layer_of_port(port)
            assert cfg.local_index_table[port] == cfg.local_index(port)

    def test_methods_still_validate(self, cfg):
        for bad in (-1, cfg.radix, cfg.radix + 5):
            with pytest.raises(ValueError):
                cfg.layer_of_port(bad)
            with pytest.raises(ValueError):
                cfg.local_index(bad)

    def test_tables_survive_pickling(self, cfg):
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone.layer_of_port_table == cfg.layer_of_port_table
        assert clone.local_index_table == cfg.local_index_table
        assert clone.num_resources == cfg.num_resources
        assert clone.resource_key_table == cfg.resource_key_table


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.configuration_string())
class TestResourceIds:
    def test_intermediate_ids_are_output_ports(self, cfg):
        for port in range(cfg.radix):
            rid = cfg.intermediate_resource_id(port)
            assert rid == port
            assert cfg.resource_key(rid) == (
                "int", cfg.layer_of_port(port), cfg.local_index(port)
            )

    def test_channel_ids_are_dense_and_invertible(self, cfg):
        seen = set()
        for src in range(cfg.layers):
            for dst in range(cfg.layers):
                for channel in range(cfg.channel_multiplicity):
                    rid = cfg.channel_resource_id(src, dst, channel)
                    assert cfg.radix <= rid < cfg.num_resources
                    assert cfg.resource_key(rid) == ("ch", src, dst, channel)
                    seen.add(rid)
        assert len(seen) == cfg.num_resources - cfg.radix

    def test_slot_table_matches_slot_of_channel(self, cfg):
        for src in range(cfg.layers):
            for dst in range(cfg.layers):
                for channel in range(cfg.channel_multiplicity):
                    rid = cfg.channel_resource_id(src, dst, channel)
                    slot = cfg.slot_of_channel_table[rid - cfg.radix]
                    if src == dst:
                        assert slot == -1
                    else:
                        assert slot == cfg.slot_of_channel(dst, src, channel)

    def test_resource_id_validation(self, cfg):
        with pytest.raises(ValueError):
            cfg.intermediate_resource_id(cfg.radix)
        with pytest.raises(ValueError):
            cfg.channel_resource_id(cfg.layers, 0, 0)
        with pytest.raises(ValueError):
            cfg.channel_resource_id(0, 0, cfg.channel_multiplicity)
        with pytest.raises(ValueError):
            cfg.resource_key(cfg.num_resources)
        with pytest.raises(ValueError):
            cfg.resource_key(-1)

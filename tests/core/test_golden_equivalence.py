"""Golden-trace equivalence of the fast-path kernel against the seed kernel.

The fast-path :class:`HiRiseSwitch` replaces tuple-keyed dictionaries and
per-cycle closures with flat integer-indexed state, but it must remain a
pure refactoring: for every arbitration scheme, allocation policy, and
failed-channel configuration, a simulation driven by the same traffic
must produce **bit-identical** results to the frozen seed kernel
(:class:`ReferenceHiRiseSwitch`) — same throughput, same per-packet
latency sequence, same per-port counters.
"""

import pytest

from repro.core.config import (
    AllocationPolicy,
    ArbitrationScheme,
    HiRiseConfig,
)
from repro.core.hirise import HiRiseSwitch
from repro.core.reference import ReferenceHiRiseSwitch
from repro.network.engine import Simulation
from repro.traffic import UniformRandomTraffic

FAILED_CHANNEL_CONFIGS = {
    "healthy": frozenset(),
    "failed-channels": frozenset({(0, 1, 0), (2, 3, 1), (3, 0, 0)}),
}


def run_once(switch_class, scheme, allocation, failed_channels, load, seed):
    config = HiRiseConfig(
        radix=16,
        layers=4,
        channel_multiplicity=2,
        arbitration=scheme,
        allocation=allocation,
        failed_channels=failed_channels,
    )
    switch = switch_class(config)
    traffic = UniformRandomTraffic(16, load=load, seed=seed)
    simulation = Simulation(switch, traffic, warmup_cycles=40)
    return simulation.run(measure_cycles=300, drain=True)


def assert_identical(reference, fast):
    assert fast.packets_injected == reference.packets_injected
    assert fast.packets_ejected == reference.packets_ejected
    assert fast.flits_ejected == reference.flits_ejected
    assert fast.cycles == reference.cycles
    assert fast.packet_latencies == reference.packet_latencies
    assert fast.per_input_ejected == reference.per_input_ejected
    assert fast.per_input_latency_sum == reference.per_input_latency_sum
    assert fast.per_output_ejected == reference.per_output_ejected


@pytest.mark.parametrize("scheme", list(ArbitrationScheme), ids=lambda s: s.value)
@pytest.mark.parametrize(
    "allocation", list(AllocationPolicy), ids=lambda a: a.value
)
@pytest.mark.parametrize(
    "failed_channels",
    list(FAILED_CHANNEL_CONFIGS.values()),
    ids=list(FAILED_CHANNEL_CONFIGS),
)
def test_bit_identical_to_seed_kernel(scheme, allocation, failed_channels):
    reference = run_once(
        ReferenceHiRiseSwitch, scheme, allocation, failed_channels,
        load=0.9, seed=11,
    )
    fast = run_once(
        HiRiseSwitch, scheme, allocation, failed_channels,
        load=0.9, seed=11,
    )
    assert_identical(reference, fast)


@pytest.mark.parametrize("load", [0.2, 1.0])
def test_bit_identical_across_loads_default_config(load):
    # The paper's headline scheme under light and saturating traffic.
    reference = run_once(
        ReferenceHiRiseSwitch, ArbitrationScheme.CLRG,
        AllocationPolicy.INPUT_BINNED, frozenset(), load=load, seed=23,
    )
    fast = run_once(
        HiRiseSwitch, ArbitrationScheme.CLRG,
        AllocationPolicy.INPUT_BINNED, frozenset(), load=load, seed=23,
    )
    assert_identical(reference, fast)

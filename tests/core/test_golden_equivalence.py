"""Golden-trace equivalence of the fast-path kernel against the seed kernel.

The fast-path :class:`HiRiseSwitch` replaces tuple-keyed dictionaries and
per-cycle closures with flat integer-indexed state, but it must remain a
pure refactoring: for every arbitration scheme, allocation policy, and
failed-channel configuration, a simulation driven by the same traffic
must produce **bit-identical** results to the frozen seed kernel
(:class:`ReferenceHiRiseSwitch`) — same throughput, same per-packet
latency sequence, same per-port counters.
"""

import pytest

from repro.core.config import (
    VOQ_SCHEMES,
    AllocationPolicy,
    ArbitrationScheme,
    HiRiseConfig,
)
from repro.core.hirise import HiRiseSwitch
from repro.core.reference import ReferenceHiRiseSwitch
from repro.faults import (
    FaultSchedule,
    corrupt_clrg,
    fail_channel,
    fail_input,
    repair_channel,
    repair_input,
    verify_parity,
)
from repro.network.engine import Simulation
from repro.traffic import UniformRandomTraffic

FAILED_CHANNEL_CONFIGS = {
    "healthy": frozenset(),
    "failed-channels": frozenset({(0, 1, 0), (2, 3, 1), (3, 0, 0)}),
}

# VOQ schemes (iSLIP/MWM) run on their own single kernel, so
# fast-vs-reference and fleet-lane parity only cover Hi-Rise schemes.
HIRISE_SCHEMES = [s for s in ArbitrationScheme if s not in VOQ_SCHEMES]

# A scripted mid-run schedule exercising every event kind, including a
# full 0->1 partition (both channels down, cycles 90-160).  All faults
# are repaired before the measurement window ends so the drain phase can
# finish.
SCRIPTED_SCHEDULE = FaultSchedule([
    fail_channel(60, 0, 1, 0),
    fail_channel(90, 0, 1, 1),
    corrupt_clrg(100, 5, 2),
    fail_input(120, 3),
    repair_channel(160, 0, 1, 0),
    repair_channel(200, 0, 1, 1),
    repair_input(220, 3),
    fail_channel(240, 2, 3, 1),
    repair_channel(290, 2, 3, 1),
])


def run_once(switch_class, scheme, allocation, failed_channels, load, seed):
    config = HiRiseConfig(
        radix=16,
        layers=4,
        channel_multiplicity=2,
        arbitration=scheme,
        allocation=allocation,
        failed_channels=failed_channels,
    )
    switch = switch_class(config)
    traffic = UniformRandomTraffic(16, load=load, seed=seed)
    simulation = Simulation(switch, traffic, warmup_cycles=40)
    return simulation.run(measure_cycles=300, drain=True)


def assert_identical(reference, fast):
    assert fast.packets_injected == reference.packets_injected
    assert fast.packets_ejected == reference.packets_ejected
    assert fast.flits_ejected == reference.flits_ejected
    assert fast.cycles == reference.cycles
    assert fast.packet_latencies == reference.packet_latencies
    assert fast.per_input_ejected == reference.per_input_ejected
    assert fast.per_input_latency_sum == reference.per_input_latency_sum
    assert fast.per_output_ejected == reference.per_output_ejected


@pytest.mark.parametrize("scheme", HIRISE_SCHEMES, ids=lambda s: s.value)
@pytest.mark.parametrize(
    "allocation", list(AllocationPolicy), ids=lambda a: a.value
)
@pytest.mark.parametrize(
    "failed_channels",
    list(FAILED_CHANNEL_CONFIGS.values()),
    ids=list(FAILED_CHANNEL_CONFIGS),
)
def test_bit_identical_to_seed_kernel(scheme, allocation, failed_channels):
    reference = run_once(
        ReferenceHiRiseSwitch, scheme, allocation, failed_channels,
        load=0.9, seed=11,
    )
    fast = run_once(
        HiRiseSwitch, scheme, allocation, failed_channels,
        load=0.9, seed=11,
    )
    assert_identical(reference, fast)


def run_once_faulted(switch_class, scheme, allocation, schedule, load, seed):
    config = HiRiseConfig(
        radix=16,
        layers=4,
        channel_multiplicity=2,
        arbitration=scheme,
        allocation=allocation,
    )
    switch = switch_class(config, faults=schedule)
    traffic = UniformRandomTraffic(16, load=load, seed=seed)
    simulation = Simulation(switch, traffic, warmup_cycles=40)
    return simulation.run(measure_cycles=300, drain=True)


@pytest.mark.parametrize("scheme", HIRISE_SCHEMES, ids=lambda s: s.value)
def test_bit_identical_under_scripted_faults(scheme):
    reference = run_once_faulted(
        ReferenceHiRiseSwitch, scheme, AllocationPolicy.INPUT_BINNED,
        SCRIPTED_SCHEDULE, load=0.9, seed=11,
    )
    fast = run_once_faulted(
        HiRiseSwitch, scheme, AllocationPolicy.INPUT_BINNED,
        SCRIPTED_SCHEDULE, load=0.9, seed=11,
    )
    assert_identical(reference, fast)


@pytest.mark.parametrize(
    "allocation", list(AllocationPolicy), ids=lambda a: a.value
)
def test_trace_streams_identical_under_scripted_faults(allocation):
    # verify_parity compares the full result *and* the complete traced
    # event streams of both kernels, so a single divergent arbitration
    # decision anywhere in the run fails loudly.
    config = HiRiseConfig(
        radix=16, layers=4, channel_multiplicity=2,
        arbitration=ArbitrationScheme.CLRG, allocation=allocation,
    )
    assert verify_parity(config, SCRIPTED_SCHEDULE, load=0.9, seed=11) == []


def test_parity_under_random_schedule():
    config = HiRiseConfig(radix=16, layers=4, channel_multiplicity=2)
    schedule = FaultSchedule.random(
        config, seed=7, horizon=340, faults=6,
        include_inputs=True, include_clrg=True,
    )
    assert len(schedule) > 0
    assert verify_parity(config, schedule, load=0.9, seed=11) == []


def test_empty_schedule_bit_identical_to_no_schedule():
    # Arming the fault hook with nothing to deliver must not perturb a
    # single arbitration decision.
    plain = run_once(
        HiRiseSwitch, ArbitrationScheme.CLRG,
        AllocationPolicy.INPUT_BINNED, frozenset(), load=0.9, seed=11,
    )
    armed = run_once_faulted(
        HiRiseSwitch, ArbitrationScheme.CLRG,
        AllocationPolicy.INPUT_BINNED, FaultSchedule(), load=0.9, seed=11,
    )
    assert_identical(plain, armed)


# ----------------------------------------------------------------------
# Fleet kernel: every golden-equivalence config, lane by lane
# ----------------------------------------------------------------------
fleet = pytest.importorskip("repro.core.fleet")
pytestmark_fleet = pytest.mark.skipif(
    not fleet.FLEET_AVAILABLE, reason="fleet kernel needs numpy"
)


@pytestmark_fleet
@pytest.mark.parametrize("scheme", HIRISE_SCHEMES, ids=lambda s: s.value)
@pytest.mark.parametrize(
    "allocation", list(AllocationPolicy), ids=lambda a: a.value
)
@pytest.mark.parametrize(
    "failed_channels",
    list(FAILED_CHANNEL_CONFIGS.values()),
    ids=list(FAILED_CHANNEL_CONFIGS),
)
def test_fleet_lanes_bit_identical(scheme, allocation, failed_channels):
    # Each fleet lane (seeds 11, 12, 13) is extracted and compared
    # field-by-field against a scalar fast-kernel run with the same
    # traffic; the fast kernel is pinned to the seed kernel above, so
    # transitively every lane matches the frozen reference.
    config = HiRiseConfig(
        radix=16,
        layers=4,
        channel_multiplicity=2,
        arbitration=scheme,
        allocation=allocation,
        failed_channels=failed_channels,
    )
    assert fleet.verify_fleet_parity(
        config, load=0.9, seed=11, measure_cycles=300, warmup_cycles=40,
        lanes=3, drain=True,
    ) == []


@pytestmark_fleet
@pytest.mark.parametrize("scheme", HIRISE_SCHEMES, ids=lambda s: s.value)
def test_fleet_lanes_bit_identical_under_scripted_faults(scheme):
    config = HiRiseConfig(
        radix=16,
        layers=4,
        channel_multiplicity=2,
        arbitration=scheme,
        allocation=AllocationPolicy.INPUT_BINNED,
    )
    assert fleet.verify_fleet_parity(
        config, SCRIPTED_SCHEDULE, load=0.9, seed=11, measure_cycles=300,
        warmup_cycles=40, lanes=3, drain=True,
    ) == []


@pytestmark_fleet
def test_verify_parity_fleet_lanes_option():
    # The verify_parity entry point used by the fuzzer reaches the same
    # lane comparison through its fleet_lanes= option.
    config = HiRiseConfig(radix=16, layers=4, channel_multiplicity=2)
    assert verify_parity(
        config, SCRIPTED_SCHEDULE, load=0.9, seed=11, fleet_lanes=2
    ) == []


# ----------------------------------------------------------------------
# Perf counters: profiling must never perturb a single decision
# ----------------------------------------------------------------------
def run_profiled(switch_factory, load=0.9, seed=11):
    switch = switch_factory()
    traffic = UniformRandomTraffic(16, load=load, seed=seed)
    simulation = Simulation(switch, traffic, warmup_cycles=40)
    return simulation.run(measure_cycles=300, drain=True)


PERF_CONFIG = HiRiseConfig(radix=16, layers=4, channel_multiplicity=2)


def test_perf_counters_do_not_perturb_fast_kernel():
    from repro.obs.perf import PerfCounters

    plain = run_profiled(lambda: HiRiseSwitch(PERF_CONFIG))
    perf = PerfCounters(stride=4)
    profiled = run_profiled(
        lambda: HiRiseSwitch(PERF_CONFIG, perf=perf)
    )
    assert_identical(plain, profiled)
    assert perf.kernel == "HiRiseSwitch"
    assert perf.cycles_total > 0
    assert perf.cycles_sampled == -(-perf.cycles_total // 4)
    assert {"transmit", "refill", "arbitrate", "commit"} <= set(perf.time_ns)


def test_perf_counters_do_not_perturb_reference_kernel():
    from repro.obs.perf import PerfCounters

    plain = run_profiled(lambda: ReferenceHiRiseSwitch(PERF_CONFIG))
    perf = PerfCounters(stride=4)
    profiled = run_profiled(
        lambda: ReferenceHiRiseSwitch(PERF_CONFIG, perf=perf)
    )
    assert_identical(plain, profiled)
    assert perf.kernel == "ReferenceHiRiseSwitch"
    assert {"transmit", "refill", "arbitrate", "commit"} <= set(perf.time_ns)
    # And profiled fast vs profiled reference still agree.
    fast = run_profiled(
        lambda: HiRiseSwitch(PERF_CONFIG, perf=PerfCounters(stride=4))
    )
    assert_identical(profiled, fast)


def test_perf_counters_compose_with_tracer_bit_identically():
    # perf= plus a batch-capture tracer: the sampled cycles are timed
    # whole (phase "step") and drains are attributed to "trace_drain",
    # still without perturbing results.
    pytest.importorskip("numpy")
    from repro.obs.perf import PerfCounters
    from repro.obs.tracebin import BinaryTracer

    plain = run_profiled(lambda: HiRiseSwitch(PERF_CONFIG))
    perf = PerfCounters(stride=4)
    tracer = BinaryTracer()
    profiled = run_profiled(
        lambda: HiRiseSwitch(PERF_CONFIG, tracer=tracer, perf=perf)
    )
    assert_identical(plain, profiled)
    assert "step" in perf.time_ns
    # The run is shorter than the drain interval, so the capture is
    # still in the timeline; the export-path drain is the timed one.
    tracer.drain()
    assert "trace_drain" in perf.time_ns
    assert perf.ops["trace_drain"] > 0


@pytestmark_fleet
def test_perf_counters_do_not_perturb_fleet_lanes():
    from repro.obs.perf import PerfCounters

    def make_traffics():
        return [
            UniformRandomTraffic(16, load=0.9, seed=11 + lane)
            for lane in range(3)
        ]

    plain = fleet.FleetSimulation(
        PERF_CONFIG, make_traffics(), warmup_cycles=40
    ).run(measure_cycles=300, drain=True)
    perf = PerfCounters(stride=4)
    profiled = fleet.FleetSimulation(
        PERF_CONFIG, make_traffics(), warmup_cycles=40, perf=perf,
    ).run(measure_cycles=300, drain=True)
    for lane_plain, lane_profiled in zip(plain, profiled):
        assert_identical(lane_plain, lane_profiled)
    assert perf.kernel == "FleetKernel"
    assert perf.lanes == 3
    assert {"transmit", "refill", "arbitrate"} <= set(perf.time_ns)


@pytest.mark.parametrize("load", [0.2, 1.0])
def test_bit_identical_across_loads_default_config(load):
    # The paper's headline scheme under light and saturating traffic.
    reference = run_once(
        ReferenceHiRiseSwitch, ArbitrationScheme.CLRG,
        AllocationPolicy.INPUT_BINNED, frozenset(), load=load, seed=23,
    )
    fast = run_once(
        HiRiseSwitch, ArbitrationScheme.CLRG,
        AllocationPolicy.INPUT_BINNED, frozenset(), load=load, seed=23,
    )
    assert_identical(reference, fast)

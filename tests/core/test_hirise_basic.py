"""Functional tests of the Hi-Rise switch datapath.

Covers full connectivity (every input can reach every output through the
hierarchy), grant safety (no resource ever double-booked), in-order
delivery per flow, and behaviour across allocation policies and layer
counts.
"""

import pytest

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.network.engine import Simulation
from repro.traffic import TraceTraffic, UniformRandomTraffic


def run_trace(switch, events, cycles=200, packet_flits=4):
    trace = TraceTraffic(events, packet_flits=packet_flits)
    sim = Simulation(switch, trace)
    return sim.run(cycles, drain=True)


@pytest.mark.parametrize("allocation", ["input_binned", "output_binned", "priority"])
@pytest.mark.parametrize("arbitration", ["l2l_lrg", "wlrg", "clrg"])
def test_full_connectivity_all_pairs(allocation, arbitration):
    """Every (input, output) pair is reachable, sequentially."""
    config = HiRiseConfig(
        radix=8, layers=2, channel_multiplicity=2,
        allocation=allocation, arbitration=arbitration,
    )
    switch = HiRiseSwitch(config)
    events = []
    cycle = 0
    for src in range(8):
        for dst in range(8):
            if src == dst:
                continue
            events.append((cycle, src, dst))
            cycle += 12  # spaced out so each transfer is isolated
    result = run_trace(switch, events, cycles=cycle + 40, packet_flits=2)
    assert result.packets_ejected == 8 * 7
    assert switch.occupancy() == 0


def test_cross_layer_example_path():
    """The paper's canonical path: input 0 (L1) to output 63 (L4)."""
    switch = HiRiseSwitch(HiRiseConfig(channel_multiplicity=1))
    result = run_trace(switch, [(0, 0, 63)])
    assert result.packets_ejected == 1
    # Single-cycle-per-flit traversal: a lone 4-flit packet takes 4 cycles.
    assert result.packet_latencies == [4]


def test_same_layer_path_uses_intermediate_output():
    switch = HiRiseSwitch(HiRiseConfig())
    result = run_trace(switch, [(0, 2, 9)])  # both ports on layer 0
    assert result.packets_ejected == 1
    assert result.packet_latencies == [4]


def test_grant_safety_invariants_under_load():
    """At no cycle may an output, input or L2LC serve two packets."""
    config = HiRiseConfig(radix=16, layers=4, channel_multiplicity=2)
    switch = HiRiseSwitch(config)
    traffic = UniformRandomTraffic(16, load=0.5, seed=11)
    for cycle in range(400):
        for packet in traffic.packets_for_cycle(cycle):
            switch.inject(packet)
        switch.step(cycle)
        owners = list(switch.connections.items())
        outputs = [output for _, (_, output) in owners]
        resources = [resource for _, (resource, _) in owners]
        assert len(outputs) == len(set(outputs)), "output double-booked"
        assert len(resources) == len(set(resources)), "resource double-booked"
        for input_port, (resource, output) in owners:
            assert switch.resource_owner[resource] == input_port
            assert switch.output_owner[output] == input_port


def test_in_order_delivery_with_single_vc():
    """With one VC per port, packets of a flow deliver in injection order
    (with multiple VCs, round-robin VC selection may legally reorder
    packets of a flow — flit order *within* a packet always holds)."""
    from repro.network.port import PortConfig

    config = HiRiseConfig(
        radix=8, layers=2, channel_multiplicity=1,
        port_config=PortConfig(num_vcs=1, vc_depth=4),
    )
    switch = HiRiseSwitch(config)
    events = [(cycle, 0, 5) for cycle in range(0, 60, 2)]
    trace = TraceTraffic(events, packet_flits=2)
    delivered = []
    for cycle in range(300):
        for packet in trace.packets_for_cycle(cycle):
            switch.inject(packet)
        for flit in switch.step(cycle):
            if flit.is_tail:
                delivered.append(flit.packet_id)
    assert delivered == sorted(delivered)
    assert len(delivered) == len(events)


def test_flit_order_within_packets_always_holds():
    config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=1)
    switch = HiRiseSwitch(config)
    events = [(cycle, 0, 5) for cycle in range(0, 60, 2)]
    trace = TraceTraffic(events, packet_flits=3)
    seen = {}
    for cycle in range(300):
        for packet in trace.packets_for_cycle(cycle):
            switch.inject(packet)
        for flit in switch.step(cycle):
            expected = seen.get(flit.packet_id, 0)
            assert flit.seq == expected
            seen[flit.packet_id] = expected + 1
    assert all(count == 3 for count in seen.values())


def test_flit_conservation():
    """Injected flit count equals ejected flit count after drain."""
    config = HiRiseConfig(radix=16, layers=2, channel_multiplicity=4)
    switch = HiRiseSwitch(config)
    traffic = UniformRandomTraffic(16, load=0.3, seed=5)
    sim = Simulation(switch, traffic)
    result = sim.run(300, drain=True)
    assert result.packets_ejected == result.packets_injected
    assert result.flits_ejected == 4 * result.packets_injected
    assert switch.occupancy() == 0


@pytest.mark.parametrize("layers", [2, 4, 8])
def test_layer_counts(layers):
    config = HiRiseConfig(radix=16, layers=layers, channel_multiplicity=1)
    switch = HiRiseSwitch(config)
    result = run_trace(
        switch, [(0, src, (src + 16 // layers) % 16) for src in range(16)]
    )
    assert result.packets_ejected == 16


def test_no_starvation_under_hotspot():
    """Every requesting input eventually gets served (Section III-B.1:
    the back-propagated update rule avoids starvation)."""
    from repro.traffic import HotspotTraffic

    config = HiRiseConfig(radix=16, layers=4, channel_multiplicity=1,
                          arbitration="l2l_lrg")
    switch = HiRiseSwitch(config)
    traffic = HotspotTraffic(16, load=0.8, hotspot_output=15, seed=2)
    sim = Simulation(switch, traffic, warmup_cycles=200)
    result = sim.run(3000)
    served = result.per_input_ejected
    assert all(served.get(src, 0) > 0 for src in range(16))


def test_priority_allocation_uses_any_free_channel():
    """With priority allocation, two inputs that would collide on a binned
    channel are served concurrently over distinct channels."""
    config = HiRiseConfig(
        radix=8, layers=2, channel_multiplicity=2, allocation="priority"
    )
    switch = HiRiseSwitch(config)
    # Local inputs 0 and 2 both map to channel 0 under input binning
    # (0 % 2 == 2 % 2); they target different outputs on layer 1.
    run_events = [(0, 0, 5), (0, 2, 6)]
    trace = TraceTraffic(run_events, packet_flits=4)
    for packet in trace.packets_for_cycle(0):
        switch.inject(packet)
    switch.step(0)
    # Both connections established in the same cycle.
    assert len(switch.connections) == 2


def test_input_binned_collision_serialises():
    """Same scenario under input binning: the shared channel serialises."""
    config = HiRiseConfig(
        radix=8, layers=2, channel_multiplicity=2, allocation="input_binned"
    )
    switch = HiRiseSwitch(config)
    trace = TraceTraffic([(0, 0, 5), (0, 2, 6)], packet_flits=4)
    for packet in trace.packets_for_cycle(0):
        switch.inject(packet)
    switch.step(0)
    assert len(switch.connections) == 1

"""Tests of TSV failure injection (failed L2LCs) and rerouting."""

import pytest

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import ProbedSwitch
from repro.network.engine import Simulation
from repro.traffic import TraceTraffic, UniformRandomTraffic


class TestConfigValidation:
    def test_accepts_partial_failures(self):
        config = HiRiseConfig(failed_channels=((0, 3, 0), (1, 2, 3)))
        assert (0, 3, 0) in config.failed_channels

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            HiRiseConfig(failed_channels=((0, 4, 0),))
        with pytest.raises(ValueError):
            HiRiseConfig(failed_channels=((0, 1, 4),))
        with pytest.raises(ValueError):
            HiRiseConfig(failed_channels=((1, 1, 0),))

    def test_rejects_disconnecting_failures(self):
        all_channels = tuple((0, 1, k) for k in range(4))
        with pytest.raises(ValueError):
            HiRiseConfig(failed_channels=all_channels)

    def test_single_channel_pair_cannot_fail(self):
        with pytest.raises(ValueError):
            HiRiseConfig(channel_multiplicity=1, failed_channels=((0, 1, 0),))

    def test_rejects_duplicate_failed_channels(self):
        with pytest.raises(ValueError, match="duplicate"):
            HiRiseConfig(failed_channels=((0, 3, 0), (1, 2, 3), (0, 3, 0)))
        # Equal after int coercion counts as a duplicate too.
        with pytest.raises(ValueError, match="duplicate"):
            HiRiseConfig(failed_channels=([0, 3, 0], (0, 3, 0)))

    def test_failed_channels_normalised_for_equality_and_hash(self):
        forward = HiRiseConfig(failed_channels=((0, 3, 0), (1, 2, 3)))
        reversed_order = HiRiseConfig(failed_channels=[[1, 2, 3], [0, 3, 0]])
        assert forward.failed_channels == ((0, 3, 0), (1, 2, 3))
        assert forward == reversed_order
        assert hash(forward) == hash(reversed_order)
        assert len({forward, reversed_order}) == 1


class TestRerouting:
    def test_healthy_channel_remap(self):
        config = HiRiseConfig(failed_channels=((0, 3, 1),))
        switch = HiRiseSwitch(config)
        assert switch.healthy_channel(0, 3, 1) == 2
        assert switch.healthy_channel(0, 3, 0) == 0   # unaffected
        assert switch.healthy_channel(1, 3, 1) == 1   # other pair unaffected

    def test_failed_channel_never_carries_traffic(self):
        config = HiRiseConfig(
            radix=16, layers=4, channel_multiplicity=2,
            failed_channels=((0, 1, 0), (2, 3, 1)),
        )
        probe = ProbedSwitch(HiRiseSwitch(config))
        traffic = UniformRandomTraffic(16, load=0.4, seed=6)
        Simulation(probe, traffic).run(600, drain=True)
        utilizations = probe.channel_utilizations()
        assert ("ch", 0, 1, 0) not in utilizations
        assert ("ch", 2, 3, 1) not in utilizations

    def test_rerouted_flow_still_delivers(self):
        """A flow binned to a failed channel reroutes and delivers."""
        config = HiRiseConfig(
            radix=16, layers=4, channel_multiplicity=2,
            failed_channels=((0, 3, 0),),
        )
        probe = ProbedSwitch(HiRiseSwitch(config))
        # Local input 0 on layer 0 nominally bins to channel 0 (0 % 2).
        events = [(c, 0, 13) for c in range(0, 100, 6)]
        result = Simulation(probe, TraceTraffic(events)).run(200, drain=True)
        assert result.packets_ejected == len(events)
        assert probe.resource_utilization(("ch", 0, 3, 1)) > 0
        assert probe.resource_utilization(("ch", 0, 3, 0)) == 0

    def test_priority_allocation_avoids_failed(self):
        config = HiRiseConfig(
            radix=16, layers=4, channel_multiplicity=2,
            allocation="priority", failed_channels=((0, 1, 0),),
        )
        probe = ProbedSwitch(HiRiseSwitch(config))
        traffic = UniformRandomTraffic(16, load=0.5, seed=8)
        Simulation(probe, traffic).run(600, drain=True)
        assert ("ch", 0, 1, 0) not in probe.channel_utilizations()

    def test_full_connectivity_under_failures(self):
        config = HiRiseConfig(
            radix=8, layers=2, channel_multiplicity=2,
            failed_channels=((0, 1, 0), (1, 0, 1)),
        )
        switch = HiRiseSwitch(config)
        events = []
        cycle = 0
        for src in range(8):
            for dst in range(8):
                if src != dst:
                    events.append((cycle, src, dst))
                    cycle += 10
        result = Simulation(
            switch, TraceTraffic(events, packet_flits=2)
        ).run(cycle + 40, drain=True)
        assert result.packets_ejected == 56

    def test_throughput_degrades_gracefully(self):
        """Killing half the channels toward one layer costs bandwidth on
        that path but far less than half of total throughput."""
        def saturation(failed):
            config = HiRiseConfig(
                radix=16, layers=4, channel_multiplicity=2,
                failed_channels=failed,
            )
            traffic = UniformRandomTraffic(16, load=0.99, seed=9)
            sim = Simulation(HiRiseSwitch(config), traffic, warmup_cycles=200)
            return sim.run(1500).throughput_packets_per_cycle

        healthy = saturation(())
        degraded = saturation(((0, 1, 0), (0, 2, 0), (0, 3, 0)))
        assert degraded < healthy
        assert degraded > 0.7 * healthy

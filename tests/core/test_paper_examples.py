"""Reproduce the paper's worked arbitration examples exactly.

Section III-B walks through a 1-channel, 4-layer, 64-radix configuration
where inputs {3, 7, 11, 15} on layer 1 and input {20} on layer 2 all
request output 63 on layer 4:

* Fig 4 (baseline L-2-L LRG): the connection pattern at output 63 is
  {15, 20, 11, 20, 7, 20, 3, 20, 15, 20, ...} — the lone layer-2 input
  receives half the bandwidth;
* Fig 5 (CLRG): the pattern is {20, 15, 11, 7, 3, 20, 15, 11, 7, 3, ...} —
  identical to a flat 2D switch with LRG.

The figures start from specific priority states, which these tests set
explicitly.  Packets are single-flit so the grant sequence equals the
ejected-source sequence.
"""

import pytest

from repro.arbitration.lrg import LRGArbiter
from repro.core import ArbitrationScheme, HiRiseConfig, HiRiseSwitch

from repro.switches import SwizzleSwitch2D
from repro.traffic import TraceTraffic

OUTPUT = 63
REQUESTORS = [3, 7, 11, 15, 20]


def backlog_trace(num_packets_per_input=12):
    """Every requestor pre-loads a backlog of single-flit packets to 63."""
    events = [
        (0, src, OUTPUT)
        for _ in range(num_packets_per_input)
        for src in REQUESTORS
    ]
    return TraceTraffic(events, packet_flits=1)


def local_layer1_order():
    """Fig 4/5 local-switch priority on layer 1: 15 > 11 > 7 > 3."""
    rest = [i for i in range(16) if i not in (15, 11, 7, 3)]
    return [15, 11, 7, 3] + rest


def build_switch(arbitration, interlayer_order):
    config = HiRiseConfig(
        radix=64,
        layers=4,
        channel_multiplicity=1,
        arbitration=arbitration,
    )
    switch = HiRiseSwitch(config)
    # Layer 1 (layer index 0) local arbiter for the L2LC to layer 4
    # (layer index 3), channel 0.
    switch.chan_arbiters[(0, 3, 0)] = LRGArbiter(
        16, initial_order=local_layer1_order()
    )
    # Sub-block slots at output 63 (c=1): slot 0 = C(1->4) ("C1,4"),
    # slot 1 = C(2->4), slot 2 = C(3->4), slot 3 = local.
    num_slots = config.subblock_inputs
    if arbitration is ArbitrationScheme.L2L_LRG:
        switch.subblock_arbiters[OUTPUT] = LRGArbiter(
            num_slots, initial_order=interlayer_order
        )
    else:
        arb = switch.subblock_arbiters[OUTPUT]
        arb.lrg = LRGArbiter(num_slots, initial_order=interlayer_order)
    return switch


def drive(switch, grants):
    """Inject the backlog and collect the first ``grants`` winners."""
    trace = backlog_trace()
    for packet in trace.packets_for_cycle(0):
        switch.inject(packet)
    winners = []
    cycle = 0
    while len(winners) < grants and cycle < 500:
        for flit in switch.step(cycle):
            winners.append(flit.src)
        cycle += 1
    return winners[:grants]


class TestFig4BaselineUnfairness:
    def test_l2l_lrg_connection_pattern(self):
        # Fig 4 initial inter-layer priority: Local > C3,4 > C1,4 > C2,4.
        switch = build_switch(
            ArbitrationScheme.L2L_LRG, interlayer_order=[3, 2, 0, 1]
        )
        winners = drive(switch, grants=10)
        assert winners == [15, 20, 11, 20, 7, 20, 3, 20, 15, 20]

    def test_input_20_gets_half_the_bandwidth(self):
        switch = build_switch(
            ArbitrationScheme.L2L_LRG, interlayer_order=[3, 2, 0, 1]
        )
        winners = drive(switch, grants=16)
        share_20 = winners.count(20) / len(winners)
        assert share_20 == pytest.approx(0.5)


class TestFig5CLRGFairness:
    def test_clrg_connection_pattern(self):
        # Fig 5 initial inter-layer priority: Local > C3,4 > C2,4 > C1,4.
        switch = build_switch(
            ArbitrationScheme.CLRG, interlayer_order=[3, 2, 1, 0]
        )
        winners = drive(switch, grants=11)
        assert winners == [20, 15, 11, 7, 3, 20, 15, 11, 7, 3, 20]

    def test_clrg_share_is_flat_fair(self):
        switch = build_switch(
            ArbitrationScheme.CLRG, interlayer_order=[3, 2, 1, 0]
        )
        winners = drive(switch, grants=20)
        for src in REQUESTORS:
            assert winners.count(src) == 4

    def test_matches_flat_2d_lrg_switch(self):
        """Section III-B.4: CLRG's pattern equals a flat 2D LRG switch."""
        switch = build_switch(
            ArbitrationScheme.CLRG, interlayer_order=[3, 2, 1, 0]
        )
        winners_3d = drive(switch, grants=10)

        flat = SwizzleSwitch2D(64)
        # Match the figure's initial state: 20 > 15 > 11 > 7 > 3.
        order = [20, 15, 11, 7, 3] + [
            i for i in range(64) if i not in (20, 15, 11, 7, 3)
        ]
        flat.output_arbiters[OUTPUT] = LRGArbiter(64, initial_order=order)
        winners_2d = drive(flat, grants=10)
        assert winners_2d == [20, 15, 11, 7, 3, 20, 15, 11, 7, 3]
        assert winners_3d == winners_2d

"""Property test: fleet lanes are perfectly isolated from one another.

Two guarantees, checked over hypothesis-generated lane mixes (seeds,
loads, an optional fault schedule on one lane):

1. **Scalar parity** — every lane of a fleet run is bit-identical to a
   scalar fast-kernel run with the same traffic source and faults.
2. **Non-interference** — replacing one lane's traffic and faults with
   something entirely different must not perturb any *other* lane's
   results by a single bit.

Together these pin the structure-of-arrays batching as a pure
optimisation: whatever happens inside lane j (divergent traffic, mid-run
channel failures) is invisible to lane i.
"""

import pytest

pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.config import ArbitrationScheme, HiRiseConfig
from repro.core.fleet import FLEET_AVAILABLE, FleetSimulation
from repro.core.hirise import HiRiseSwitch
from repro.faults import FaultSchedule
from repro.network.engine import Simulation
from repro.traffic import UniformRandomTraffic

pytestmark = pytest.mark.skipif(
    not FLEET_AVAILABLE, reason="fleet kernel needs numpy"
)

CONFIG = HiRiseConfig(
    radix=8, layers=2, channel_multiplicity=2,
    arbitration=ArbitrationScheme.CLRG,
)
WARMUP, MEASURE = 10, 60


def result_tuple(result):
    """Hashable, bit-exact digest of one SimulationResult.

    The per-port counters are dicts whose insertion order is a kernel
    implementation detail (first-ejection order scalar, ascending port
    order fleet); equality is over their *contents*, so sort the items.
    """
    return (
        result.cycles,
        result.packets_injected,
        result.packets_ejected,
        result.flits_ejected,
        tuple(result.packet_latencies),
        tuple(sorted(result.per_input_ejected.items())),
        tuple(sorted(result.per_input_latency_sum.items())),
        tuple(sorted(result.per_output_ejected.items())),
    )


def lane_spec(draw):
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    load = draw(st.sampled_from((0.3, 0.6, 0.9)))
    fault_seed = draw(st.one_of(
        st.none(), st.integers(min_value=0, max_value=2 ** 16)
    ))
    return seed, load, fault_seed


def materialize(spec):
    seed, load, fault_seed = spec
    traffic = UniformRandomTraffic(CONFIG.radix, load=load, seed=seed)
    faults = None
    if fault_seed is not None:
        faults = FaultSchedule.random(
            CONFIG, seed=fault_seed, horizon=WARMUP + MEASURE, faults=2,
        )
    return traffic, faults


def fleet_digests(specs):
    sources = [materialize(spec) for spec in specs]
    fleet = FleetSimulation(
        CONFIG,
        [traffic for traffic, _ in sources],
        faults=[faults for _, faults in sources],
        warmup_cycles=WARMUP,
    )
    return [result_tuple(lane) for lane in fleet.run(MEASURE)]


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_lane_isolation(data):
    specs = [lane_spec(data.draw) for _ in range(3)]
    digests = fleet_digests(specs)

    # 1. Scalar parity, lane by lane.
    for spec, digest in zip(specs, digests):
        traffic, faults = materialize(spec)
        switch = HiRiseSwitch(CONFIG, faults=faults)
        scalar = Simulation(switch, traffic, warmup_cycles=WARMUP)
        assert result_tuple(scalar.run(MEASURE)) == digest

    # 2. Non-interference: rewrite the middle lane (new seed, saturating
    # load, a fault schedule) and re-run; outer lanes must not move.
    perturbed_middle = (specs[1][0] + 7919, 1.0, 4242)
    perturbed = fleet_digests([specs[0], perturbed_middle, specs[2]])
    assert perturbed[0] == digests[0]
    assert perturbed[2] == digests[2]

"""Unit tests of the batched structure-of-arrays fleet kernel.

The fleet kernel advances B switch instances per vectorized numpy op;
its contract is that every lane is **bit-identical** to a scalar
:class:`HiRiseSwitch` run with the same traffic source and fault
schedule.  These tests cover the kernel-level machinery (injection
batching, ring growth, overflow guards, plan grouping); the full
scheme × allocation × fault matrix lives in
``test_golden_equivalence.py``.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.config import (
    AllocationPolicy,
    ArbitrationScheme,
    HiRiseConfig,
)
from repro.core.fleet import (
    FLEET_AVAILABLE,
    FleetKernel,
    FleetSimulation,
    LanePlan,
    fleet_supports,
    plans_compatible,
    run_fleet_plans,
    verify_fleet_parity,
)
from repro.core.hirise import HiRiseSwitch
from repro.faults import FaultSchedule, fail_channel, repair_channel
from repro.network.engine import Simulation
from repro.traffic import UniformRandomTraffic

CONFIG = HiRiseConfig(radix=8, layers=2, channel_multiplicity=2)


def make_traffic(seed, load=0.8):
    return UniformRandomTraffic(CONFIG.radix, load=load, seed=seed)


def scalar_run(config, traffic, faults=None, warmup=20, measure=120,
               drain=True):
    switch = HiRiseSwitch(config, faults=faults)
    simulation = Simulation(switch, traffic, warmup_cycles=warmup)
    return simulation.run(measure, drain=drain)


def assert_identical(reference, lane):
    assert lane.cycles == reference.cycles
    assert lane.packets_injected == reference.packets_injected
    assert lane.packets_ejected == reference.packets_ejected
    assert lane.flits_ejected == reference.flits_ejected
    assert lane.packet_latencies == reference.packet_latencies
    assert lane.per_input_ejected == reference.per_input_ejected
    assert lane.per_input_latency_sum == reference.per_input_latency_sum
    assert lane.per_output_ejected == reference.per_output_ejected


def test_fleet_supports_everything_but_qos():
    assert fleet_supports(CONFIG) is FLEET_AVAILABLE
    qos = HiRiseConfig(
        radix=8, layers=2, channel_multiplicity=2,
        arbitration=ArbitrationScheme.CLRG,
        qos_weights=tuple(1.0 + i for i in range(8)),
    )
    assert not fleet_supports(qos)
    with pytest.raises(ValueError):
        FleetKernel(qos, 2)


def test_kernel_rejects_empty_fleet():
    with pytest.raises(ValueError):
        FleetKernel(CONFIG, 0)


def test_lanes_bit_identical_to_scalar_runs():
    seeds = (3, 17, 99)
    fleet = FleetSimulation(
        CONFIG, [make_traffic(seed) for seed in seeds], warmup_cycles=20
    )
    lanes = fleet.run(120, drain=True)
    for seed, lane in zip(seeds, lanes):
        assert_identical(scalar_run(CONFIG, make_traffic(seed)), lane)


def test_per_lane_fault_schedules_stay_isolated():
    schedule = FaultSchedule([
        fail_channel(30, 0, 1, 0),
        repair_channel(80, 0, 1, 0),
    ])
    seeds = (5, 5, 12)
    faults = [None, schedule, None]
    fleet = FleetSimulation(
        CONFIG, [make_traffic(seed) for seed in seeds],
        faults=faults, warmup_cycles=20,
    )
    lanes = fleet.run(120, drain=True)
    for seed, lane_faults, lane in zip(seeds, faults, lanes):
        assert_identical(
            scalar_run(CONFIG, make_traffic(seed), faults=lane_faults),
            lane,
        )
    # Lanes 0 and 1 share a traffic seed but differ in faults, which
    # must show up in the results (the schedule really was delivered to
    # exactly one lane).
    assert lanes[0].packet_latencies != lanes[1].packet_latencies


def test_inject_cycle_accepts_unsorted_and_duplicate_rows():
    # One batched call with shuffled rows (including two packets for the
    # same (lane, input) queue) must leave the kernel in the same state
    # as sorted single-row calls in queue order.
    batched = FleetKernel(CONFIG, 2)
    sequential = FleetKernel(CONFIG, 2)
    rows = [
        # lane, src, dst, created, flits, pid  (queue order per (lane, src))
        (0, 1, 2, 0, 4, 10),
        (0, 1, 5, 0, 2, 11),
        (1, 1, 3, 0, 1, 12),
        (0, 7, 0, 0, 3, 13),
    ]
    shuffled = [rows[2], rows[0], rows[3], rows[1]]
    columns = list(zip(*shuffled))
    batched.inject_cycle(*(np.array(column) for column in columns))
    for lane, src, dst, created, flits, pid in rows:
        sequential.inject_cycle(
            np.array([lane]), np.array([src]), np.array([dst]),
            np.array([created]), np.array([flits]), np.array([pid]),
        )
    assert np.array_equal(batched._q_len_f, sequential._q_len_f)
    assert np.array_equal(batched._pending_f, sequential._pending_f)
    assert np.array_equal(batched._q, sequential._q)
    assert np.array_equal(batched._front, sequential._front)
    assert np.array_equal(batched.lane_occupancy, sequential.lane_occupancy)


def test_inject_cycle_validates_ports_and_widths():
    kernel = FleetKernel(CONFIG, 1)
    with pytest.raises(ValueError):
        kernel.inject_cycle(
            np.array([0]), np.array([CONFIG.radix]), np.array([0]),
            np.array([0]), np.array([1]), np.array([0]),
        )
    # int32 ring records: wider payloads must refuse loudly, not wrap.
    with pytest.raises(OverflowError):
        kernel.inject_cycle(
            np.array([0]), np.array([0]), np.array([1]),
            np.array([0]), np.array([1 << 31]), np.array([0]),
        )


def test_ring_growth_preserves_queue_contents():
    kernel = FleetKernel(CONFIG, 1)
    initial_cap = kernel._q_cap
    packets = initial_cap * 2 + 5
    for pid in range(packets):
        kernel.inject_cycle(
            np.array([0]), np.array([2]), np.array([4]),
            np.array([pid]), np.array([1]), np.array([pid]),
        )
    assert kernel._q_cap > initial_cap
    assert kernel._q_len_f[2] == packets
    assert kernel._pending_f[2] == packets
    # FIFO order survived both doublings: created stamps are 0..packets-1
    # starting at the (unmoved) head slot.
    head = int(kernel._q_head_f[2])
    stored = np.take(
        kernel._q[0, 2, :, 2],
        (head + np.arange(packets)) % kernel._q_cap,
    )
    assert np.array_equal(stored, np.arange(packets))


def test_run_fleet_plans_matches_scalar_and_rejects_mixed():
    plans = [
        LanePlan(
            config=CONFIG,
            traffic_factory=lambda seed=seed: make_traffic(seed),
            faults=None,
            warmup_cycles=20,
            measure_cycles=100,
            drain=True,
        )
        for seed in (1, 2)
    ]
    results = run_fleet_plans(plans)
    assert_identical(scalar_run(CONFIG, make_traffic(1), measure=100),
                     results[0])
    assert run_fleet_plans([]) == []
    other = LanePlan(
        config=CONFIG, traffic_factory=lambda: make_traffic(3),
        faults=None, warmup_cycles=20, measure_cycles=200, drain=True,
    )
    assert not plans_compatible(plans[0], other)
    with pytest.raises(ValueError):
        run_fleet_plans([plans[0], other])


def test_verify_fleet_parity_clean_and_reports_lane():
    assert verify_fleet_parity(
        CONFIG, lanes=3, measure_cycles=100, warmup_cycles=20, seed=7,
    ) == []


def test_latency_sample_limit_matches_scalar_decimation():
    limit = 8
    fleet = FleetSimulation(
        CONFIG, [make_traffic(31)], warmup_cycles=20,
        latency_sample_limit=limit,
    )
    lane = fleet.run(120, drain=True)[0]
    switch = HiRiseSwitch(CONFIG)
    scalar = Simulation(
        switch, make_traffic(31), warmup_cycles=20,
        latency_sample_limit=limit,
    ).run(120, drain=True)
    assert lane.packet_latencies == scalar.packet_latencies
    assert len(lane.packet_latencies) <= limit
    assert lane.latency_sum == scalar.latency_sum
    assert lane.latency_count == scalar.latency_count

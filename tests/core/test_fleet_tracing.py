"""Native binary tracing in the fleet kernel.

The fleet kernel emits into a shared :class:`FleetTracer` with a
per-lane column; every test here pins the traced fleet against the
scalar fast kernel — per-lane event streams equal to a scalar
:class:`BinaryTracer` capture, results bit-identical whether traced or
not, and decimation marching in lock-step on both sides.
"""

import pytest

pytest.importorskip("numpy")

from repro.core.config import HiRiseConfig
from repro.core.fleet import (
    FLEET_AVAILABLE,
    FleetSimulation,
    LanePlan,
    run_fleet_plans,
    verify_fleet_parity,
)
from repro.faults import FaultSchedule, fail_channel, fail_input, \
    repair_channel, repair_input
from repro.obs.tracebin import (
    BinaryTracer,
    BinaryTracerFactory,
    FleetTracer,
    read_tracebin,
)
from repro.traffic.uniform import UniformRandomTraffic

pytestmark = pytest.mark.skipif(
    not FLEET_AVAILABLE, reason="fleet kernel needs numpy"
)


def small_config(**overrides):
    settings = dict(radix=16, layers=4, channel_multiplicity=2)
    settings.update(overrides)
    return HiRiseConfig(**settings)


def make_plans(config, lanes=3, seed=0, load=0.6, faults=None,
               tracer_factory=None, drain=False):
    def factory(lane_seed):
        return lambda: UniformRandomTraffic(
            config.radix, load, seed=lane_seed
        )

    return [
        LanePlan(
            config=config,
            traffic_factory=factory(seed + lane),
            faults=faults,
            warmup_cycles=10,
            measure_cycles=60,
            drain=drain,
            tracer_factory=tracer_factory,
        )
        for lane in range(lanes)
    ]


RESULT_FIELDS = (
    "packets_injected", "packets_ejected", "flits_ejected", "cycles",
    "packet_latencies", "per_input_ejected", "per_input_latency_sum",
    "per_output_ejected",
)


@pytest.mark.parametrize("scheme", ["l2l_lrg", "clrg", "age"])
@pytest.mark.parametrize("policy", ["input_binned", "priority"])
def test_traced_parity_across_schemes(scheme, policy):
    config = small_config(arbitration=scheme, allocation=policy)
    assert verify_fleet_parity(
        config, load=0.7, measure_cycles=60, warmup_cycles=10,
        lanes=3, trace=True,
    ) == []


@pytest.mark.parametrize("drain", [False, True])
def test_traced_parity_with_faults(drain):
    schedule = FaultSchedule([
        fail_channel(5, 0, 1, 0),
        fail_input(9, 3),
        repair_channel(20, 0, 1, 0),
        repair_input(25, 3),
    ])
    assert verify_fleet_parity(
        small_config(), schedule=schedule, load=0.7,
        measure_cycles=60, warmup_cycles=10, lanes=3, drain=drain,
        trace=True,
    ) == []


def test_decimation_lockstep_with_scalar():
    # Bounded lane capacity decimates the fleet capture exactly like the
    # scalar tracer decimates its own: same stride, same surviving rows.
    config = small_config()
    plans = make_plans(config, lanes=2)
    fleet_tracer = FleetTracer(len(plans), capacity=64)
    run_fleet_plans(plans, tracer=fleet_tracer)
    for lane, plan in enumerate(plans):
        scalar = BinaryTracer(capacity=64)
        from repro.core.hirise import HiRiseSwitch
        from repro.network.engine import Simulation

        switch = HiRiseSwitch(config, tracer=scalar, faults=plan.faults)
        sim = Simulation(switch, plan.traffic_factory(),
                         warmup_cycles=plan.warmup_cycles)
        sim.run(plan.measure_cycles, drain=plan.drain)
        lane_view = fleet_tracer.lane_tracer(lane)
        assert scalar.stride > 1
        assert lane_view.stride == scalar.stride
        assert lane_view.events == scalar.events


def test_traced_fleet_results_equal_untraced():
    config = small_config()
    untraced = run_fleet_plans(make_plans(config))
    tracer = FleetTracer(3, capacity=None)
    traced = run_fleet_plans(make_plans(config), tracer=tracer)
    assert len(tracer) > 0
    for plain, observed in zip(untraced, traced):
        for name in RESULT_FIELDS:
            assert getattr(plain, name) == getattr(observed, name)


def test_plan_tracer_factory_auto_creates_fleet_tracer():
    # Plans carrying a fleet-capable factory run traced natively (the
    # tracer is internal and dropped with the simulation); results stay
    # bit-identical to the untraced fleet.
    config = small_config()
    factory = BinaryTracerFactory(capacity=None)
    assert factory.fleet_capable
    traced = run_fleet_plans(make_plans(config, tracer_factory=factory))
    untraced = run_fleet_plans(make_plans(config))
    for plain, observed in zip(untraced, traced):
        for name in RESULT_FIELDS:
            assert getattr(plain, name) == getattr(observed, name)


def test_fleet_save_read_lane_round_trip(tmp_path):
    config = small_config()
    plans = make_plans(config, lanes=3)
    tracer = FleetTracer(len(plans), capacity=None)
    run_fleet_plans(plans, tracer=tracer)
    path = tmp_path / "fleet.tracebin"
    tracer.save(path)
    columns = read_tracebin(path)
    assert columns.lane is not None
    assert columns.lanes() == [0, 1, 2]
    assert len(columns) == len(tracer)
    for lane in columns.lanes():
        lane_view = columns.for_lane(lane)
        assert lane_view.lane is None
        assert list(lane_view.iter_events()) == \
            fleet_tracer_events(tracer, lane)


def fleet_tracer_events(tracer, lane):
    return tracer.lane_tracer(lane).events


def test_attach_tracer_lane_count_mismatch():
    config = small_config()
    traffic = [
        UniformRandomTraffic(config.radix, 0.5, seed=s) for s in range(2)
    ]
    sim = FleetSimulation(config, traffic, [None, None])
    with pytest.raises(ValueError, match="lanes"):
        sim.kernel.attach_tracer(FleetTracer(5))


def test_fleet_tracer_rejects_bad_shapes():
    with pytest.raises(ValueError):
        FleetTracer(0)
    with pytest.raises(ValueError):
        FleetTracer(2, capacity=0)

"""Tests of the synthetic traffic generators."""

import pytest

from repro.core import HiRiseConfig
from repro.traffic import (
    AdversarialTraffic,
    BurstyTraffic,
    HotspotTraffic,
    PermutationTraffic,
    TraceTraffic,
    UniformRandomTraffic,
    interlayer_worstcase,
    paper_adversarial_demands,
)


def collect(traffic, cycles):
    packets = []
    for cycle in range(cycles):
        packets.extend(traffic.packets_for_cycle(cycle))
    return packets


class TestUniformRandom:
    def test_rate_matches_load(self):
        traffic = UniformRandomTraffic(16, load=0.25, seed=1)
        packets = collect(traffic, 4000)
        rate = len(packets) / (4000 * 16)
        assert rate == pytest.approx(0.25, rel=0.05)

    def test_destinations_cover_all_ports_roughly_evenly(self):
        traffic = UniformRandomTraffic(8, load=1.0, seed=2)
        packets = collect(traffic, 2000)
        counts = {dst: 0 for dst in range(8)}
        for packet in packets:
            counts[packet.dst] += 1
        total = sum(counts.values())
        for dst, count in counts.items():
            assert count / total == pytest.approx(1 / 8, rel=0.1)

    def test_self_traffic_excluded_by_default(self):
        traffic = UniformRandomTraffic(8, load=1.0, seed=3)
        assert all(p.src != p.dst for p in collect(traffic, 200))

    def test_self_traffic_optional(self):
        traffic = UniformRandomTraffic(4, load=1.0, seed=3, exclude_self=False)
        assert any(p.src == p.dst for p in collect(traffic, 200))

    def test_deterministic_under_seed(self):
        a = collect(UniformRandomTraffic(8, 0.5, seed=42), 100)
        b = collect(UniformRandomTraffic(8, 0.5, seed=42), 100)
        assert [(p.src, p.dst) for p in a] == [(p.src, p.dst) for p in b]

    def test_load_validation(self):
        with pytest.raises(ValueError):
            UniformRandomTraffic(8, load=1.5)

    def test_active_inputs_restriction(self):
        traffic = UniformRandomTraffic(8, 1.0, seed=1, active_inputs=[2, 5])
        assert {p.src for p in collect(traffic, 100)} == {2, 5}


class TestHotspot:
    def test_all_packets_target_hotspot(self):
        traffic = HotspotTraffic(64, load=0.5, hotspot_output=63, seed=4)
        packets = collect(traffic, 200)
        assert packets
        assert all(p.dst == 63 for p in packets)

    def test_background_load_spreads(self):
        traffic = HotspotTraffic(
            16, load=0.2, hotspot_output=7, seed=4, background_load=0.3
        )
        packets = collect(traffic, 1000)
        non_hotspot = [p for p in packets if p.dst != 7]
        assert non_hotspot
        assert all(p.dst != 7 for p in non_hotspot)

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotTraffic(8, 0.5, hotspot_output=8)


class TestBursty:
    def test_long_run_rate_close_to_load(self):
        traffic = BurstyTraffic(8, load=0.3, burst_length=6.0, seed=5)
        packets = collect(traffic, 20000)
        rate = len(packets) / (20000 * 8)
        assert rate == pytest.approx(0.3, rel=0.15)

    def test_burstiness_exceeds_bernoulli(self):
        """Back-to-back injections are much likelier than under Bernoulli."""
        traffic = BurstyTraffic(
            2, load=0.2, burst_length=8.0, seed=6, active_inputs=[0]
        )
        injections = [
            bool(list(traffic.packets_for_cycle(c))) for c in range(20000)
        ]
        pairs = sum(
            1 for a, b in zip(injections, injections[1:]) if a and b
        )
        ons = sum(injections)
        conditional = pairs / max(ons, 1)
        assert conditional > 0.6  # Bernoulli(0.2) would give ~0.2

    def test_per_burst_destination_held(self):
        traffic = BurstyTraffic(
            4, load=0.5, burst_length=10.0, seed=7, per_burst_destination=True
        )
        packets = collect(traffic, 500)
        # Within any consecutive run from one source, destination changes
        # are far rarer than packets (bursts hold their destination).
        by_src = {}
        for packet in packets:
            by_src.setdefault(packet.src, []).append(packet.dst)
        changes = sum(
            sum(1 for a, b in zip(dsts, dsts[1:]) if a != b)
            for dsts in by_src.values()
        )
        assert changes < len(packets) / 3

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyTraffic(8, 0.3, burst_length=0.5)
        with pytest.raises(ValueError):
            BurstyTraffic(8, 1.0, burst_length=4.0)


class TestAdversarial:
    def test_paper_demands(self):
        demands = paper_adversarial_demands()
        assert demands == {3: 63, 7: 63, 11: 63, 15: 63, 20: 63}

    def test_fixed_destinations(self):
        traffic = AdversarialTraffic(64, 1.0, paper_adversarial_demands(), seed=8)
        packets = collect(traffic, 50)
        assert {p.src for p in packets} <= {3, 7, 11, 15, 20}
        assert all(p.dst == 63 for p in packets)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdversarialTraffic(8, 1.0, {})
        with pytest.raises(ValueError):
            AdversarialTraffic(8, 1.0, {9: 0})


class TestInterlayerWorstcase:
    def test_no_within_layer_traffic(self):
        config = HiRiseConfig(radix=64, layers=4, channel_multiplicity=1)
        demands = interlayer_worstcase(config)
        assert len(demands) == 64
        for src, dst in demands.items():
            assert config.layer_of_port(src) != config.layer_of_port(dst)

    def test_channel_sharers_request_distinct_outputs(self):
        config = HiRiseConfig(radix=64, layers=4, channel_multiplicity=4)
        demands = interlayer_worstcase(config)
        by_channel = {}
        for src, dst in demands.items():
            key = (
                config.layer_of_port(src),
                config.local_index(src) % config.channel_multiplicity,
            )
            by_channel.setdefault(key, []).append(dst)
        for dsts in by_channel.values():
            assert len(dsts) == len(set(dsts))


class TestPermutation:
    def test_transpose_is_involution(self):
        traffic = PermutationTraffic(64, 1.0, pattern="transpose", seed=1)
        from repro.traffic.permutation import transpose

        for src in range(64):
            assert transpose(transpose(src, 64), 64) == src

    def test_bit_complement(self):
        from repro.traffic.permutation import bit_complement

        assert bit_complement(0, 64) == 63
        assert bit_complement(21, 64) == 42

    def test_bit_reverse(self):
        from repro.traffic.permutation import bit_reverse

        assert bit_reverse(1, 8) == 4
        assert bit_reverse(bit_reverse(5, 64), 64) == 5

    def test_shuffle_rotates(self):
        from repro.traffic.permutation import shuffle

        assert shuffle(1, 8) == 2
        assert shuffle(4, 8) == 1

    def test_self_destinations_suppressed(self):
        traffic = PermutationTraffic(16, 1.0, pattern="bit_complement", seed=1)
        packets = collect(traffic, 20)
        assert all(p.src != p.dst for p in packets)

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PermutationTraffic(48, 1.0, pattern="transpose")

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            PermutationTraffic(16, 1.0, pattern="nope")


class TestTrace:
    def test_replays_exact_events(self):
        trace = TraceTraffic([(0, 1, 2), (0, 3, 4), (5, 1, 6)], packet_flits=2)
        c0 = list(trace.packets_for_cycle(0))
        c1 = list(trace.packets_for_cycle(1))
        c5 = list(trace.packets_for_cycle(5))
        assert [(p.src, p.dst) for p in c0] == [(1, 2), (3, 4)]
        assert c1 == []
        assert [(p.src, p.dst) for p in c5] == [(1, 6)]
        assert trace.total_events == 3

    def test_rejects_negative_cycle(self):
        with pytest.raises(ValueError):
            TraceTraffic([(-1, 0, 1)])

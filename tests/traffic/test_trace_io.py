"""Tests of trace CSV round-tripping."""

import pytest

from repro.traffic import TraceTraffic


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        original = TraceTraffic(
            [(0, 1, 2), (0, 3, 4), (7, 5, 6)], packet_flits=2
        )
        path = original.to_csv(tmp_path / "trace.csv")
        loaded = TraceTraffic.from_csv(path, packet_flits=2)
        assert loaded.events() == original.events()
        assert loaded.total_events == 3

    def test_events_sorted_by_cycle(self):
        trace = TraceTraffic([(5, 0, 1), (0, 2, 3), (5, 4, 5)])
        assert trace.events() == [(0, 2, 3), (5, 0, 1), (5, 4, 5)]

    def test_csv_content(self, tmp_path):
        path = TraceTraffic([(1, 2, 3)]).to_csv(tmp_path / "t.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "cycle,src,dst"
        assert lines[1] == "1,2,3"

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            TraceTraffic.from_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("cycle,src,dst\n1,x,3\n")
        with pytest.raises(ValueError):
            TraceTraffic.from_csv(path)

    def test_loaded_trace_replays_identically(self, tmp_path):
        from repro.network.engine import Simulation
        from repro.switches import SwizzleSwitch2D

        events = [(c, c % 4, (c + 1) % 4) for c in range(0, 30, 3)]
        path = TraceTraffic(events).to_csv(tmp_path / "t.csv")
        loaded = TraceTraffic.from_csv(path)
        a = Simulation(SwizzleSwitch2D(4), TraceTraffic(events)).run(80, drain=True)
        b = Simulation(SwizzleSwitch2D(4), loaded).run(80, drain=True)
        assert a.packet_latencies == b.packet_latencies
"""The calibrated cost models must reproduce every published anchor.

These are the quantitative core of Tables I, IV and V: the analytical
model, fitted once over the five published design points, must land within
a small tolerance of *all* of them simultaneously (the system is
over-determined, so this is a real consistency check of the model's form,
not a tautology).
"""

import pytest

from repro.core import HiRiseConfig
from repro.physical import cost_of
from repro.physical.calibration import (
    PAPER_AREA_MM2,
    PAPER_ENERGY_PJ,
    PAPER_FREQUENCY_GHZ,
    PAPER_TSV_COUNT,
    calibrated_area,
    calibrated_delay,
    calibrated_energy,
)

TOLERANCE = 0.03  # 3% relative


def anchor_cost(name):
    if name == "2d":
        return cost_of("2d")
    if name == "folded":
        return cost_of("folded")
    channels = int(name.split("_c")[1][0])
    arbitration = "clrg" if name.endswith("clrg") else "l2l_lrg"
    return cost_of(
        HiRiseConfig(channel_multiplicity=channels, arbitration=arbitration)
    )


ANCHORS = ["2d", "folded", "hirise_c4", "hirise_c2", "hirise_c1", "hirise_c4_clrg"]


class TestAnchors:
    @pytest.mark.parametrize("name", ANCHORS)
    def test_frequency_anchor(self, name):
        cost = anchor_cost(name)
        assert cost.frequency_ghz == pytest.approx(
            PAPER_FREQUENCY_GHZ[name], rel=TOLERANCE
        )

    @pytest.mark.parametrize("name", ANCHORS)
    def test_energy_anchor(self, name):
        cost = anchor_cost(name)
        assert cost.energy_pj == pytest.approx(
            PAPER_ENERGY_PJ[name], rel=TOLERANCE
        )

    @pytest.mark.parametrize("name", ANCHORS[:5])
    def test_area_anchor(self, name):
        cost = anchor_cost(name)
        assert cost.area_mm2 == pytest.approx(
            PAPER_AREA_MM2[name], rel=TOLERANCE
        )

    @pytest.mark.parametrize("name", ANCHORS[:5])
    def test_tsv_count_exact(self, name):
        assert anchor_cost(name).tsv_count == PAPER_TSV_COUNT[name]


class TestFittedConstants:
    def test_all_constants_non_negative(self):
        delay = calibrated_delay()
        energy = calibrated_energy()
        area = calibrated_area()
        assert delay.per_stage_ns > 0
        assert delay.per_span_ns > 0
        assert delay.per_tsv_crossing_ns >= 0
        assert energy.per_stage_pj > 0
        assert energy.per_span_pj >= 0
        assert area.per_crosspoint_mm2 > 0
        assert area.per_tsv_mm2 >= 0

    def test_clrg_adders_match_table5_deltas(self):
        delay = calibrated_delay()
        energy = calibrated_energy()
        assert delay.clrg_extra_ns == pytest.approx(1 / 2.2 - 1 / 2.24)
        assert energy.clrg_extra_pj == pytest.approx(2.0)

    def test_headline_clrg_point(self):
        """The abstract's headline: 64-radix 4-layer CLRG Hi-Rise runs at
        2.2 GHz, 44 pJ per 128-bit transaction, 0.451 mm^2."""
        cost = cost_of(HiRiseConfig())  # defaults are the headline config
        assert cost.frequency_ghz == pytest.approx(2.2, rel=TOLERANCE)
        assert cost.energy_pj == pytest.approx(44.0, rel=TOLERANCE)
        assert cost.area_mm2 == pytest.approx(0.451, rel=TOLERANCE)
        assert cost.tsv_count == 6144

    def test_headline_improvements_over_2d(self):
        """Abstract: ~33% area reduction, ~38-40% energy reduction."""
        hirise = cost_of(HiRiseConfig())
        flat = cost_of("2d")
        area_reduction = 1 - hirise.area_mm2 / flat.area_mm2
        energy_reduction = 1 - hirise.energy_pj / flat.energy_pj
        assert area_reduction == pytest.approx(0.33, abs=0.03)
        assert energy_reduction == pytest.approx(0.38, abs=0.03)

"""Tests of the fabric-level comparison models."""

import pytest

from repro.physical.fabric import (
    FabricCost,
    flattened_butterfly_cost,
    mesh_fabric_cost,
    single_switch_cost,
)


class TestMeshFabric:
    def test_classic_mesh_hop_count(self):
        fabric = mesh_fabric_cost(64, concentration=1)
        assert fabric.avg_hops == pytest.approx(16 / 3)

    def test_concentration_cuts_hops(self):
        classic = mesh_fabric_cost(64, concentration=1)
        concentrated = mesh_fabric_cost(64, concentration=4)
        assert concentrated.avg_hops < classic.avg_hops
        assert concentrated.energy_pj < classic.energy_pj

    def test_validation(self):
        with pytest.raises(ValueError):
            mesh_fabric_cost(60, concentration=1)  # not a square
        with pytest.raises(ValueError):
            mesh_fabric_cost(64, concentration=3)  # doesn't divide


class TestFlattenedButterfly:
    def test_two_hop_diameter(self):
        fabric = flattened_butterfly_cost(64, concentration=4)
        assert fabric.avg_hops < 2.0
        assert fabric.avg_hops > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            flattened_butterfly_cost(60, concentration=4)


class TestSingleSwitch:
    def test_wraps_design_point(self):
        fabric = single_switch_cost(44.0, 2.2)
        assert fabric.energy_pj == 44.0
        assert fabric.latency_ns == pytest.approx(4 / 2.2)
        assert fabric.avg_hops == 0.0


class TestSectionVIEStory:
    def test_energy_ordering(self):
        """Single high-radix switches beat multi-hop fabrics on transport
        energy, FB beats mesh — the Section VI-E ordering."""
        mesh = mesh_fabric_cost(64, concentration=1)
        butterfly = flattened_butterfly_cost(64, concentration=4)
        flat = single_switch_cost(71.0, 1.69)
        hirise = single_switch_cost(44.1, 2.2)
        assert (
            hirise.energy_pj < flat.energy_pj
            < butterfly.energy_pj < mesh.energy_pj
        )

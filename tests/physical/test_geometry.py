"""Tests of the structural geometry derivations."""

import pytest

from repro.core import HiRiseConfig
from repro.physical.geometry import (
    flat2d_geometry,
    folded3d_geometry,
    hirise_geometry,
    hirise_sweep_geometry,
)


class TestFlat2D:
    def test_spans_and_crosspoints(self):
        g = flat2d_geometry(64)
        assert g.stages == ((64, 64),)
        assert g.span_linear == 128
        assert g.crosspoints == 4096
        assert g.tsv_count(128) == 0
        assert g.layers == 1

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            flat2d_geometry(1)


class TestFolded:
    def test_electrical_span_unchanged_by_folding(self):
        g = folded3d_geometry(64, 4)
        assert g.stages == ((64, 64),)
        assert g.crosspoints == 4096

    def test_tsv_count_matches_table1(self):
        """Table I: the folded 64-radix, 128-bit switch needs 8192 TSVs."""
        assert folded3d_geometry(64, 4).tsv_count(128) == 8192

    def test_validation(self):
        with pytest.raises(ValueError):
            folded3d_geometry(64, 1)
        with pytest.raises(ValueError):
            folded3d_geometry(63, 4)


class TestHiRise:
    @pytest.mark.parametrize(
        "c,local,sub,tsvs",
        [
            (4, (16, 28), 13, 6144),
            (2, (16, 22), 7, 3072),
            (1, (16, 19), 4, 1536),
        ],
    )
    def test_table4_configurations(self, c, local, sub, tsvs):
        config = HiRiseConfig(channel_multiplicity=c)
        g = hirise_geometry(config)
        assert g.stages[0] == local
        assert g.stages[1] == (sub, 1)
        assert g.tsv_count(128) == tsvs

    def test_crosspoints_much_leaner_than_folded(self):
        """The hierarchical datapath needs far fewer cross-points than the
        folded baseline's full 64x64 grid (Section II-B)."""
        hirise = hirise_geometry(HiRiseConfig(channel_multiplicity=4))
        folded = folded3d_geometry(64, 4)
        assert hirise.crosspoints < 0.7 * folded.crosspoints

    def test_two_stages_on_critical_path(self):
        g = hirise_geometry(HiRiseConfig())
        assert g.num_stages == 2

    def test_priority_allocation_flagged(self):
        g = hirise_geometry(HiRiseConfig(allocation="priority"))
        assert g.priority_mux_channels == 4
        g = hirise_geometry(HiRiseConfig(allocation="input_binned"))
        assert g.priority_mux_channels == 0


class TestSweepGeometry:
    def test_matches_exact_geometry_when_divisible(self):
        exact = hirise_geometry(
            HiRiseConfig(radix=64, layers=4, channel_multiplicity=4,
                         arbitration="l2l_lrg")
        )
        sweep = hirise_sweep_geometry(64, 4, 4)
        assert sweep.stages == exact.stages
        assert sweep.crosspoints == exact.crosspoints
        assert sweep.tsv_count(128) == exact.tsv_count(128)

    def test_uneven_split_uses_ceiling(self):
        g = hirise_sweep_geometry(64, 3, 4)
        assert g.stages[0][0] == 22  # ceil(64/3)

    def test_validation(self):
        with pytest.raises(ValueError):
            hirise_sweep_geometry(64, 1, 4)
        with pytest.raises(ValueError):
            hirise_sweep_geometry(2, 4, 4)
        with pytest.raises(ValueError):
            hirise_sweep_geometry(64, 4, 0)

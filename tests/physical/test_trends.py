"""The physical model must reproduce the paper's scaling *trends*.

These tests assert the qualitative claims of Section VI-A and VI-C: where
curves cross, where optima sit, and which direction sensitivities point —
the content of Figs 9(a), 9(b), 9(c) and 12.
"""

import pytest

from repro.core import HiRiseConfig
from repro.physical import (
    cost_of,
    energy_per_transaction_pj,
    flat2d_geometry,
    frequency_ghz,
    hirise_geometry,
)
from repro.physical.geometry import hirise_sweep_geometry
from repro.physical.technology import Technology


def hirise_freq(radix, layers=4, channels=4):
    return frequency_ghz(hirise_sweep_geometry(radix, layers, channels))


class TestFig9aFrequencyVsRadix:
    def test_2d_faster_at_low_radix(self):
        """The hierarchical overhead makes 3D slower below ~radix 32."""
        for radix in (8, 16, 32):
            assert frequency_ghz(flat2d_geometry(radix)) > hirise_freq(radix)

    def test_3d_faster_beyond_crossover(self):
        for radix in (48, 64, 96, 128):
            assert hirise_freq(radix) > frequency_ghz(flat2d_geometry(radix))

    def test_gap_widens_with_radix(self):
        gap_64 = hirise_freq(64) - frequency_ghz(flat2d_geometry(64))
        gap_128 = hirise_freq(128) - frequency_ghz(flat2d_geometry(128))
        assert gap_128 > gap_64

    def test_channel_multiplicity_converges_at_high_radix(self):
        """Fig 9a: the 1/2/4-channel curves converge as radix grows."""
        ratio_small = hirise_freq(16, channels=1) / hirise_freq(16, channels=4)
        ratio_large = hirise_freq(128, channels=1) / hirise_freq(128, channels=4)
        assert ratio_large < ratio_small

    def test_scalability_extends_to_radix_96(self):
        """Intro claim: Hi-Rise reaches radix 96 at the 2D switch's
        radix-64 operating frequency."""
        assert hirise_freq(96) >= frequency_ghz(flat2d_geometry(64))


class TestFig9bFrequencyVsLayers:
    def test_radix64_optimum_is_3_to_5_layers(self):
        freqs = {layers: hirise_freq(64, layers=layers) for layers in range(2, 8)}
        best = max(freqs, key=freqs.get)
        assert best in (3, 4, 5)

    def test_optimum_shifts_up_with_radix(self):
        def best_layers(radix):
            freqs = {
                layers: hirise_freq(radix, layers=layers)
                for layers in range(2, 9)
            }
            return max(freqs, key=freqs.get)

        assert best_layers(48) <= best_layers(128)

    def test_curve_falls_off_on_both_sides(self):
        freqs = [hirise_freq(64, layers=layers) for layers in range(2, 9)]
        peak = freqs.index(max(freqs))
        assert freqs[0] < freqs[peak]
        assert freqs[-1] < freqs[peak]


class TestFig9cEnergyVsRadix:
    def test_3d_energy_slope_is_gentler(self):
        def energies(builder):
            return [builder(radix) for radix in (32, 64, 128)]

        e2d = energies(lambda r: energy_per_transaction_pj(flat2d_geometry(r)))
        e3d = energies(
            lambda r: energy_per_transaction_pj(hirise_sweep_geometry(r, 4, 4))
        )
        slope_2d = e2d[-1] - e2d[0]
        slope_3d = e3d[-1] - e3d[0]
        assert slope_3d < slope_2d / 3

    def test_iso_energy_radix_is_much_higher_for_3d(self):
        """Fig 9c: for the 2D switch's radix-64 energy, 3D affords a
        significantly higher radix."""
        e2d_64 = energy_per_transaction_pj(flat2d_geometry(64))
        e3d_128 = energy_per_transaction_pj(hirise_sweep_geometry(128, 4, 4))
        assert e3d_128 < e2d_64


class TestFig12TsvPitch:
    def test_area_grows_and_frequency_falls_with_pitch(self):
        config = HiRiseConfig()
        costs = [
            cost_of(config, technology=Technology().with_tsv_pitch(pitch))
            for pitch in (0.8, 1.6, 3.2, 4.8)
        ]
        areas = [c.area_mm2 for c in costs]
        freqs = [c.frequency_ghz for c in costs]
        assert areas == sorted(areas)
        assert freqs == sorted(freqs, reverse=True)

    def test_25_percent_pitch_increase_is_small(self):
        """Section VI-C: +25% pitch costs only ~1.7% area, ~1.8% freq."""
        config = HiRiseConfig()
        base = cost_of(config)
        bumped = cost_of(config, technology=Technology().with_tsv_pitch(1.0))
        area_increase = bumped.area_mm2 / base.area_mm2 - 1
        freq_drop = 1 - bumped.frequency_ghz / base.frequency_ghz
        assert 0 < area_increase < 0.05
        assert 0 < freq_drop < 0.05

    def test_2d_insensitive_to_tsv_pitch(self):
        base = cost_of("2d")
        bumped = cost_of("2d", technology=Technology().with_tsv_pitch(4.0))
        assert bumped.area_mm2 == pytest.approx(base.area_mm2)
        assert bumped.frequency_ghz == pytest.approx(base.frequency_ghz)


class TestScalingSanity:
    def test_area_monotone_in_radix(self):
        areas = [cost_of("2d", radix=r).area_mm2 for r in (16, 32, 64, 128)]
        assert areas == sorted(areas)

    def test_priority_allocation_pays_delay(self):
        binned = cost_of(HiRiseConfig(allocation="input_binned"))
        priority = cost_of(HiRiseConfig(allocation="priority"))
        assert priority.frequency_ghz < binned.frequency_ghz

    def test_wider_flit_costs_area_and_energy(self):
        narrow = Technology()
        wide = Technology(flit_bits=256)
        config = HiRiseConfig()
        assert (
            cost_of(config, technology=wide).area_mm2
            > cost_of(config, technology=narrow).area_mm2
        )
        assert (
            cost_of(config, technology=wide).energy_pj
            > cost_of(config, technology=narrow).energy_pj
        )

    def test_voltage_scaling_quadratic(self):
        low = Technology(voltage_v=0.5)
        base = Technology()
        config = HiRiseConfig()
        ratio = (
            cost_of(config, technology=low).energy_pj
            / cost_of(config, technology=base).energy_pj
        )
        assert ratio == pytest.approx(0.25)

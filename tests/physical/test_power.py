"""Tests of the power estimation model."""

import pytest

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.network.engine import Simulation, SimulationResult
from repro.physical.power import PowerEstimate, average_power
from repro.switches import SwizzleSwitch2D
from repro.traffic import UniformRandomTraffic


def run_design(design, factory, load, cycles=1500):
    traffic = UniformRandomTraffic(64, load, seed=5)
    sim = Simulation(factory(), traffic, warmup_cycles=200)
    return sim.run(cycles)


class TestAveragePower:
    def test_requires_measured_cycles(self):
        with pytest.raises(ValueError):
            average_power(SimulationResult(), "2d")

    def test_dynamic_power_scales_with_load(self):
        low = run_design("2d", lambda: SwizzleSwitch2D(64), load=0.02)
        high = run_design("2d", lambda: SwizzleSwitch2D(64), load=0.10)
        p_low = average_power(low, "2d")
        p_high = average_power(high, "2d")
        assert p_high.dynamic_w > 3 * p_low.dynamic_w
        assert p_high.leakage_w == pytest.approx(p_low.leakage_w)

    def test_saturated_2d_power_magnitude(self):
        """At saturation the 2D switch moves ~0.64 flits/cycle/port x 64
        ports x 1.69 GHz x 71 pJ ~ 4.9 W — the multi-watt range expected
        of a 10 Tbps-class fabric."""
        result = run_design("2d", lambda: SwizzleSwitch2D(64), load=0.99)
        estimate = average_power(result, "2d")
        assert 3.0 < estimate.dynamic_w < 7.0

    def test_hirise_beats_2d_power_at_matched_bandwidth(self):
        """Section VI-E: Hi-Rise improves the 2D switch's power by ~38% —
        a pure energy-per-transaction effect once the offered traffic is
        matched in packets/ns (the same workload on both fabrics)."""
        from repro.physical import cost_of

        config = HiRiseConfig()
        load_per_ns = 0.15  # packets/input/ns, below both saturations
        f2d = cost_of("2d").frequency_ghz
        f3d = cost_of(config).frequency_ghz
        r2d = run_design("2d", lambda: SwizzleSwitch2D(64),
                         load=load_per_ns / f2d)
        r3d = run_design(config, lambda: HiRiseSwitch(config),
                         load=load_per_ns / f3d)
        p2d = average_power(r2d, "2d")
        p3d = average_power(r3d, config)
        ratio = p3d.dynamic_w / p2d.dynamic_w
        assert ratio == pytest.approx(44.0 / 71.0, abs=0.08)

    def test_energy_per_bit(self):
        estimate = PowerEstimate(
            dynamic_w=1.28, leakage_w=0.0, transactions_per_second=1e10
        )
        # 1.28 W / 1e10 trans/s = 128 pJ/transaction = 1 pJ/bit at 128 b.
        assert estimate.energy_per_bit_pj() == pytest.approx(1.0)

    def test_idle_energy_per_bit_is_infinite(self):
        estimate = PowerEstimate(
            dynamic_w=0.0, leakage_w=0.1, transactions_per_second=0.0
        )
        assert estimate.energy_per_bit_pj() == float("inf")

    def test_total_includes_leakage(self):
        estimate = PowerEstimate(
            dynamic_w=1.0, leakage_w=0.02, transactions_per_second=1e9
        )
        assert estimate.total_w == pytest.approx(1.02)

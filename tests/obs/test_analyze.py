"""Tests of the streaming trace-audit analyzer and baseline diffing."""

import json

import pytest

from repro.core.config import HiRiseConfig
from repro.core.hirise import HiRiseSwitch
from repro.network.engine import Simulation
from repro.obs import StatsRegistry
from repro.obs.analyze import (
    AUDIT_SCHEMA,
    TraceAnalyzer,
    analyze_jsonl,
    analyze_records,
    analyze_tracer,
    compare_audits,
    filter_records,
    iter_jsonl,
    resource_label,
    summarize_records,
    validate_audit_summary,
)
from repro.obs.trace import SwitchTracer
from repro.traffic import HotspotTraffic


def small_config(**overrides):
    defaults = dict(radix=16, layers=4, channel_multiplicity=2)
    defaults.update(overrides)
    return HiRiseConfig(**defaults)


def traced_hotspot(arbitration, cycles=2000, warmup=200, load=0.08, seed=2):
    """A traced, non-draining hotspot run (drain would equalize service)."""
    tracer = SwitchTracer(capacity=None)
    switch = HiRiseSwitch(
        small_config(arbitration=arbitration), tracer=tracer
    )
    traffic = HotspotTraffic(16, load=load, hotspot_output=3, seed=seed)
    result = Simulation(switch, traffic, warmup_cycles=warmup).run(
        measure_cycles=cycles
    )
    return result, tracer


def synthetic_records(events, radix=4, layers=2, channel_multiplicity=1):
    """A meta record followed by hand-built event records."""
    meta = {
        "event": "meta", "version": 1, "events": len(events), "dropped": 0,
        "radix": radix, "layers": layers,
        "channel_multiplicity": channel_multiplicity,
        "arbitration": "clrg", "allocation": "input_binned",
    }
    return [meta] + list(events)


def inject(cycle, src, dst=0, flits=4, pid=0):
    return {"cycle": cycle, "event": "inject", "src": src, "dst": dst,
            "num_flits": flits, "packet_id": pid}


def eject(cycle, src, dst=0, seq=0, tail=0):
    return {"cycle": cycle, "event": "eject", "src": src, "dst": dst,
            "seq": seq, "tail": tail}


def grant(cycle, inp, resource=0, output=0, cls=-1):
    return {"cycle": cycle, "event": "p2_grant", "resource": resource,
            "input": inp, "output": output, "cls": cls}


# ---------------------------------------------------------------------------
# The paper's fairness claim, as an audited property
# ---------------------------------------------------------------------------
class TestFairnessClaim:
    @pytest.fixture(scope="class")
    def audits(self):
        _, clrg_tracer = traced_hotspot("clrg")
        _, lrg_tracer = traced_hotspot("l2l_lrg")
        return (
            analyze_tracer(clrg_tracer).summary(),
            analyze_tracer(lrg_tracer).summary(),
        )

    def test_clrg_jain_strictly_exceeds_two_phase_lrg(self, audits):
        clrg, lrg = audits
        assert clrg["fairness"]["jain"] > lrg["fairness"]["jain"]

    def test_lrg_audit_flags_unfair_epochs_clrg_stays_clean(self, audits):
        clrg, lrg = audits
        assert lrg["fairness"]["unfair_epochs"] >= 1
        assert any(
            item["kind"] == "unfair_epoch"
            for item in lrg["anomalies"]["items"]
        )
        assert clrg["fairness"]["unfair_epochs"] == 0

    def test_clrg_dynamics_reconstructed(self, audits):
        clrg, lrg = audits
        # Grants carry their CLRG class; the counter banks halved.
        assert clrg["clrg"]["class_grants"]
        assert sum(clrg["clrg"]["class_grants"].values()) > 0
        assert clrg["clrg"]["halvings"] > 0
        assert clrg["clrg"]["halvings_by_output"].get("3", 0) > 0
        # Two-phase LRG has no classes and never halves.
        assert lrg["clrg"]["halvings"] == 0
        assert not lrg["clrg"]["class_grants"]

    def test_lrg_skews_service_toward_remote_layers(self, audits):
        _, lrg = audits
        grants = lrg["service"]["per_input_grants"]
        # The hotspot layer's own inputs (ports 0-3 share a layer with
        # output 3) receive measurably less service under two-phase LRG.
        local = sum(grants[0:4]) / 4
        remote = sum(grants[4:]) / 12
        assert remote > 1.5 * local


# ---------------------------------------------------------------------------
# Streaming mechanics
# ---------------------------------------------------------------------------
class TestStreaming:
    def test_single_pass_over_a_one_shot_generator(self):
        records = synthetic_records(
            [inject(0, 0), grant(1, 0), eject(1, 0, tail=1)]
        )
        consumed = (record for record in records)  # exhaustible, one pass
        report = analyze_records(consumed)
        assert report.events == 3
        assert list(consumed) == []

    def test_bounded_epoch_storage_beyond_the_window_buffer(self):
        # 64x more epochs than the analyzer may store: memory stays
        # bounded via stride doubling while aggregates remain exact.
        max_epochs = 8
        window = 4
        epochs = max_epochs * 64
        def stream():
            yield synthetic_records([])[0]
            for epoch in range(epochs):
                cycle = epoch * window
                yield inject(cycle, src=epoch % 4)
                yield grant(cycle + 1, inp=epoch % 4)
        report = analyze_records(
            stream(), window=window, max_epochs=max_epochs
        )
        assert report.epochs_total == epochs
        assert len(report.epochs) <= max_epochs
        assert report.epoch_stride > 1
        # Stored epochs are a deterministic stride sample from the start.
        assert [e.index for e in report.epochs] == list(
            range(0, report.epochs[-1].index + 1, report.epoch_stride)
        )

    def test_anomaly_storage_is_bounded_but_counted(self):
        def stream():
            yield synthetic_records([])[0]
            for cycle in range(40):
                yield {"cycle": cycle, "event": "drain_stall",
                       "idle_cycles": 5, "occupancy": 1}
        report = analyze_records(stream(), max_anomalies=4)
        assert len(report.anomalies) == 4
        assert report.anomalies_total == 40
        assert report.summary()["anomalies"]["dropped"] == 36

    def test_requires_meta_record_first(self):
        analyzer = TraceAnalyzer()
        with pytest.raises(ValueError, match="meta"):
            analyzer.feed(inject(0, 0))

    def test_feed_after_finish_rejected(self):
        analyzer = TraceAnalyzer()
        analyzer.feed(synthetic_records([])[0])
        analyzer.finish()
        with pytest.raises(RuntimeError):
            analyzer.feed(inject(0, 0))

    def test_jsonl_and_tracer_paths_agree(self, tmp_path):
        _, tracer = traced_hotspot("clrg", cycles=400, warmup=40)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        assert (
            analyze_jsonl(path).summary()
            == analyze_tracer(tracer).summary()
        )

    def test_dropped_events_flag_a_truncated_trace(self):
        report = analyze_records(
            [dict(synthetic_records([])[0], dropped=17), inject(0, 0)]
        )
        assert report.dropped_events == 17
        kinds = [a.kind for a in report.anomalies]
        assert "truncated_trace" in kinds


# ---------------------------------------------------------------------------
# Starvation windows
# ---------------------------------------------------------------------------
class TestStarvation:
    def test_longest_backlogged_gap_between_grants(self):
        records = synthetic_records([
            inject(0, src=1),
            grant(10, inp=1),          # waited 10 cycles
            grant(510, inp=1),         # starved 500 cycles, still backlogged
            eject(511, src=1, tail=1),
            eject(512, src=1), eject(513, src=1), eject(514, src=1),
        ])
        report = analyze_records(records, starvation_gap=100)
        assert report.per_input_max_gap[1] == 500
        assert report.starved_inputs == [1]
        assert any(a.kind == "starvation" for a in report.anomalies)

    def test_gap_clock_stops_when_backlog_drains(self):
        records = synthetic_records([
            inject(0, src=2, flits=1),
            grant(5, inp=2),
            eject(6, src=2, tail=1),   # backlog hits zero here
            inject(900, src=2, flits=1),
            grant(905, inp=2),
            eject(906, src=2, tail=1),
        ])
        report = analyze_records(records, starvation_gap=100)
        # The idle 6..900 stretch is not a gap: nothing was waiting.
        assert report.per_input_max_gap[2] == 5
        assert report.starved_inputs == []

    def test_trailing_open_wait_counts_as_a_gap(self):
        records = synthetic_records([
            inject(0, src=0),
            {"cycle": 700, "event": "p1_grant", "resource": 0, "input": 1,
             "output": 0, "weight": 1},  # just advances the clock
        ])
        report = analyze_records(records)
        assert report.per_input_max_gap[0] == 700


# ---------------------------------------------------------------------------
# Summary schema, stats export, baseline comparison
# ---------------------------------------------------------------------------
class TestSummaryAndBaseline:
    @pytest.fixture(scope="class")
    def summary(self):
        _, tracer = traced_hotspot("clrg", cycles=600, warmup=40)
        return analyze_tracer(tracer).summary()

    def test_summary_validates_and_is_strict_json(self, summary):
        assert validate_audit_summary(summary) is summary
        assert summary["schema"] == AUDIT_SCHEMA
        rebuilt = json.loads(json.dumps(summary, allow_nan=False))
        assert validate_audit_summary(rebuilt) == summary

    def test_validation_rejects_wrong_schema_and_missing_sections(
        self, summary
    ):
        with pytest.raises(ValueError, match="schema"):
            validate_audit_summary(dict(summary, schema="bogus/v9"))
        broken = dict(summary)
        del broken["fairness"]
        with pytest.raises(ValueError, match="fairness"):
            validate_audit_summary(broken)
        with pytest.raises(ValueError, match="jain"):
            validate_audit_summary(
                dict(summary, fairness={"window": 256})
            )

    def test_to_stats_exports_headline_numbers(self):
        _, tracer = traced_hotspot("clrg", cycles=600, warmup=40)
        report = analyze_tracer(tracer)
        registry = StatsRegistry()
        report.to_stats(registry)
        assert registry.get("audit.fairness.jain") == pytest.approx(
            report.jain
        )
        assert registry.get("audit.clrg.halvings") == report.total_halvings
        vector = registry["audit.per_input_grants"]
        assert vector.value() == report.per_input_grants

    def test_identical_summaries_show_no_regressions(self, summary):
        assert compare_audits(summary, summary) == []

    def test_injected_regressions_are_caught_directionally(self, summary):
        worse = json.loads(json.dumps(summary))
        worse["fairness"]["jain"] = summary["fairness"]["jain"] * 0.5
        worse["starvation"]["max_gap_cycles"] = (
            summary["starvation"]["max_gap_cycles"] * 10 + 100
        )
        found = {r.metric for r in compare_audits(worse, summary)}
        assert "fairness.jain" in found
        assert "starvation.max_gap_cycles" in found
        # The same moves in the good direction are not regressions.
        better = json.loads(json.dumps(summary))
        better["fairness"]["jain"] = 1.0
        better["starvation"]["max_gap_cycles"] = 0
        assert compare_audits(better, summary) == []

    def test_tolerance_allows_small_moves(self, summary):
        near = json.loads(json.dumps(summary))
        near["fairness"]["jain"] = summary["fairness"]["jain"] * 0.97
        assert compare_audits(near, summary, rel_tol=0.05) == []
        assert compare_audits(near, summary, rel_tol=0.0) != []


# ---------------------------------------------------------------------------
# Inspection helpers (trace CLI satellites)
# ---------------------------------------------------------------------------
class TestInspectionHelpers:
    def test_filter_by_kind_keeps_meta(self):
        records = synthetic_records([inject(0, 0), grant(1, 0)])
        kept = list(filter_records(records, kinds=["p2_grant"]))
        assert [r["event"] for r in kept] == ["meta", "p2_grant"]

    def test_filter_by_port_matches_any_port_field(self):
        records = synthetic_records([
            inject(0, src=1, dst=5),
            grant(1, inp=2, output=5),
            grant(2, inp=3, output=0),
        ])
        kept = list(filter_records(records, ports=[5]))
        assert len(kept) == 3  # meta + the two events touching port 5

    def test_filter_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="bogus"):
            list(filter_records(synthetic_records([]), kinds=["bogus"]))

    def test_summarize_counts_resources_and_ports(self):
        records = synthetic_records([
            inject(0, src=1),
            grant(1, inp=1, resource=3),
            {"cycle": 9, "event": "cool", "resource": 3, "input": 1,
             "output": 0, "granted": 1},
            eject(2, src=1, dst=0, tail=1),
        ])
        summary = summarize_records(records)
        assert summary["events"] == 4
        assert summary["counts_by_kind"]["p2_grant"] == 1
        assert summary["resources"][3] == {"grants": 1, "busy_cycles": 8}
        assert summary["ports"][1]["injected"] == 1
        assert summary["ports"][0]["ejected"] == 1
        assert summary["meta"]["radix"] == 4

    def test_resource_labels_match_config_layout(self):
        # radix 16, 4 layers, 2 channels: ids 0..15 are intermediate
        # outputs, 16.. are channels in (src, dst, channel) order.
        assert resource_label(0, 16, 4, 2) == "int L0.0"
        assert resource_label(5, 16, 4, 2) == "int L1.1"
        assert resource_label(16, 16, 4, 2) == "ch L0->L0#0"
        assert resource_label(19, 16, 4, 2) == "ch L0->L1#1"
        assert resource_label(47, 16, 4, 2) == "ch L3->L3#1"
        assert resource_label(48, 16, 4, 2) == "res48"
        assert resource_label(7, 0, 0, 0) == "res7"

    def test_iter_jsonl_streams_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = synthetic_records([inject(0, 0)])
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n"
        )
        assert list(iter_jsonl(path)) == records


# ---------------------------------------------------------------------------
# Analyzer option validation
# ---------------------------------------------------------------------------
class TestOptions:
    @pytest.mark.parametrize("kwargs", [
        dict(window=0),
        dict(fairness_threshold=0.0),
        dict(fairness_threshold=1.5),
        dict(max_min_threshold=0.5),
        dict(collapse_fraction=1.0),
        dict(starvation_gap=0),
        dict(max_epochs=0),
        dict(max_anomalies=0),
    ])
    def test_invalid_options_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TraceAnalyzer(**kwargs)

    def test_empty_trace_produces_an_empty_but_valid_summary(self):
        report = analyze_records(synthetic_records([]))
        summary = validate_audit_summary(report.summary())
        assert summary["trace"]["events"] == 0
        assert summary["fairness"]["jain"] is None
        assert report.cycles == 0

    def test_compare_rejects_negative_tolerances(self):
        with pytest.raises(ValueError):
            compare_audits({}, {}, rel_tol=-0.1)


# ---------------------------------------------------------------------------
# Fault-event tracking and degradation accounting (PR 4)
# ---------------------------------------------------------------------------
class TestFaultTracking:
    @pytest.fixture(scope="class")
    def faulted_audit(self):
        from repro.faults import (
            FaultSchedule, corrupt_clrg, fail_channel, fail_input,
            repair_channel,
        )
        from repro.traffic import UniformRandomTraffic

        schedule = FaultSchedule([
            fail_channel(100, 0, 1, 0),
            corrupt_clrg(150, 3, 2),
            fail_input(200, 5),
            repair_channel(400, 0, 1, 0),
        ])
        tracer = SwitchTracer(capacity=None)
        switch = HiRiseSwitch(
            small_config(), tracer=tracer, faults=schedule
        )
        traffic = UniformRandomTraffic(16, load=0.8, seed=4)
        Simulation(switch, traffic, warmup_cycles=0).run(800)
        return analyze_tracer(tracer, window=100)

    def test_fault_counters_and_final_state(self, faulted_audit):
        assert faulted_audit.fault_events == 3
        assert faulted_audit.repair_events == 1
        assert faulted_audit.clrg_corruptions == 1
        assert faulted_audit.max_failed_channels == 1
        assert faulted_audit.final_failed_channels == []
        assert len(faulted_audit.final_stuck_inputs) == 1

    def test_degradation_buckets_partition_the_run(self, faulted_audit):
        degradation = faulted_audit.degradation
        assert set(degradation) == {0, 1}
        assert sum(b["cycles"] for b in degradation.values()) == 800
        assert degradation[1]["cycles"] == 300
        for bucket in degradation.values():
            assert bucket["throughput_flits_per_cycle"] == pytest.approx(
                bucket["ejected_flits"] / bucket["cycles"]
            )

    def test_degraded_throughput_ratio_defined_and_sane(self, faulted_audit):
        ratio = faulted_audit.degraded_throughput_ratio
        assert ratio is not None
        assert 0.0 < ratio < 1.5

    def test_fault_anomalies_recorded(self, faulted_audit):
        kinds = [anomaly.kind for anomaly in faulted_audit.anomalies]
        assert kinds.count("fault") >= 3

    def test_summary_faults_section_is_additive_and_valid(self, faulted_audit):
        summary = validate_audit_summary(faulted_audit.summary())
        faults = summary["faults"]
        assert faults["fault_events"] == 3
        assert faults["max_failed_channels"] == 1
        assert set(faults["degradation"]) == {"0", "1"}
        # A fault-free audit still validates (the section is additive,
        # not schema-required) and reports zeros.
        clean = analyze_records(synthetic_records([]))
        clean_summary = validate_audit_summary(clean.summary())
        assert clean_summary["faults"]["fault_events"] == 0

    def test_to_stats_exports_fault_scalars_only_when_faulted(
        self, faulted_audit
    ):
        registry = StatsRegistry()
        faulted_audit.to_stats(registry)
        assert "audit.faults.injected" in registry.names()
        clean_registry = StatsRegistry()
        analyze_records(synthetic_records([])).to_stats(clean_registry)
        assert not any(
            name.startswith("audit.faults") for name in clean_registry.names()
        )


# ---------------------------------------------------------------------------
# Scheduler zoo: VOQ audits and the fairness-ordering claim
# ---------------------------------------------------------------------------
def traced_hotspot_voq(arbitration, islip_iterations=1, cycles=2000,
                       warmup=200, load=0.08, seed=2):
    """A traced hotspot run of the VOQ fabric (same window as CLRG's)."""
    from repro.switches import make_switch

    tracer = SwitchTracer(capacity=None)
    config = small_config(
        arbitration=arbitration, islip_iterations=islip_iterations,
    )
    switch = make_switch(config, tracer=tracer)
    traffic = HotspotTraffic(16, load=load, hotspot_output=3, seed=seed)
    result = Simulation(switch, traffic, warmup_cycles=warmup).run(
        measure_cycles=cycles
    )
    return result, tracer


class TestSchedulerZooFairnessClaim:
    #: Slack for the MWM leg of the ordering.  MWM-OCF serves the
    #: oversubscribed hotspot in global FCFS order, so each input's
    #: service carries the arrival process's multinomial noise
    #: (Jain ~= 1/(1 + 1/mean-served-per-input) at this window), while
    #: iSLIP's round-robin pointers rotate *exactly*.  The orderings
    #: involving LRG are strict — its unfairness is systematic, not
    #: sampling noise.
    FCFS_NOISE = 0.04

    @pytest.fixture(scope="class")
    def jains(self):
        audits = {}
        for name, arb, iters in (
            ("mwm", "mwm", 1),
            ("islip4", "islip", 4),
            ("lrg", "l2l_lrg", 1),
        ):
            _, tracer = traced_hotspot_voq(arb, islip_iterations=iters)
            audits[name] = analyze_tracer(tracer).summary()
        _, clrg_tracer = traced_hotspot("clrg")
        audits["clrg"] = analyze_tracer(clrg_tracer).summary()
        return {
            name: audit["fairness"]["jain"]
            for name, audit in audits.items()
        }, audits

    def test_paper_claim_ordering_on_the_hotspot_trace(self, jains):
        jain, _ = jains
        assert jain["mwm"] >= jain["islip4"] - self.FCFS_NOISE
        assert jain["islip4"] >= jain["clrg"] - 1e-9
        assert jain["clrg"] > jain["lrg"]
        assert jain["mwm"] > jain["lrg"]
        assert jain["islip4"] > jain["lrg"]

    def test_fairness_levels_are_in_the_expected_bands(self, jains):
        jain, _ = jains
        assert jain["islip4"] > 0.99 and jain["clrg"] > 0.99
        assert jain["mwm"] > 0.96
        assert jain["lrg"] < 0.96

    def test_voq_audit_reconstructs_scheduler_rounds(self, jains):
        _, audits = jains
        sched = audits["islip4"]["scheduler"]
        assert sched["grants"] > 0
        assert sched["accepts"] > 0
        assert set(sched["accepts_by_iteration"]) >= {"0"}
        assert 0.0 < sched["first_iteration_fraction"] <= 1.0
        # MWM reports its single-shot matching as iteration 0 only.
        mwm = audits["mwm"]["scheduler"]
        assert set(mwm["grants_by_iteration"]) == {"0"}
        assert mwm["first_iteration_fraction"] == 1.0
        # The Hi-Rise kernels emit no scheduler rounds at all.
        clrg = audits["clrg"]["scheduler"]
        assert clrg["grants"] == 0 and clrg["accepts"] == 0

    def test_voq_summaries_validate_against_the_audit_schema(self, jains):
        _, audits = jains
        for name in ("mwm", "islip4"):
            validate_audit_summary(audits[name])


class TestSchedKindRoundTrip:
    def test_sched_kinds_round_trip_binary_and_jsonl(self, tmp_path):
        numpy = pytest.importorskip("numpy")  # noqa: F841
        from repro.obs.analyze import analyze_tracebin
        from repro.obs.tracebin import BinaryTracer, read_tracebin
        from repro.switches import make_switch

        tracer = BinaryTracer(capacity=None)
        config = small_config(arbitration="islip", islip_iterations=2)
        switch = make_switch(config, tracer=tracer)
        traffic = HotspotTraffic(16, load=0.2, hotspot_output=3, seed=4)
        Simulation(switch, traffic, warmup_cycles=0).run(300)

        counts = tracer.counts_by_kind()
        assert counts["sched_grant"] > 0
        assert counts["sched_accept"] > 0

        # Binary file round-trip preserves the exact event stream.
        binary_path = tmp_path / "voq.tracebin"
        tracer.save(str(binary_path))
        columns = read_tracebin(str(binary_path))
        assert list(columns.iter_events()) == tracer.events

        # The JSONL export view names the sched payload fields.
        jsonl_path = tmp_path / "voq.jsonl"
        tracer.write_jsonl(str(jsonl_path))
        records = list(iter_jsonl(str(jsonl_path)))
        grants = [r for r in records if r["event"] == "sched_grant"]
        accepts = [r for r in records if r["event"] == "sched_accept"]
        assert len(grants) == counts["sched_grant"]
        assert len(accepts) == counts["sched_accept"]
        for record in grants[:10]:
            assert {"iteration", "output", "input", "weight"} <= set(record)
        for record in accepts[:10]:
            assert {"iteration", "input", "output", "weight"} <= set(record)

        # Both ingestion paths agree on the audit summary.
        binary_summary = analyze_tracebin(str(binary_path)).summary()
        jsonl_summary = analyze_jsonl(str(jsonl_path)).summary()
        assert json.dumps(binary_summary, sort_keys=True) == (
            json.dumps(jsonl_summary, sort_keys=True)
        )
        assert binary_summary["scheduler"]["grants"] == (
            counts["sched_grant"]
        )

"""Stats-registry parity of the fast kernel against the seed kernel.

Golden-trace equivalence already pins the raw ``SimulationResult``
fields bit-identical; this suite pins the *exported* view — the full
``.to_stats`` registry, scalars and vectors and latency moments alike —
so a refactor cannot silently diverge in the layer the audit pipeline
and reports actually consume.
"""

import math

import pytest

from repro.core.config import (
    VOQ_SCHEMES,
    AllocationPolicy,
    ArbitrationScheme,
    HiRiseConfig,
)
from repro.core.hirise import HiRiseSwitch
from repro.core.reference import ReferenceHiRiseSwitch
from repro.network.engine import Simulation
from repro.obs import StatsRegistry
from repro.traffic import UniformRandomTraffic

FAILED_CHANNEL_CONFIGS = {
    "healthy": frozenset(),
    "failed-channels": frozenset({(0, 1, 0), (2, 3, 1), (3, 0, 0)}),
}


def stats_dict(switch_class, scheme, allocation, failed_channels):
    config = HiRiseConfig(
        radix=16,
        layers=4,
        channel_multiplicity=2,
        arbitration=scheme,
        allocation=allocation,
        failed_channels=failed_channels,
    )
    switch = switch_class(config)
    traffic = UniformRandomTraffic(16, load=0.9, seed=11)
    result = Simulation(switch, traffic, warmup_cycles=40).run(
        measure_cycles=300, drain=True
    )
    registry = StatsRegistry()
    result.to_stats(registry, num_ports=16)
    return registry.to_dict()


def assert_equal_registries(reference, fast):
    assert reference.keys() == fast.keys()
    for name, ref_value in reference.items():
        fast_value = fast[name]
        if isinstance(ref_value, dict):  # distribution leaves
            assert ref_value.keys() == fast_value.keys(), name
            for leaf, leaf_value in ref_value.items():
                if isinstance(leaf_value, float) and math.isnan(leaf_value):
                    assert math.isnan(fast_value[leaf]), f"{name}.{leaf}"
                else:
                    assert fast_value[leaf] == leaf_value, f"{name}.{leaf}"
        else:
            assert fast_value == ref_value, name


# VOQ schemes (iSLIP/MWM) run on a single kernel with no reference
# twin, so fast-vs-reference parity does not apply to them.
HIRISE_SCHEMES = [s for s in ArbitrationScheme if s not in VOQ_SCHEMES]


@pytest.mark.parametrize("scheme", HIRISE_SCHEMES, ids=lambda s: s.value)
@pytest.mark.parametrize(
    "failed_channels",
    list(FAILED_CHANNEL_CONFIGS.values()),
    ids=list(FAILED_CHANNEL_CONFIGS),
)
def test_stats_parity_across_schemes(scheme, failed_channels):
    reference = stats_dict(
        ReferenceHiRiseSwitch, scheme, AllocationPolicy.INPUT_BINNED,
        failed_channels,
    )
    fast = stats_dict(
        HiRiseSwitch, scheme, AllocationPolicy.INPUT_BINNED,
        failed_channels,
    )
    assert_equal_registries(reference, fast)


@pytest.mark.parametrize(
    "allocation", list(AllocationPolicy), ids=lambda a: a.value
)
def test_stats_parity_across_allocations(allocation):
    reference = stats_dict(
        ReferenceHiRiseSwitch, ArbitrationScheme.CLRG, allocation,
        frozenset(),
    )
    fast = stats_dict(
        HiRiseSwitch, ArbitrationScheme.CLRG, allocation, frozenset(),
    )
    assert_equal_registries(reference, fast)

"""Tests of the self-profiling counters and the cross-run perf ledger."""

import json
import pickle

import pytest

from repro.core.config import HiRiseConfig
from repro.obs.perf import (
    DEFAULT_STRIDE,
    LEDGER_FORMAT,
    PerfCounters,
    PerfCountersFactory,
    append_ledger_entry,
    compare_perf,
    config_fingerprint,
    filter_entries,
    host_info,
    make_ledger_entry,
    metric_direction,
    read_ledger,
    run_micro_benchmark,
)

CONFIG = HiRiseConfig(radix=8, layers=2, channel_multiplicity=2)


def entry_with(metrics, config=CONFIG, workload="w"):
    return make_ledger_entry(config, workload, metrics)


class TestPerfCounters:
    def test_add_accumulates_time_and_ops(self):
        perf = PerfCounters(stride=4)
        perf.add("transmit", 100, ops=3)
        perf.add("transmit", 50)
        perf.add("arbitrate", 150, ops=2)
        assert perf.time_ns == {"transmit": 150, "arbitrate": 150}
        assert perf.ops == {"transmit": 3, "arbitrate": 2}
        assert perf.sampled_ns == 300
        fractions = perf.phase_fractions()
        assert fractions["transmit"] == pytest.approx(0.5)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_phase_order_is_canonical_then_extras(self):
        perf = PerfCounters()
        perf.add("zzz_custom", 1)
        perf.add("arbitrate", 1)
        perf.add("inject", 1)
        assert list(perf.phase_fractions()) == [
            "inject", "arbitrate", "zzz_custom"
        ]

    def test_empty_counters_have_no_fractions(self):
        assert PerfCounters().phase_fractions() == {}

    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            PerfCounters(stride=0)
        with pytest.raises(ValueError):
            PerfCountersFactory(stride=-1)

    def test_bind_records_kernel_identity(self):
        class FakeFleet:
            num_lanes = 8

        perf = PerfCounters()
        perf.bind(FakeFleet())
        assert perf.kernel == "FakeFleet"
        assert perf.lanes == 8

    def test_summary_is_json_serialisable(self):
        perf = PerfCounters(stride=2)
        perf.add("transmit", 10, ops=1)
        perf.cycles_total = 8
        perf.cycles_sampled = 4
        summary = json.loads(json.dumps(perf.summary()))
        assert summary["stride"] == 2
        assert summary["cycles_sampled"] == 4
        assert summary["time_ns"] == {"transmit": 10}

    def test_to_stats_exports_per_phase_scalars(self):
        from repro.obs import StatsRegistry, validate_prometheus

        perf = PerfCounters(stride=3)
        perf.add("transmit", 75, ops=5)
        perf.add("arbitrate", 25)
        registry = StatsRegistry()
        perf.to_stats(registry)
        assert registry.get("perf.stride") == 3
        assert registry.get("perf.transmit.time_ns") == 75
        assert registry.get("perf.transmit.ops") == 5
        assert registry.get("perf.transmit.frac") == pytest.approx(0.75)
        assert registry.get("perf.arbitrate.ops") == 0
        assert validate_prometheus(registry.to_prometheus()) > 0

    def test_factory_eq_hash_and_pickle(self):
        factory = PerfCountersFactory(stride=8)
        assert factory == PerfCountersFactory(stride=8)
        assert factory != PerfCountersFactory(stride=4)
        assert hash(factory) == hash(PerfCountersFactory(stride=8))
        assert factory.fleet_capable is True
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory
        assert clone().stride == 8


class TestConfigFingerprint:
    def test_equal_configs_fingerprint_identically(self):
        assert config_fingerprint(CONFIG) == config_fingerprint(
            HiRiseConfig(radix=8, layers=2, channel_multiplicity=2)
        )

    def test_failed_channel_order_is_normalised(self):
        first = HiRiseConfig(
            radix=8, layers=2, channel_multiplicity=2,
            failed_channels=[(0, 1, 0), (1, 0, 1)],
        )
        second = HiRiseConfig(
            radix=8, layers=2, channel_multiplicity=2,
            failed_channels=[(1, 0, 1), (0, 1, 0)],
        )
        assert config_fingerprint(first) == config_fingerprint(second)

    def test_architectural_changes_change_the_fingerprint(self):
        other = HiRiseConfig(radix=16, layers=2, channel_multiplicity=2)
        assert config_fingerprint(CONFIG) != config_fingerprint(other)

    def test_host_info_is_json_serialisable(self):
        info = json.loads(json.dumps(host_info()))
        assert "platform" in info and "python" in info


class TestLedger:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "perf.jsonl"
        first = entry_with({"cycles_per_sec": 100.0})
        second = entry_with({"cycles_per_sec": 120.0})
        append_ledger_entry(path, first)
        append_ledger_entry(path, second)
        entries = read_ledger(path)
        assert entries == [first, second]
        assert all(e["format"] == LEDGER_FORMAT for e in entries)

    def test_missing_file_reads_as_empty_history(self, tmp_path):
        assert read_ledger(tmp_path / "absent.jsonl") == []

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "perf.jsonl"
        entry = entry_with({"cycles_per_sec": 100.0})
        append_ledger_entry(path, entry)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"format": "repro.perf/v1", "metr')  # crash mid-append
        assert read_ledger(path) == [entry]

    def test_wrong_format_line_raises(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"format": "repro.telemetry/v1"}\n')
        with pytest.raises(ValueError, match="not a repro.perf/v1"):
            read_ledger(path)

    def test_append_refuses_foreign_entries(self, tmp_path):
        with pytest.raises(ValueError, match="refusing to append"):
            append_ledger_entry(tmp_path / "x.jsonl", {"format": "nope"})

    def test_entry_requires_workload_label(self):
        with pytest.raises(ValueError, match="workload"):
            make_ledger_entry(CONFIG, "", {"cycles_per_sec": 1.0})

    def test_filter_by_fingerprint_and_workload(self):
        other_config = HiRiseConfig(radix=16, layers=2,
                                    channel_multiplicity=2)
        entries = [
            entry_with({"a": 1.0}, workload="w1"),
            entry_with({"a": 2.0}, workload="w2"),
            entry_with({"a": 3.0}, config=other_config, workload="w1"),
        ]
        fp = config_fingerprint(CONFIG)
        assert filter_entries(entries, fp) == entries[:2]
        assert filter_entries(entries, fp, "w1") == entries[:1]
        assert filter_entries(entries, workload="w1") == [
            entries[0], entries[2]
        ]


class TestComparePerf:
    def test_throughput_drop_is_a_regression(self):
        regressions = compare_perf(
            entry_with({"cycles_per_sec": 50.0}),
            entry_with({"cycles_per_sec": 100.0}),
            rel_tol=0.2,
        )
        assert len(regressions) == 1
        assert regressions[0].metric == "cycles_per_sec"
        assert "dropped" in str(regressions[0])

    def test_throughput_rise_is_not_a_regression(self):
        assert compare_perf(
            entry_with({"cycles_per_sec": 200.0}),
            entry_with({"cycles_per_sec": 100.0}),
        ) == []

    def test_within_tolerance_passes(self):
        assert compare_perf(
            entry_with({"cycles_per_sec": 90.0}),
            entry_with({"cycles_per_sec": 100.0}),
            rel_tol=0.2,
        ) == []

    def test_overhead_rise_is_a_regression(self):
        regressions = compare_perf(
            entry_with({"perf_on_overhead_frac": 0.10}),
            entry_with({"perf_on_overhead_frac": 0.02}),
            rel_tol=0.5,
        )
        assert len(regressions) == 1
        assert "rose" in str(regressions[0])

    def test_directionless_metrics_are_skipped(self):
        assert metric_direction("calibration_ops_per_sec") == 0
        assert metric_direction("some_unknown_count") == 0
        assert compare_perf(
            entry_with({"calibration_ops_per_sec": 1.0}),
            entry_with({"calibration_ops_per_sec": 100.0}),
        ) == []

    def test_suffix_heuristic_directions(self):
        assert metric_direction("aggregate_lane_cycles_per_sec") == 1
        assert metric_direction("fleet_speedup") == 1
        assert metric_direction("drain_seconds") == -1
        assert metric_direction("custom_overhead_frac") == -1

    def test_fingerprint_mismatch_refuses(self):
        other = HiRiseConfig(radix=16, layers=2, channel_multiplicity=2)
        with pytest.raises(ValueError, match="refusing to compare"):
            compare_perf(
                entry_with({"cycles_per_sec": 1.0}),
                entry_with({"cycles_per_sec": 1.0}, config=other),
            )

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_perf(entry_with({}), entry_with({}), rel_tol=-0.1)

    def test_non_finite_values_are_skipped(self):
        assert compare_perf(
            entry_with({"cycles_per_sec": float("nan")}),
            entry_with({"cycles_per_sec": 100.0}),
        ) == []


class TestMicroBenchmark:
    def test_smoke_returns_ledger_ready_metrics(self):
        metrics, details = run_micro_benchmark(CONFIG, cycles=40, trials=1)
        assert metrics["cycles_per_sec"] > 0
        assert metrics["normalized"] > 0
        assert metrics["calibration_ops_per_sec"] > 0
        assert details["cycles"] == 40
        entry = make_ledger_entry(CONFIG, "test", metrics)
        assert entry["fingerprint"] == config_fingerprint(CONFIG)

    def test_profiled_run_populates_phase_counters(self):
        perf = PerfCounters(stride=4)
        run_micro_benchmark(CONFIG, cycles=40, trials=1, perf=perf)
        assert perf.cycles_total == 40
        assert perf.cycles_sampled == 10
        assert {"transmit", "refill", "arbitrate", "commit"} <= set(
            perf.time_ns
        )
        assert perf.time_ns.get("inject", 0) > 0

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            run_micro_benchmark(CONFIG, cycles=0)
        with pytest.raises(ValueError):
            run_micro_benchmark(CONFIG, trials=0)


class TestPerfCli:
    """Exit-code contract of ``python -m repro perf``."""

    ARGS = ["--radix", "8", "--layers", "2", "--channels", "2",
            "--cycles", "40", "--trials", "1"]

    def run_cli(self, *extra):
        from repro.__main__ import main

        return main(["perf", *self.ARGS, *extra])

    def test_record_then_self_comparison_exits_zero(self, tmp_path, capsys):
        ledger = str(tmp_path / "perf.jsonl")
        assert self.run_cli("--record", "--ledger", ledger) == 0
        assert self.run_cli(
            "--record", "--ledger", ledger, "--against", ledger,
            "--rel-tol", "0.9",
        ) == 0
        assert len(read_ledger(ledger)) == 2
        out = capsys.readouterr().out
        assert "no perf regressions" in out

    def test_synthetic_regression_exits_one(self, tmp_path, capsys):
        ledger = str(tmp_path / "perf.jsonl")
        assert self.run_cli("--record", "--ledger", ledger) == 0
        entries = read_ledger(ledger)
        degraded = json.loads(json.dumps(entries[-1]))
        degraded["metrics"]["cycles_per_sec"] /= 100
        degraded["metrics"]["normalized"] /= 100
        append_ledger_entry(ledger, degraded)
        assert self.run_cli(
            "--ledger", ledger, "--against", ledger, "--rel-tol", "0.5",
        ) == 1
        assert "regression" in capsys.readouterr().err

    def test_missing_history_exits_two(self, tmp_path, capsys):
        assert self.run_cli(
            "--ledger", str(tmp_path / "absent.jsonl")
        ) == 2
        assert "no entries" in capsys.readouterr().err

    def test_no_record_and_no_ledger_exits_two(self):
        assert self.run_cli() == 2

    def test_non_hirise_design_exits_two(self):
        from repro.__main__ import main

        assert main(["perf", "--design", "2d", "--record"]) == 2

    def test_history_and_phases_render(self, tmp_path, capsys):
        ledger = str(tmp_path / "perf.jsonl")
        assert self.run_cli("--record", "--ledger", ledger) == 0
        capsys.readouterr()
        assert self.run_cli(
            "--ledger", ledger, "--history", "5", "--phases",
            "--stride", "4",
        ) == 0
        out = capsys.readouterr().out
        assert "history (1 of 1" in out
        assert "phase breakdown" in out
        assert "arbitrate" in out

"""Tests of point-in-time switch telemetry snapshots."""

import json

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.core.reference import ReferenceHiRiseSwitch
from repro.network.engine import Simulation
from repro.obs import render_snapshot, telemetry_snapshot
from repro.switches import SwizzleSwitch2D
from repro.traffic import TraceTraffic, UniformRandomTraffic


def load_up(switch, cycles=60, load=0.9, seed=3):
    traffic = UniformRandomTraffic(switch.num_ports, load=load, seed=seed)
    simulation = Simulation(switch, traffic, warmup_cycles=0)
    simulation.run(measure_cycles=cycles, drain=False)
    return switch


class TestSnapshotContents:
    def test_fast_kernel_names_busy_resources(self):
        config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=1)
        switch = load_up(HiRiseSwitch(config))
        snapshot = telemetry_snapshot(switch)
        assert snapshot["occupancy"] == switch.occupancy()
        assert snapshot["occupied_ports"] == len(snapshot["ports"])
        for entry in snapshot["busy_resources"]:
            # Flat integer rids resolve to human-readable tuple keys.
            assert entry["resource"][0] in ("int", "ch")
            assert entry["granted_cycle"] >= 0
        for entry in snapshot["ports"]:
            assert entry["flits"] > 0

    def test_reference_kernel_reports_tuple_keys(self):
        config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=1)
        switch = load_up(ReferenceHiRiseSwitch(config))
        snapshot = telemetry_snapshot(switch)
        for entry in snapshot["busy_resources"]:
            assert entry["resource"][0] in ("int", "ch")

    def test_plain_switch_reports_occupancy_only(self):
        switch = SwizzleSwitch2D(4)
        switch.inject(TraceTraffic([(0, 1, 2)], packet_flits=3)
                      .factory.create(1, 2, 0))
        snapshot = telemetry_snapshot(switch)
        assert snapshot["occupancy"] == 3
        assert snapshot["ports"] == [{"port": 1, "flits": 3}]
        assert "busy_resources" not in snapshot

    def test_max_ports_caps_listing_not_count(self):
        config = HiRiseConfig(radix=16, layers=4, channel_multiplicity=2)
        switch = load_up(HiRiseSwitch(config), load=1.0)
        full = telemetry_snapshot(switch)
        capped = telemetry_snapshot(switch, max_ports=2)
        assert capped["occupied_ports"] == full["occupied_ports"]
        assert len(capped["ports"]) <= 2
        assert capped["ports"] == full["ports"][:len(capped["ports"])]

    def test_rendered_snapshot_is_compact_json(self):
        switch = load_up(
            HiRiseSwitch(HiRiseConfig(radix=8, layers=2,
                                      channel_multiplicity=1))
        )
        rendered = render_snapshot(telemetry_snapshot(switch))
        assert "\n" not in rendered and ": " not in rendered
        assert json.loads(rendered)["occupancy"] == switch.occupancy()

"""Binary columnar tracing: capture parity, round-trips, torn files.

The contract under test, per layer:

* **capture** — a ``BinaryTracer`` on the fast kernel records exactly
  the event stream a ``SwitchTracer`` records, and attaching either
  changes nothing about the simulation results (traced == untraced,
  bit for bit); fast and reference kernels emit identical binary
  streams;
* **round-trips** — every event kind survives binary -> file ->
  columns -> JSONL and back, including the rare kinds (fault_repair,
  invariant) no saturation run produces;
* **files** — ``repro.trace_bin/v1`` readers tolerate torn/truncated
  tails (crash during a run) and reject garbage;
* **analysis** — the audit summary is identical whether the analyzer
  ingests the JSONL view or the binary columns, with or without numpy.
"""

import json

import pytest

from repro.core.config import HiRiseConfig
from repro.core.hirise import HiRiseSwitch
from repro.core.reference import ReferenceHiRiseSwitch
from repro.network.engine import Simulation
from repro.obs.analyze import analyze_jsonl, analyze_tracer
from repro.obs.trace import (
    EVENT_FIELDS,
    EVENT_NAMES,
    SwitchTracer,
    validate_chrome_path,
    validate_jsonl_path,
)
from repro.obs.tracebin import (
    BinaryTracer,
    BinaryTracerFactory,
    FleetTracer,
    read_tracebin,
    sniff_tracebin,
)
from repro.traffic import HotspotTraffic, UniformRandomTraffic

np = pytest.importorskip("numpy")


def small_config(**overrides):
    defaults = dict(radix=16, layers=4, channel_multiplicity=2)
    defaults.update(overrides)
    return HiRiseConfig(**defaults)


def run_switch(switch, cycles=300, warmup=40, load=0.3, seed=9):
    traffic = UniformRandomTraffic(
        switch.num_ports, load=load, seed=seed
    )
    return Simulation(switch, traffic, warmup_cycles=warmup).run(
        measure_cycles=cycles
    )


def result_fields(result):
    return (
        result.packets_injected, result.packets_ejected,
        result.flits_ejected, result.cycles, result.packet_latencies,
        result.per_input_ejected, result.per_input_latency_sum,
        result.per_output_ejected,
    )


# ---------------------------------------------------------------------------
# Capture parity
# ---------------------------------------------------------------------------
class TestCaptureParity:
    @pytest.mark.parametrize("arbitration", ["clrg", "l2l_lrg", "age"])
    def test_binary_stream_equals_switch_tracer_stream(self, arbitration):
        config = small_config(arbitration=arbitration)
        binary = BinaryTracer(capacity=None)
        rows = SwitchTracer(capacity=None)
        run_switch(HiRiseSwitch(config, tracer=binary))
        run_switch(HiRiseSwitch(config, tracer=rows))
        assert binary.events == rows.events
        assert binary.counts_by_kind() == rows.counts_by_kind()

    def test_traced_run_bit_identical_to_untraced(self):
        config = small_config()
        untraced = run_switch(HiRiseSwitch(config))
        traced = run_switch(
            HiRiseSwitch(config, tracer=BinaryTracer(capacity=None))
        )
        assert result_fields(traced) == result_fields(untraced)

    @pytest.mark.parametrize("allocation", ["input_binned", "priority"])
    def test_fast_and_reference_kernels_emit_identical_streams(
        self, allocation
    ):
        config = small_config(allocation=allocation)
        fast = BinaryTracer(capacity=None)
        reference = BinaryTracer(capacity=None)
        fast_result = run_switch(
            HiRiseSwitch(config, tracer=fast), cycles=150
        )
        ref_result = run_switch(
            ReferenceHiRiseSwitch(config, tracer=reference), cycles=150
        )
        assert result_fields(fast_result) == result_fields(ref_result)
        assert fast.events == reference.events

    def test_jsonl_and_chrome_views_match_switch_tracer(self, tmp_path):
        config = small_config()
        binary = BinaryTracer(capacity=None)
        rows = SwitchTracer(capacity=None)
        run_switch(HiRiseSwitch(config, tracer=binary), cycles=120)
        run_switch(HiRiseSwitch(config, tracer=rows), cycles=120)
        bin_jsonl = tmp_path / "bin.jsonl"
        row_jsonl = tmp_path / "row.jsonl"
        binary.write_jsonl(str(bin_jsonl))
        rows.write_jsonl(str(row_jsonl))
        assert bin_jsonl.read_text() == row_jsonl.read_text()
        validate_jsonl_path(str(bin_jsonl))
        bin_chrome = tmp_path / "bin.json"
        binary.write_chrome(str(bin_chrome))
        validate_chrome_path(str(bin_chrome))


# ---------------------------------------------------------------------------
# Every event kind round-trips (including kinds no simulation emits here)
# ---------------------------------------------------------------------------
def all_kinds_tracer():
    """One event of every kind, hand-emitted like the kernels do."""
    tracer = BinaryTracer(capacity=None)
    tracer.bind(HiRiseSwitch(small_config()))
    tracer.inject(0, 1, 2, 4, 77)             # inject
    for kind in range(len(EVENT_NAMES)):
        if EVENT_NAMES[kind] == "inject":
            continue
        tracer.cycle = kind + 1
        payload = tuple(range(3, 3 + len(EVENT_FIELDS[kind])))
        tracer.emit(kind, *payload)
    return tracer


class TestRoundTrips:
    def test_all_twelve_kinds_survive_file_round_trip(self, tmp_path):
        tracer = all_kinds_tracer()
        assert len(tracer.events) == len(EVENT_NAMES)
        path = tmp_path / "kinds.tracebin"
        tracer.save(str(path))
        assert sniff_tracebin(str(path))
        columns = read_tracebin(str(path))
        assert list(columns.iter_events()) == tracer.events
        assert columns.meta["radix"] == 16
        assert not columns.truncated

    def test_all_kinds_survive_jsonl_round_trip(self, tmp_path):
        from repro.obs.analyze import iter_jsonl

        tracer = all_kinds_tracer()
        path = tmp_path / "kinds.jsonl"
        tracer.write_jsonl(str(path))
        records = list(iter_jsonl(str(path)))
        assert records[0]["event"] == "meta"
        names = [record["event"] for record in records[1:]]
        assert sorted(names) == sorted(EVENT_NAMES.values())
        # Rare kinds explicitly: fault_repair (10) and invariant (11).
        assert "fault_repair" in names and "invariant" in names
        by_name = {record["event"]: record for record in records[1:]}
        repair = by_name["fault_repair"]
        assert [repair[f] for f in EVENT_FIELDS[10]] == [3, 4]
        check = by_name["invariant"]
        assert [check[f] for f in EVENT_FIELDS[11]] == [3, 4, 5]

    def test_fault_and_invariant_kinds_from_a_real_run(self, tmp_path):
        from repro.faults import (
            FaultSchedule, fail_channel, fail_input, repair_channel,
            repair_input,
        )

        schedule = FaultSchedule([
            fail_channel(3, 0, 1, 0), fail_input(5, 2),
            repair_channel(12, 0, 1, 0), repair_input(14, 2),
        ])
        tracer = BinaryTracer(capacity=None)
        switch = HiRiseSwitch(
            small_config(), tracer=tracer, faults=schedule
        )
        run_switch(switch, cycles=60, warmup=0)
        counts = tracer.counts_by_kind()
        assert counts["fault_inject"] == 2
        assert counts["fault_repair"] == 2
        path = tmp_path / "faults.tracebin"
        tracer.save(str(path))
        columns = read_tracebin(str(path))
        assert list(columns.iter_events()) == tracer.events


# ---------------------------------------------------------------------------
# Decimation and spill
# ---------------------------------------------------------------------------
class TestDecimation:
    def test_stride_doubles_and_keeps_counter_multiples(self):
        tracer = BinaryTracer(capacity=8)
        tracer.bind(HiRiseSwitch(small_config()))
        for index in range(40):
            tracer.cycle = index
            tracer.emit(2, index, 0, 0, 0)
        tracer.drain()
        assert tracer.stride == 8
        assert tracer.dropped == 40 - len(tracer.events)
        # Retained events are exactly the stride-multiples of the
        # original sequence, so parity survives decimation.
        assert [event[2] for event in tracer.events] == list(
            range(0, 40, 8)
        )

    def test_decimated_capture_matches_switch_tracer_semantics(self):
        config = small_config()
        binary = BinaryTracer(capacity=256)
        run_switch(HiRiseSwitch(config, tracer=binary), cycles=200)
        full = BinaryTracer(capacity=None)
        run_switch(HiRiseSwitch(config, tracer=full), cycles=200)
        stride = binary.stride
        assert stride > 1
        assert binary.events == full.events[::stride]
        assert binary.dropped == len(full.events) - len(binary.events)

    def test_spill_path_keeps_full_fidelity(self, tmp_path):
        path = tmp_path / "spill.tracebin"
        spilling = BinaryTracer(capacity=512, spill_path=str(path))
        config = small_config()
        run_switch(HiRiseSwitch(config, tracer=spilling), cycles=200)
        spilling.save(str(path))
        full = BinaryTracer(capacity=None)
        run_switch(HiRiseSwitch(config, tracer=full), cycles=200)
        columns = read_tracebin(str(path))
        assert list(columns.iter_events()) == full.events
        assert columns.stride == 1


# ---------------------------------------------------------------------------
# Torn and invalid files
# ---------------------------------------------------------------------------
class TestTornFiles:
    @pytest.fixture()
    def saved(self, tmp_path):
        tracer = BinaryTracer(capacity=None)
        run_switch(HiRiseSwitch(small_config(), tracer=tracer), cycles=120)
        path = tmp_path / "whole.tracebin"
        tracer.save(str(path))
        return path, tracer

    def test_torn_tail_recovers_complete_segments(self, tmp_path):
        # A spilling tracer writes many segments; tearing the file
        # mid-segment must recover every complete segment before it.
        path = tmp_path / "spill.tracebin"
        tracer = BinaryTracer(capacity=512, spill_path=str(path))
        tracer.drain_interval = 50  # drain often -> many small segments
        run_switch(HiRiseSwitch(small_config(), tracer=tracer), cycles=120)
        tracer.save(str(path))
        blob = path.read_bytes()
        assert blob.count(b"SGMT") > 2
        full = list(read_tracebin(str(path)).iter_events())
        torn = tmp_path / "torn.tracebin"
        torn.write_bytes(blob[: len(blob) * 2 // 3])
        columns = read_tracebin(str(torn))
        assert columns.truncated
        events = list(columns.iter_events())
        assert 0 < len(events) < len(full)
        assert events == full[: len(events)]

    def test_torn_single_segment_recovers_empty(self, saved, tmp_path):
        path, tracer = saved
        blob = path.read_bytes()
        torn = tmp_path / "torn.tracebin"
        torn.write_bytes(blob[: len(blob) * 2 // 3])
        columns = read_tracebin(str(torn))
        assert columns.truncated
        assert len(columns) == 0
        assert columns.meta["radix"] == 16  # header still intact

    def test_strict_mode_rejects_torn_tail(self, saved, tmp_path):
        path, _ = saved
        blob = path.read_bytes()
        torn = tmp_path / "torn.tracebin"
        torn.write_bytes(blob[: len(blob) - 5])
        with pytest.raises(ValueError):
            read_tracebin(str(torn), strict=True)

    def test_garbage_and_short_files_rejected(self, tmp_path):
        bad = tmp_path / "bad.tracebin"
        bad.write_bytes(b"not a trace at all")
        assert not sniff_tracebin(str(bad))
        with pytest.raises(ValueError):
            read_tracebin(str(bad))
        tiny = tmp_path / "tiny.tracebin"
        tiny.write_bytes(b"RP")
        assert not sniff_tracebin(str(tiny))


# ---------------------------------------------------------------------------
# Analyzer equality: binary path == JSONL path
# ---------------------------------------------------------------------------
class TestAnalyzerEquality:
    @pytest.fixture(scope="class")
    def golden(self, tmp_path_factory):
        """A hotspot run with real contention, in all trace forms."""
        root = tmp_path_factory.mktemp("golden")
        tracer = BinaryTracer(capacity=None)
        switch = HiRiseSwitch(small_config(), tracer=tracer)
        traffic = HotspotTraffic(16, load=0.1, hotspot_output=3, seed=4)
        Simulation(switch, traffic, warmup_cycles=100).run(
            measure_cycles=800
        )
        jsonl = root / "golden.jsonl"
        binary = root / "golden.tracebin"
        tracer.write_jsonl(str(jsonl))
        tracer.save(str(binary))
        return tracer, jsonl, binary

    def test_binary_and_jsonl_summaries_identical(self, golden):
        from repro.obs.analyze import analyze_tracebin

        tracer, jsonl, binary = golden
        from_jsonl = analyze_jsonl(str(jsonl)).summary()
        from_binary = analyze_tracebin(str(binary)).summary()
        from_tracer = analyze_tracer(tracer).summary()
        assert json.dumps(from_binary, sort_keys=True) == json.dumps(
            from_jsonl, sort_keys=True
        )
        assert json.dumps(from_tracer, sort_keys=True) == json.dumps(
            from_jsonl, sort_keys=True
        )

    def test_pure_python_columnar_path_identical(self, golden, monkeypatch):
        import repro.obs.analyze as analyze_module

        _, jsonl, binary = golden
        expected = analyze_jsonl(str(jsonl)).summary()
        monkeypatch.setattr(analyze_module, "_np", None)
        fallback = analyze_module.analyze_tracebin(str(binary)).summary()
        assert json.dumps(fallback, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )


# ---------------------------------------------------------------------------
# Factory and validation
# ---------------------------------------------------------------------------
class TestFactory:
    def test_factory_is_fleet_capable_and_comparable(self):
        factory = BinaryTracerFactory(capacity=1024)
        assert factory.fleet_capable
        assert factory == BinaryTracerFactory(capacity=1024)
        assert factory != BinaryTracerFactory(capacity=2048)
        assert hash(factory) == hash(BinaryTracerFactory(capacity=1024))
        tracer = factory()
        assert isinstance(tracer, BinaryTracer)
        assert tracer.capacity == 1024

    def test_factory_pickles(self):
        import pickle

        factory = BinaryTracerFactory(capacity=64)
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory

    def test_invalid_capacities_rejected(self):
        with pytest.raises(ValueError):
            BinaryTracer(capacity=0)
        with pytest.raises(ValueError):
            FleetTracer(2, capacity=0)
        with pytest.raises(ValueError):
            FleetTracer(0)

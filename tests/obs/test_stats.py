"""Tests of the gem5-style statistics registry and its exporters."""

import math

import pytest

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.core.reference import ReferenceHiRiseSwitch
from repro.metrics import ProbedSwitch
from repro.network.engine import Simulation
from repro.obs import (
    StatsRegistry,
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
    validate_prometheus,
)
from repro.traffic import UniformRandomTraffic


class TestRegistryBasics:
    def test_scalar_vector_distribution_roundtrip(self):
        registry = StatsRegistry()
        registry.scalar("sim.cycles", "cycles simulated").set(100)
        vector = registry.vector("sim.per_port", 4)
        vector.add(2, 5)
        dist = registry.distribution("sim.latency")
        dist.add_samples([2, 4, 6])
        assert registry.get("sim.cycles") == 100
        assert registry["sim.per_port"].value() == [0, 0, 5, 0]
        assert registry["sim.latency"].mean == pytest.approx(4.0)
        assert registry["sim.latency"].value()["min"] == 2
        assert registry.names() == ["sim.cycles", "sim.per_port", "sim.latency"]

    def test_formula_evaluates_at_dump_time(self):
        registry = StatsRegistry()
        packets = registry.scalar("sim.packets").set(10)
        registry.scalar("sim.cycles").set(100)
        registry.formula(
            "sim.throughput",
            lambda r: r.get("sim.packets") / r.get("sim.cycles"),
        )
        assert registry.get("sim.throughput") == pytest.approx(0.1)
        packets.set(50)  # formulas see the live value
        assert registry.get("sim.throughput") == pytest.approx(0.5)

    def test_duplicate_names_rejected(self):
        registry = StatsRegistry()
        registry.scalar("a.b")
        with pytest.raises(ValueError, match="already registered"):
            registry.distribution("a.b")

    def test_distribution_merge_moments_matches_samples(self):
        samples = [3, 1, 4, 1, 5, 9, 2, 6]
        streamed = StatsRegistry().distribution("x")
        streamed.merge_moments(
            count=len(samples),
            total=sum(samples),
            sumsq=sum(s * s for s in samples),
            minimum=min(samples),
            maximum=max(samples),
        )
        replayed = StatsRegistry().distribution("x")
        replayed.add_samples(samples)
        assert streamed.value() == pytest.approx(replayed.value())

    def test_empty_distribution_is_nan_not_crash(self):
        dist = StatsRegistry().distribution("empty")
        assert math.isnan(dist.mean)
        assert math.isnan(dist.value()["min"])

    def test_dump_and_to_dict_agree(self):
        registry = StatsRegistry()
        registry.scalar("sim.cycles", "cycles").set(7)
        registry.vector("sim.v", 2).load([1, 2])
        text = registry.dump()
        assert "sim.cycles" in text and "# cycles" in text
        assert "sim.v[1]" in text and "sim.v.total" in text
        flat = registry.to_dict()
        assert flat["sim.cycles"] == 7
        assert flat["sim.v"] == [1, 2]


def run_probed(switch, cycles=300):
    probe = ProbedSwitch(switch)
    traffic = UniformRandomTraffic(switch.num_ports, load=0.6, seed=7)
    result = Simulation(probe, traffic, warmup_cycles=0).run(
        cycles, drain=True
    )
    return probe, result


class TestExporters:
    def test_simulation_result_to_stats(self):
        config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=1)
        _probe, result = run_probed(HiRiseSwitch(config))
        registry = StatsRegistry()
        result.to_stats(registry, num_ports=8)
        assert registry.get("sim.packets_ejected") == result.packets_ejected
        assert registry.get("sim.throughput_packets_per_cycle") == (
            pytest.approx(result.throughput_packets_per_cycle)
        )
        assert registry["sim.latency"].count == result.latency_count
        assert registry["sim.latency"].mean == (
            pytest.approx(result.avg_latency_cycles)
        )
        assert registry["sim.per_output_ejected"].total() == (
            result.packets_ejected
        )

    def test_probed_fast_kernel_to_stats(self):
        config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=2)
        probe, _result = run_probed(HiRiseSwitch(config))
        registry = StatsRegistry()
        probe.to_stats(registry)
        assert registry.get("switch.cycles_observed") == probe.cycles_observed
        names = registry.names()
        assert any(".l2lc" in name for name in names)
        assert any(".int" in name for name in names)
        for name in names:
            if name.endswith("busy_frac") and ".layer" in name:
                assert 0.0 <= registry.get(name) <= 1.0
        for fraction in registry["switch.output_busy_frac"].value():
            assert 0.0 <= fraction <= 1.0

    def test_probed_reference_kernel_matches_fast(self):
        # The probe reads busy resources through different interfaces on
        # the two kernels (busy_resources() vs the resource_owner dict);
        # the exported stats must not care which kernel ran.
        config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=2)
        fast_probe, fast_result = run_probed(HiRiseSwitch(config))
        ref_probe, ref_result = run_probed(ReferenceHiRiseSwitch(config))
        assert fast_result.packet_latencies == ref_result.packet_latencies
        fast_registry, ref_registry = StatsRegistry(), StatsRegistry()
        fast_probe.to_stats(fast_registry)
        ref_probe.to_stats(ref_registry)
        assert fast_registry.to_dict() == ref_registry.to_dict()

    def test_one_registry_holds_every_surface(self):
        config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=1)
        probe, result = run_probed(HiRiseSwitch(config))
        registry = StatsRegistry()
        result.to_stats(registry, num_ports=8)
        probe.to_stats(registry)
        text = registry.dump()
        assert text.splitlines()[0].startswith("---------- Begin")
        assert "sim.latency.mean" in text
        assert "switch.flits_out_by_port.total" in text


class TestPrometheus:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("sim.latency.p99", "repro") == (
            "repro_sim_latency_p99"
        )
        assert sanitize_metric_name("a..b--c") == "a_b_c"
        assert sanitize_metric_name("99th") == "_99th"
        assert sanitize_metric_name("...") == "metric"

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_every_stat_kind_renders_and_validates(self):
        registry = StatsRegistry()
        registry.scalar("sim.cycles", "cycles simulated").set(100)
        registry.vector("sim.per_port", 3, "per-port grants").load([1, 2, 3])
        registry.distribution("sim.latency", "latency").add_samples([2, 4, 9])
        registry.formula(
            "sim.rate", lambda r: r.get("sim.cycles") / 10.0, "rate"
        )
        text = registry.to_prometheus()
        assert "# TYPE repro_sim_cycles gauge" in text
        assert 'repro_sim_per_port{index="1"} 2' in text
        assert "# TYPE repro_sim_latency summary" in text
        assert "repro_sim_latency_sum 15.0" in text
        assert "repro_sim_latency_count 3" in text
        assert "repro_sim_latency_min 2" in text
        assert "repro_sim_rate 10.0" in text
        # scalar + 3 vector + sum/count + min/max + formula
        assert validate_prometheus(text) == 9

    def test_nan_and_inf_spellings(self):
        registry = StatsRegistry()
        registry.scalar("a").set(float("nan"))
        registry.scalar("b").set(float("inf"))
        registry.scalar("c").set(float("-inf"))
        text = render_prometheus(registry, namespace="")
        assert "a NaN" in text and "b +Inf" in text and "c -Inf" in text
        assert validate_prometheus(text) == 3

    def test_colliding_sanitized_names_stay_unique(self):
        registry = StatsRegistry()
        registry.scalar("a.b").set(1)
        registry.scalar("a__b").set(2)
        text = render_prometheus(registry, namespace="")
        # Duplicate families are what scrapers reject; the validator
        # must accept the suffixed rendering.
        assert validate_prometheus(text) == 2
        assert "a_b 1" in text and "a_b_2 2" in text

    def test_help_escapes_newlines(self):
        registry = StatsRegistry()
        registry.scalar("x", "line one\nline two").set(1)
        text = render_prometheus(registry, namespace="")
        assert "# HELP x line one\\nline two" in text
        validate_prometheus(text)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(StatsRegistry()) == ""
        assert validate_prometheus("") == 0

    def test_validator_rejects_bad_text(self):
        with pytest.raises(ValueError, match="unparseable"):
            validate_prometheus("this is { not a sample\n")
        with pytest.raises(ValueError, match="bad sample value"):
            validate_prometheus("metric one\n")
        with pytest.raises(ValueError, match="duplicate TYPE"):
            validate_prometheus(
                "# TYPE m gauge\nm 1\n# TYPE m gauge\nm 2\n"
            )
        with pytest.raises(ValueError, match="bad TYPE"):
            validate_prometheus("# TYPE m sparkline\n")

    def test_probed_simulation_exposition_is_valid(self):
        # The full stats surface of a probed run must pass the format
        # gate: dotted names, per-port vectors, latency distributions.
        config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=2)
        probe, result = run_probed(HiRiseSwitch(config))
        registry = StatsRegistry()
        result.to_stats(registry, num_ports=8)
        probe.to_stats(registry)
        text = registry.to_prometheus()
        assert validate_prometheus(text) > 50

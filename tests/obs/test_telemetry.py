"""Tests of sweep/replication heartbeat telemetry."""

import json

import pytest

from repro.harness.sweep import parameter_grid, run_sweep
from repro.harness.parallel import replicate
from repro.obs import TELEMETRY_FORMAT, Heartbeat, SweepTelemetry


def measurement(seed, load=0.5, radix=8):
    # Cheap, deterministic stand-in for a simulation measurement.
    return load * radix + seed * 0.01


class TestSweepTelemetry:
    def test_one_heartbeat_per_task(self):
        telemetry = SweepTelemetry()
        grid = parameter_grid(load=[0.2, 0.4, 0.6])
        points = run_sweep(
            measurement, grid, replications=3, telemetry=telemetry
        )
        assert telemetry.total_tasks == 9
        assert telemetry.tasks_done == 9
        assert len(points) == 3
        seen = {
            (hb.parameters["load"], hb.seed) for hb in telemetry.heartbeats
        }
        assert len(seen) == 9

    def test_results_bit_identical_with_and_without_telemetry(self):
        grid = parameter_grid(load=[0.2, 0.6], radix=[8, 16])
        plain = run_sweep(measurement, grid, replications=2, base_seed=5)
        telemetered = run_sweep(
            measurement, grid, replications=2, base_seed=5,
            telemetry=SweepTelemetry(),
        )
        assert [(p.parameters, p.value) for p in plain] == (
            [(p.parameters, p.value) for p in telemetered]
        )
        assert [p.interval.half_width for p in plain] == (
            [p.interval.half_width for p in telemetered]
        )

    def test_replicate_reports_heartbeats(self):
        telemetry = SweepTelemetry()
        interval = replicate(
            measurement, {"load": 0.4}, num_replications=4,
            telemetry=telemetry,
        )
        assert telemetry.tasks_done == 4
        assert interval.observations == 4
        values = sorted(hb.value for hb in telemetry.heartbeats)
        assert values[0] == pytest.approx(measurement(seed=0, load=0.4))

    def test_emit_receives_progress_lines(self):
        lines = []
        telemetry = SweepTelemetry(cycles_per_task=1000, emit=lines.append)
        run_sweep(
            measurement, parameter_grid(load=[0.1, 0.2]), telemetry=telemetry
        )
        assert len(lines) == 2
        assert "[sweep" in lines[0] and "load=0.1" in lines[0]
        assert "cycles/s" in lines[-1]

    def test_aggregates(self):
        telemetry = SweepTelemetry(cycles_per_task=500)
        telemetry.start(2)
        telemetry.record(Heartbeat(
            index=0, total=2, parameters={}, seed=0, value=1.0, wall_s=0.5,
        ))
        assert telemetry.tasks_done == 1
        assert telemetry.mean_task_wall_s == pytest.approx(0.5)
        assert telemetry.eta_s is not None
        assert telemetry.cycles_per_s is not None
        summary = telemetry.summary()
        assert summary["total_tasks"] == 2
        assert summary["tasks_done"] == 1
        assert summary["cycles_per_task"] == 500

    def test_parallel_workers_still_heartbeat(self):
        telemetry = SweepTelemetry()
        grid = parameter_grid(load=[0.2, 0.4])
        points = run_sweep(
            measurement, grid, replications=2, workers=2,
            telemetry=telemetry,
        )
        serial = run_sweep(measurement, grid, replications=2)
        assert telemetry.tasks_done == 4
        assert [(p.parameters, p.value) for p in points] == (
            [(p.parameters, p.value) for p in serial]
        )


class TestEdgeCases:
    def test_zero_task_sweep_is_legal_and_rate_free(self):
        telemetry = SweepTelemetry(cycles_per_task=500)
        telemetry.start(0)
        assert telemetry.total_tasks == 0
        assert telemetry.tasks_done == 0
        assert telemetry.mean_task_wall_s == 0.0
        assert telemetry.eta_s is None  # nothing left, no rate: no ETA
        summary = telemetry.summary()
        assert summary["total_tasks"] == 0
        assert summary["tasks_per_s"] >= 0.0

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            SweepTelemetry().start(-1)

    def test_nonpositive_cycles_per_task_rejected(self):
        with pytest.raises(ValueError):
            SweepTelemetry(cycles_per_task=0)
        with pytest.raises(ValueError):
            SweepTelemetry(cycles_per_task=-100)

    def test_unstarted_telemetry_reports_zero_elapsed(self):
        telemetry = SweepTelemetry(cycles_per_task=100)
        assert telemetry.elapsed_s == 0.0
        assert telemetry.tasks_per_s == 0.0
        # Zero elapsed must not divide: both rates are undefined.
        assert telemetry.cycles_per_s is None
        assert telemetry.eta_s is None

    def test_cycles_per_s_none_without_cycles_per_task(self):
        telemetry = SweepTelemetry()
        telemetry.start(1)
        telemetry.record(Heartbeat(
            index=0, total=1, parameters={}, seed=0, value=1.0, wall_s=0.1,
        ))
        assert telemetry.cycles_per_s is None

    def test_eta_none_when_total_unknown(self):
        telemetry = SweepTelemetry()
        # record() without start() adopts the heartbeat's own total.
        telemetry.record(Heartbeat(
            index=0, total=0, parameters={}, seed=0, value=1.0, wall_s=0.1,
        ))
        assert telemetry.eta_s is None


class TestSnapshot:
    def test_snapshot_round_trips_through_json(self):
        telemetry = SweepTelemetry(cycles_per_task=250)
        telemetry.start(2)
        telemetry.record(Heartbeat(
            index=0, total=2, parameters={"load": 0.4, "radix": 8},
            seed=3, value=3.23, wall_s=0.05,
        ))
        snapshot = telemetry.snapshot()
        rebuilt = json.loads(json.dumps(snapshot, allow_nan=False))
        assert rebuilt["total_tasks"] == 2
        assert rebuilt["tasks_done"] == 1
        assert rebuilt["started"] is True
        beats = [Heartbeat.from_dict(hb) for hb in rebuilt["heartbeats"]]
        assert beats == telemetry.heartbeats

    def test_snapshot_of_untouched_telemetry(self):
        snapshot = SweepTelemetry().snapshot()
        assert snapshot["started"] is False
        assert snapshot["heartbeats"] == []
        assert snapshot["eta_s"] is None
        json.dumps(snapshot, allow_nan=False)  # strictly serialisable

    def test_heartbeat_dict_round_trip(self):
        beat = Heartbeat(
            index=4, total=9, parameters={"load": 0.2}, seed=7,
            value=1.25, wall_s=0.5, lanes=6,
        )
        assert Heartbeat.from_dict(beat.to_dict()) == beat

    def test_snapshot_carries_schema_version(self):
        snapshot = SweepTelemetry().snapshot()
        assert snapshot["format"] == TELEMETRY_FORMAT == "repro.telemetry/v1"

    def test_pre_versioned_heartbeat_dicts_still_load(self):
        # Archives written before the lanes field default to scalar.
        data = Heartbeat(
            index=0, total=1, parameters={}, seed=0, value=1.0, wall_s=0.1,
        ).to_dict()
        del data["lanes"]
        assert Heartbeat.from_dict(data).lanes == 1


class TestFleetAndFailureAggregates:
    def beat(self, index, lanes=1):
        return Heartbeat(
            index=index, total=4, parameters={}, seed=index, value=1.0,
            wall_s=0.25, lanes=lanes,
        )

    def test_lane_occupancy_aggregates(self):
        telemetry = SweepTelemetry()
        telemetry.start(4)
        telemetry.record(self.beat(0, lanes=3))
        telemetry.record(self.beat(1, lanes=3))
        telemetry.record(self.beat(2))
        assert telemetry.lanes_done == 7
        assert telemetry.mean_lanes == pytest.approx(7 / 3)
        summary = telemetry.summary()
        assert summary["lanes_done"] == 7
        assert summary["mean_lanes"] == pytest.approx(7 / 3)

    def test_fleet_heartbeat_line_shows_lane_count(self):
        lines = []
        telemetry = SweepTelemetry(emit=lines.append)
        telemetry.start(1)
        telemetry.record(self.beat(0, lanes=4))
        assert "[fleet x4]" in lines[0]

    def test_failure_counters(self):
        telemetry = SweepTelemetry()
        telemetry.start(2)
        telemetry.record_failure("retry")
        telemetry.record_failure("retry")
        telemetry.record_failure("crash")
        assert telemetry.retries == 3
        assert telemetry.failures == {"retry": 2, "crash": 1}
        assert telemetry.summary()["failures"] == {"retry": 2, "crash": 1}
        telemetry.start(2)  # a new run clears the counts
        assert telemetry.failures == {}

    def test_failures_appear_in_heartbeat_lines(self):
        lines = []
        telemetry = SweepTelemetry(emit=lines.append)
        telemetry.start(2)
        telemetry.record_failure()
        telemetry.record(self.beat(0))
        assert "[1 retried]" in lines[0]

    def test_to_stats_and_prometheus_exposition(self):
        from repro.obs import StatsRegistry, validate_prometheus

        telemetry = SweepTelemetry(cycles_per_task=100)
        telemetry.start(3)
        telemetry.record(self.beat(0, lanes=2))
        telemetry.record_failure("timeout")
        registry = StatsRegistry()
        telemetry.to_stats(registry)
        assert registry.get("sweep.total_tasks") == 3
        assert registry.get("sweep.lanes_done") == 2
        assert registry.get("sweep.failures.total") == 1
        assert registry.get("sweep.failures.timeout") == 1
        text = telemetry.to_prometheus()
        assert "repro_sweep_tasks_done 1" in text
        assert validate_prometheus(text) > 5

"""Tests of sweep/replication heartbeat telemetry."""

import pytest

from repro.harness.sweep import parameter_grid, run_sweep
from repro.harness.parallel import replicate
from repro.obs import Heartbeat, SweepTelemetry


def measurement(seed, load=0.5, radix=8):
    # Cheap, deterministic stand-in for a simulation measurement.
    return load * radix + seed * 0.01


class TestSweepTelemetry:
    def test_one_heartbeat_per_task(self):
        telemetry = SweepTelemetry()
        grid = parameter_grid(load=[0.2, 0.4, 0.6])
        points = run_sweep(
            measurement, grid, replications=3, telemetry=telemetry
        )
        assert telemetry.total_tasks == 9
        assert telemetry.tasks_done == 9
        assert len(points) == 3
        seen = {
            (hb.parameters["load"], hb.seed) for hb in telemetry.heartbeats
        }
        assert len(seen) == 9

    def test_results_bit_identical_with_and_without_telemetry(self):
        grid = parameter_grid(load=[0.2, 0.6], radix=[8, 16])
        plain = run_sweep(measurement, grid, replications=2, base_seed=5)
        telemetered = run_sweep(
            measurement, grid, replications=2, base_seed=5,
            telemetry=SweepTelemetry(),
        )
        assert [(p.parameters, p.value) for p in plain] == (
            [(p.parameters, p.value) for p in telemetered]
        )
        assert [p.interval.half_width for p in plain] == (
            [p.interval.half_width for p in telemetered]
        )

    def test_replicate_reports_heartbeats(self):
        telemetry = SweepTelemetry()
        interval = replicate(
            measurement, {"load": 0.4}, num_replications=4,
            telemetry=telemetry,
        )
        assert telemetry.tasks_done == 4
        assert interval.observations == 4
        values = sorted(hb.value for hb in telemetry.heartbeats)
        assert values[0] == pytest.approx(measurement(seed=0, load=0.4))

    def test_emit_receives_progress_lines(self):
        lines = []
        telemetry = SweepTelemetry(cycles_per_task=1000, emit=lines.append)
        run_sweep(
            measurement, parameter_grid(load=[0.1, 0.2]), telemetry=telemetry
        )
        assert len(lines) == 2
        assert "[sweep" in lines[0] and "load=0.1" in lines[0]
        assert "cycles/s" in lines[-1]

    def test_aggregates(self):
        telemetry = SweepTelemetry(cycles_per_task=500)
        telemetry.start(2)
        telemetry.record(Heartbeat(
            index=0, total=2, parameters={}, seed=0, value=1.0, wall_s=0.5,
        ))
        assert telemetry.tasks_done == 1
        assert telemetry.mean_task_wall_s == pytest.approx(0.5)
        assert telemetry.eta_s is not None
        assert telemetry.cycles_per_s is not None
        summary = telemetry.summary()
        assert summary["total_tasks"] == 2
        assert summary["tasks_done"] == 1
        assert summary["cycles_per_task"] == 500

    def test_parallel_workers_still_heartbeat(self):
        telemetry = SweepTelemetry()
        grid = parameter_grid(load=[0.2, 0.4])
        points = run_sweep(
            measurement, grid, replications=2, workers=2,
            telemetry=telemetry,
        )
        serial = run_sweep(measurement, grid, replications=2)
        assert telemetry.tasks_done == 4
        assert [(p.parameters, p.value) for p in points] == (
            [(p.parameters, p.value) for p in serial]
        )

"""Tests of the cycle-level switch tracer and its exports."""

import json

import pytest

from repro.core.config import (
    AllocationPolicy,
    ArbitrationScheme,
    HiRiseConfig,
)
from repro.core.hirise import HiRiseSwitch
from repro.core.reference import ReferenceHiRiseSwitch
from repro.network.engine import Simulation
from repro.obs.trace import (
    CLRG_HALVE,
    EJECT,
    EVENT_FIELDS,
    EVENT_NAMES,
    INJECT,
    P1_GRANT,
    P2_GRANT,
    SwitchTracer,
    validate_chrome,
    validate_chrome_path,
    validate_jsonl_path,
    validate_record,
    validate_records,
)
from repro.traffic import HotspotTraffic, UniformRandomTraffic


def small_config(**overrides):
    defaults = dict(radix=16, layers=4, channel_multiplicity=2)
    defaults.update(overrides)
    return HiRiseConfig(**defaults)


def traced_run(switch_class, config, traffic, cycles=300, warmup=40):
    tracer = SwitchTracer(capacity=None)
    switch = switch_class(config, tracer=tracer)
    result = Simulation(switch, traffic, warmup_cycles=warmup).run(
        measure_cycles=cycles, drain=True
    )
    return result, tracer


class TestTracerBuffer:
    def test_emit_stamps_current_cycle(self):
        tracer = SwitchTracer()
        tracer.cycle = 7
        tracer.emit(P1_GRANT, 1, 2, 3, 4)
        assert tracer.events == [(7, P1_GRANT, 1, 2, 3, 4)]

    def test_inject_carries_its_own_cycle(self):
        tracer = SwitchTracer()
        tracer.cycle = 99
        tracer.inject(5, src=0, dst=3, num_flits=4, packet_id=17)
        assert tracer.events == [(5, INJECT, 0, 3, 4, 17)]

    def test_capacity_drops_instead_of_growing(self):
        tracer = SwitchTracer(capacity=2)
        for _ in range(5):
            tracer.emit(EJECT)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SwitchTracer(capacity=0)

    def test_counts_by_kind_uses_wire_names(self):
        tracer = SwitchTracer()
        tracer.emit(EJECT)
        tracer.emit(EJECT)
        tracer.emit(CLRG_HALVE, 3, 1)
        assert tracer.counts_by_kind() == {"eject": 2, "clrg_halve": 1}
        assert tracer.halving_events() == [(0, 3, 1)]

    def test_every_kind_has_name_and_fields(self):
        assert set(EVENT_NAMES) == set(EVENT_FIELDS)
        for fields in EVENT_FIELDS.values():
            assert 2 <= len(fields) <= 4


class TestTracedRunExports:
    def test_jsonl_records_validate(self, tmp_path):
        _result, tracer = traced_run(
            HiRiseSwitch, small_config(),
            UniformRandomTraffic(16, load=0.6, seed=3),
        )
        assert len(tracer.events) > 0
        count = validate_records(tracer.records())
        assert count == len(tracer.events) + 1  # + meta record
        path = tmp_path / "trace.jsonl"
        written = tracer.write_jsonl(str(path))
        assert written == count
        assert validate_jsonl_path(path) == count

    def test_meta_record_describes_the_switch(self):
        _result, tracer = traced_run(
            HiRiseSwitch, small_config(),
            UniformRandomTraffic(16, load=0.4, seed=5), cycles=100,
        )
        meta = next(tracer.records())
        assert meta["event"] == "meta"
        assert meta["radix"] == 16
        assert meta["layers"] == 4
        assert meta["arbitration"] == "clrg"

    def test_chrome_trace_validates(self, tmp_path):
        _result, tracer = traced_run(
            HiRiseSwitch, small_config(),
            UniformRandomTraffic(16, load=0.6, seed=3),
        )
        trace = tracer.chrome_trace()
        assert validate_chrome(trace) == len(trace["traceEvents"])
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert slices, "a busy run must produce path slices"
        for event in slices:
            assert event["dur"] >= 1
        path = tmp_path / "trace.json"
        assert tracer.write_chrome(str(path)) == len(trace["traceEvents"])
        assert validate_chrome_path(path) == len(trace["traceEvents"])

    def test_grant_events_reference_real_resources(self):
        config = small_config()
        _result, tracer = traced_run(
            HiRiseSwitch, config, UniformRandomTraffic(16, load=0.8, seed=9),
        )
        num_resources = len(config.resource_key_table)
        for cycle, kind, a, b, c, _d in tracer.events:
            if kind in (P1_GRANT, P2_GRANT):
                assert 0 <= a < num_resources
                assert 0 <= b < 16
                assert 0 <= c < 16
        assert tracer.resource_name(0)  # resolvable via bound config

    def test_validators_reject_malformed_records(self):
        with pytest.raises(ValueError, match="unknown event"):
            validate_record({"event": "warp_drive", "cycle": 0})
        with pytest.raises(ValueError, match="cycle"):
            validate_record({"event": "eject", "cycle": -1})
        with pytest.raises(ValueError, match="meta"):
            validate_records(iter([{"event": "eject", "cycle": 0}]))
        with pytest.raises(ValueError, match="empty"):
            validate_records(iter([]))


class TestClrgHalvingObservation:
    def test_hotspot_run_records_class_halvings(self):
        config = small_config(arbitration=ArbitrationScheme.CLRG)
        _result, tracer = traced_run(
            HiRiseSwitch, config,
            HotspotTraffic(16, load=0.8, hotspot_output=3, seed=2),
            cycles=600, warmup=0,
        )
        halvings = tracer.halving_events()
        assert halvings, "a saturated hotspot must halve its class bank"
        per_output = {}
        for _cycle, output, count in halvings:
            assert count == per_output.get(output, 0) + 1
            per_output[output] = count
        assert 3 in per_output  # the hotspot output's bank halved

    def test_untraced_switch_has_no_halving_callback(self):
        switch = HiRiseSwitch(small_config())
        for arbiter in switch.subblock_arbiters.values():
            counters = getattr(arbiter, "counters", None)
            if counters is not None:
                assert counters.on_halve is None


class TestTracedEqualsUntraced:
    @pytest.mark.parametrize("scheme", [
        ArbitrationScheme.CLRG,
        ArbitrationScheme.WLRG,
        ArbitrationScheme.L2L_LRG,
    ], ids=lambda s: s.value)
    def test_tracing_never_changes_results(self, scheme):
        config = small_config(arbitration=scheme)

        def run(tracer):
            switch = HiRiseSwitch(config, tracer=tracer)
            traffic = UniformRandomTraffic(16, load=0.9, seed=11)
            return Simulation(switch, traffic, warmup_cycles=40).run(
                measure_cycles=300, drain=True
            )

        untraced = run(None)
        traced = run(SwitchTracer(capacity=None))
        assert traced.packets_ejected == untraced.packets_ejected
        assert traced.flits_ejected == untraced.flits_ejected
        assert traced.cycles == untraced.cycles
        assert traced.packet_latencies == untraced.packet_latencies
        assert traced.per_input_ejected == untraced.per_input_ejected
        assert traced.per_output_ejected == untraced.per_output_ejected

    def test_full_tracer_keeps_results_identical(self):
        # A saturated buffer must only drop events, never change the run.
        config = small_config()

        def run(tracer):
            switch = HiRiseSwitch(config, tracer=tracer)
            traffic = UniformRandomTraffic(16, load=0.9, seed=4)
            return Simulation(switch, traffic, warmup_cycles=0).run(
                measure_cycles=200, drain=True
            )

        tiny = SwitchTracer(capacity=16)
        assert run(tiny).packet_latencies == run(None).packet_latencies
        assert tiny.dropped > 0


class TestKernelEventParity:
    @pytest.mark.parametrize("scheme", [
        ArbitrationScheme.CLRG,
        ArbitrationScheme.WLRG,
        ArbitrationScheme.L2L_LRG,
    ], ids=lambda s: s.value)
    def test_fast_and_reference_emit_identical_events(self, scheme):
        config = small_config(
            arbitration=scheme, allocation=AllocationPolicy.INPUT_BINNED
        )
        traffic = UniformRandomTraffic(16, load=0.9, seed=11)
        _r1, fast = traced_run(HiRiseSwitch, config, traffic, cycles=250)
        traffic = UniformRandomTraffic(16, load=0.9, seed=11)
        _r2, reference = traced_run(
            ReferenceHiRiseSwitch, config, traffic, cycles=250
        )
        assert fast.events == reference.events

    def test_parity_jsonl_streams_match(self):
        config = small_config()
        traffic = UniformRandomTraffic(16, load=0.7, seed=6)
        _r1, fast = traced_run(HiRiseSwitch, config, traffic, cycles=150)
        traffic = UniformRandomTraffic(16, load=0.7, seed=6)
        _r2, reference = traced_run(
            ReferenceHiRiseSwitch, config, traffic, cycles=150
        )
        fast_lines = [json.dumps(r) for r in fast.records()]
        reference_lines = [json.dumps(r) for r in reference.records()]
        assert fast_lines == reference_lines

"""Unit tests for the weighted LRG arbiter."""

import pytest

from repro.arbitration.wlrg import WLRGArbiter


class TestWLRG:
    def test_selection_is_plain_lrg(self):
        arb = WLRGArbiter(3, initial_order=[2, 0, 1])
        assert arb.arbitrate_requests([(0, 4), (1, 1)]) == (0, 4)

    def test_weighted_hold_defers_demotion(self):
        arb = WLRGArbiter(2, initial_order=[0, 1])
        # Slot 0 carries 3 requestors: it keeps priority for 3 grants.
        for expected_served in (1, 2):
            winner = arb.arbitrate_requests([(0, 3), (1, 1)])
            assert winner == (0, 3)
            arb.commit(*winner)
            assert arb.served_count(0) == expected_served
            assert arb.lrg.priority_order == [0, 1]
        winner = arb.arbitrate_requests([(0, 3), (1, 1)])
        assert winner == (0, 3)
        arb.commit(*winner)
        # Third grant exhausts the weight: slot 0 demoted, counter reset.
        assert arb.lrg.priority_order == [1, 0]
        assert arb.served_count(0) == 0

    def test_weight_one_behaves_like_lrg(self):
        arb = WLRGArbiter(2)
        arb.commit(0, 1)
        assert arb.lrg.priority_order == [1, 0]

    def test_proportional_service(self):
        """Slot 0 (4 requestors) must receive 4x the grants of slot 1."""
        arb = WLRGArbiter(2)
        grants = {0: 0, 1: 0}
        for _ in range(40):
            winner = arb.arbitrate_requests([(0, 4), (1, 1)])
            arb.commit(*winner)
            grants[winner[0]] += 1
        assert grants[0] == 32
        assert grants[1] == 8

    def test_live_weight_shrink_demotes_promptly(self):
        arb = WLRGArbiter(2, initial_order=[0, 1])
        arb.commit(0, 4)
        arb.commit(0, 4)
        # The channel drained: weight now 2, already served 2 -> demote.
        arb.commit(0, 2)
        assert arb.lrg.priority_order == [1, 0]

    def test_rejects_bad_weight(self):
        arb = WLRGArbiter(2)
        with pytest.raises(ValueError):
            arb.arbitrate_requests([(0, 0)])

    def test_generic_view(self):
        arb = WLRGArbiter(3)
        winner = arb.arbitrate([1, 2])
        assert winner == 1
        arb.update(winner)
        assert arb.lrg.priority_order == [0, 2, 1]

"""Tests of the bit-accurate priority-matrix arbiter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arbitration.lrg import LRGArbiter
from repro.arbitration.matrix import MatrixArbiter


class TestMatrixBasics:
    def test_initial_bits_encode_ascending_order(self):
        arb = MatrixArbiter(3)
        assert arb.bits[0][1] and arb.bits[0][2] and arb.bits[1][2]
        assert not arb.bits[1][0] and not arb.bits[2][0]
        arb.validate()

    def test_explicit_initial_order(self):
        arb = MatrixArbiter(3, initial_order=[2, 0, 1])
        assert arb.priority_order() == [2, 0, 1]
        assert arb.bits[2][0] and arb.bits[2][1] and arb.bits[0][1]

    def test_update_moves_winner_to_back(self):
        arb = MatrixArbiter(4)
        arb.update(0)
        assert arb.priority_order() == [1, 2, 3, 0]
        arb.validate()

    def test_arbitrate_picks_unoutranked_requestor(self):
        arb = MatrixArbiter(4, initial_order=[3, 1, 0, 2])
        assert arb.arbitrate([0, 1, 2]) == 1
        assert arb.arbitrate([2]) == 2
        assert arb.arbitrate([]) is None

    def test_priority_bit_count_matches_hardware(self):
        """A radix-64 column stores 64 x 63 / 2 independent bits (the
        paper describes an N-bit priority vector per cross-point; the
        matrix view shows the independent-bit count)."""
        assert MatrixArbiter(64).priority_bit_count() == 2016

    def test_bad_initial_order(self):
        with pytest.raises(ValueError):
            MatrixArbiter(3, initial_order=[0, 0, 2])

    def test_slot_range(self):
        arb = MatrixArbiter(3)
        with pytest.raises(ValueError):
            arb.arbitrate([3])
        with pytest.raises(ValueError):
            arb.update(-1)


class TestEquivalenceWithListLRG:
    @given(
        st.integers(min_value=2, max_value=10),
        st.lists(
            st.tuples(
                st.booleans(),  # True: arbitrate+update a request set
                st.integers(min_value=0, max_value=1023),
            ),
            min_size=1,
            max_size=60,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_matrix_and_list_always_agree(self, num_slots, operations):
        """Any interleaving of arbitrations and updates produces identical
        winners and identical priority orders in both representations."""
        matrix = MatrixArbiter(num_slots)
        reference = LRGArbiter(num_slots)
        for do_arbitrate, mask in operations:
            requests = [
                slot for slot in range(num_slots) if mask & (1 << slot)
            ]
            if do_arbitrate and requests:
                winner_matrix = matrix.arbitrate(requests)
                winner_list = reference.arbitrate(requests)
                assert winner_matrix == winner_list
                matrix.update(winner_matrix)
                reference.update(winner_list)
            elif requests:
                slot = requests[0]
                matrix.update(slot)
                reference.update(slot)
            matrix.validate()
            assert matrix.priority_order() == reference.priority_order

"""Unit tests for the CLRG sub-block arbiter."""

import pytest

from repro.arbitration.clrg import CLRGArbiter


class TestCLRGSelection:
    def test_lower_class_beats_higher_lrg_priority(self):
        arb = CLRGArbiter(num_slots=4, num_inputs=64)
        arb.commit(slot=1, primary_input=20)  # input 20 -> class 1
        # Slot 1 (input 20, class 1) vs slot 0 (input 15, class 0): the
        # class decides even though slot 1 may hold better LRG priority.
        winner = arb.arbitrate_requests([(1, 20), (0, 15)])
        assert winner == (0, 15)

    def test_lrg_breaks_ties_within_class(self):
        arb = CLRGArbiter(4, 64, initial_order=[3, 2, 1, 0])
        winner = arb.arbitrate_requests([(0, 15), (1, 20)])
        assert winner == (1, 20)  # same class; slot 1 outranks slot 0

    def test_lrg_updated_even_when_class_decides(self):
        arb = CLRGArbiter(4, 64, initial_order=[0, 1, 2, 3])
        arb.commit(0, 10)  # slot 0 demoted, input 10 -> class 1
        # Class decides for slot 1 over slot 0; commit must still demote
        # slot 1 in LRG ("even though LRG is not used... still updated").
        winner = arb.arbitrate_requests([(0, 10), (1, 11)])
        assert winner == (1, 11)
        arb.commit(*winner)
        assert arb.lrg.priority_order == [2, 3, 0, 1]

    def test_no_requests(self):
        arb = CLRGArbiter(4, 64)
        assert arb.arbitrate_requests([]) is None

    def test_counter_increments_on_commit_only(self):
        arb = CLRGArbiter(4, 64)
        arb.arbitrate_requests([(0, 5)])
        assert arb.counters.class_of(5) == 0
        arb.commit(0, 5)
        assert arb.counters.class_of(5) == 1

    def test_slot_range_checked(self):
        arb = CLRGArbiter(2, 8)
        with pytest.raises(ValueError):
            arb.arbitrate_requests([(2, 0)])


class TestCLRGFairness:
    def test_equalises_disparate_requestor_counts(self):
        """Four inputs sharing slot 0 vs one input owning slot 1: over 10
        grants each primary input must be served twice (flat-LRG share)."""
        arb = CLRGArbiter(num_slots=2, num_inputs=32)
        shared = [3, 7, 11, 15]
        lone = 20
        pending = {i: 0 for i in shared + [lone]}
        next_shared = 0
        for _ in range(10):
            requests = [(0, shared[next_shared]), (1, lone)]
            winner = arb.arbitrate_requests(requests)
            arb.commit(*winner)
            pending[winner[1]] += 1
            if winner[1] != lone:
                next_shared = (next_shared + 1) % 4
        assert all(count == 2 for count in pending.values())

    def test_generic_arbiter_view(self):
        arb = CLRGArbiter(3, 8)
        winner = arb.arbitrate([0, 2])
        assert winner in (0, 2)
        arb.update(winner)
        assert arb.counters.class_of(winner) == 1

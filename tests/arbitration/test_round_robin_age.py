"""Tests of the related-work comparison arbiters (round-robin, age)."""

import pytest

from repro.arbitration.age import AgeArbiter
from repro.arbitration.round_robin import RoundRobinArbiter


class TestRoundRobin:
    def test_pointer_selects_next_requestor(self):
        arb = RoundRobinArbiter(4, start=2)
        assert arb.arbitrate([0, 3]) == 3
        assert arb.arbitrate([0, 1]) == 0  # wraps past 2, 3

    def test_update_advances_past_winner(self):
        arb = RoundRobinArbiter(4)
        arb.update(1)
        assert arb.pointer == 2
        arb.update(3)
        assert arb.pointer == 0

    def test_full_contention_is_round_robin(self):
        arb = RoundRobinArbiter(3)
        grants = []
        for _ in range(9):
            winner = arb.arbitrate(range(3))
            arb.update(winner)
            grants.append(winner)
        assert grants == [0, 1, 2] * 3

    def test_no_requests(self):
        assert RoundRobinArbiter(4).arbitrate([]) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(4, start=4)
        with pytest.raises(ValueError):
            RoundRobinArbiter(4).arbitrate([5])

    def test_starvation_freedom(self):
        arb = RoundRobinArbiter(5)
        waits = {slot: 0 for slot in range(5)}
        for _ in range(50):
            winner = arb.arbitrate(range(5))
            arb.update(winner)
            for slot in range(5):
                waits[slot] = 0 if slot == winner else waits[slot] + 1
                assert waits[slot] <= 4


class TestAge:
    def test_oldest_wins(self):
        arb = AgeArbiter(4)
        assert arb.arbitrate_requests([(0, 5), (1, 17), (2, 3)]) == (1, 17)

    def test_tie_breaks_to_lowest_slot(self):
        arb = AgeArbiter(4)
        assert arb.arbitrate_requests([(2, 9), (1, 9)]) == (1, 9)

    def test_stateless_commit(self):
        arb = AgeArbiter(3)
        arb.commit(0, 10)
        assert arb.arbitrate_requests([(0, 1), (1, 2)]) == (1, 2)

    def test_rejects_negative_age(self):
        with pytest.raises(ValueError):
            AgeArbiter(2).arbitrate_requests([(0, -1)])

    def test_generic_view(self):
        arb = AgeArbiter(3)
        assert arb.arbitrate([2, 1]) == 1
        arb.update(1)

    def test_no_requests(self):
        assert AgeArbiter(3).arbitrate_requests([]) is None


class TestSchemesInHiRise:
    @pytest.mark.parametrize("arbitration", ["l2l_rr", "age"])
    def test_extra_schemes_deliver_traffic(self, arbitration):
        from repro.core import HiRiseConfig, HiRiseSwitch
        from repro.network.engine import Simulation
        from repro.traffic import UniformRandomTraffic

        config = HiRiseConfig(
            radix=16, layers=4, channel_multiplicity=2,
            arbitration=arbitration,
        )
        switch = HiRiseSwitch(config)
        traffic = UniformRandomTraffic(16, load=0.1, seed=3)
        result = Simulation(switch, traffic).run(600, drain=True)
        assert result.packets_ejected == result.packets_injected
        assert result.packets_ejected > 0

    def test_age_scheme_serves_oldest_backlog_first(self):
        """With two layers backlogged toward one output, the age scheme
        alternates by wait time rather than by channel priority."""
        from repro.core import HiRiseConfig, HiRiseSwitch
        from repro.traffic import TraceTraffic

        config = HiRiseConfig(
            radix=64, layers=4, channel_multiplicity=1, arbitration="age"
        )
        switch = HiRiseSwitch(config)
        # Input 0 (L1) queues first; input 20 (L2) queues 1 cycle later.
        trace = TraceTraffic(
            [(0, 0, 63)] * 6 + [(1, 20, 63)] * 6, packet_flits=1
        )
        winners = []
        for cycle in range(60):
            for packet in trace.packets_for_cycle(cycle):
                switch.inject(packet)
            winners.extend(f.src for f in switch.step(cycle))
        # Strict alternation after the first grant: equally old heads.
        assert winners[0] == 0
        assert set(winners[:8]) == {0, 20}
        assert winners.count(0) >= 3 and winners.count(20) >= 3

"""Property-based tests (hypothesis) for the arbitration primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arbitration.classes import ClassCounterBank
from repro.arbitration.clrg import CLRGArbiter
from repro.arbitration.lrg import LRGArbiter
from repro.arbitration.wlrg import WLRGArbiter


@st.composite
def lrg_and_requests(draw):
    num_slots = draw(st.integers(min_value=1, max_value=16))
    requests = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_slots - 1),
            unique=True,
            max_size=num_slots,
        )
    )
    return LRGArbiter(num_slots), requests


class TestLRGProperties:
    @given(lrg_and_requests())
    def test_winner_is_a_requestor(self, case):
        arb, requests = case
        winner = arb.arbitrate(requests)
        if requests:
            assert winner in requests
        else:
            assert winner is None

    @given(lrg_and_requests())
    def test_winner_outranks_all_other_requestors(self, case):
        arb, requests = case
        winner = arb.arbitrate(requests)
        if winner is not None:
            assert all(arb.rank(winner) <= arb.rank(r) for r in requests)

    @given(
        st.integers(min_value=2, max_value=12),
        st.lists(st.integers(min_value=0, max_value=11), min_size=1, max_size=200),
    )
    def test_order_stays_a_permutation(self, num_slots, updates):
        arb = LRGArbiter(num_slots)
        for update in updates:
            arb.update(update % num_slots)
            assert sorted(arb.priority_order) == list(range(num_slots))

    @given(
        st.integers(min_value=2, max_value=12),
        st.lists(st.integers(min_value=0, max_value=11), min_size=1, max_size=50),
    )
    def test_updated_slot_is_always_last(self, num_slots, updates):
        arb = LRGArbiter(num_slots)
        for update in updates:
            slot = update % num_slots
            arb.update(slot)
            assert arb.priority_order[-1] == slot

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=25)
    def test_full_contention_grant_counts_balanced(self, num_slots, rounds):
        arb = LRGArbiter(num_slots)
        counts = [0] * num_slots
        for _ in range(rounds):
            winner = arb.arbitrate(range(num_slots))
            arb.update(winner)
            counts[winner] += 1
        assert max(counts) - min(counts) <= 1


class TestClassCounterProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=2, max_value=5),
        st.lists(st.integers(min_value=0, max_value=15), max_size=300),
    )
    def test_counts_bounded(self, num_inputs, num_classes, wins):
        bank = ClassCounterBank(num_inputs, num_classes)
        for win in wins:
            bank.record_win(win % num_inputs)
            assert all(
                0 <= count <= bank.max_count for count in bank.counts()
            )

    @given(
        st.integers(min_value=2, max_value=16),
        st.lists(st.integers(min_value=0, max_value=15), max_size=300),
    )
    def test_untouched_input_never_outclassed(self, num_inputs, wins):
        """An input that never wins stays in the highest-priority class."""
        bank = ClassCounterBank(num_inputs)
        for win in wins:
            bank.record_win(win % (num_inputs - 1))  # input n-1 never wins
        assert bank.class_of(num_inputs - 1) == 0


class TestCLRGProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=15),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_winner_minimises_class_then_rank(self, raw_requests):
        # Deduplicate slots (one request per channel per cycle).
        requests = list({slot: (slot, inp) for slot, inp in raw_requests}.values())
        arb = CLRGArbiter(4, 16)
        arb.commit(0, requests[0][1])  # perturb state
        winner = arb.arbitrate_requests(requests)
        assert winner in requests
        w_class = arb.counters.class_of(winner[1])
        assert all(
            w_class < arb.counters.class_of(inp)
            or (
                w_class == arb.counters.class_of(inp)
                and arb.lrg.rank(winner[0]) <= arb.lrg.rank(slot)
            )
            for slot, inp in requests
        )

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_state_stays_consistent(self, winners):
        arb = CLRGArbiter(4, 8)
        for winner in winners:
            arb.commit(winner, winner)
        assert sorted(arb.lrg.priority_order) == [0, 1, 2, 3]
        assert all(0 <= c <= arb.counters.max_count for c in arb.counters.counts())


class TestWLRGProperties:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30)
    def test_service_proportional_to_weights(self, num_rounds, w0, w1):
        arb = WLRGArbiter(2)
        grants = [0, 0]
        total = num_rounds * (w0 + w1)
        for _ in range(total):
            winner = arb.arbitrate_requests([(0, w0), (1, w1)])
            arb.commit(*winner)
            grants[winner[0]] += 1
        assert grants[0] == num_rounds * w0
        assert grants[1] == num_rounds * w1


class TestCLRGFairnessBound:
    """Grant counts never diverge by more than one class width.

    Validated empirically before being pinned: among requestors that
    contend every round, the CLRG class mechanism (paper Section
    III-B.4) keeps win-count divergence within ``num_classes`` — both
    under pure full contention and when churny extra requestors join
    and leave around an always-requesting core.  (Patterns that
    *displace* a persistent requestor's slot can add one more; those
    are out of scope for this bound.)
    """

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=20, max_value=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_full_contention_divergence_bounded(
        self, num_slots, num_classes, rounds
    ):
        arb = CLRGArbiter(num_slots, num_slots, num_classes=num_classes)
        wins = [0] * num_slots
        requests = [(slot, slot) for slot in range(num_slots)]
        for _ in range(rounds):
            slot, primary_input = arb.arbitrate_requests(requests)
            arb.commit(slot, primary_input)
            wins[primary_input] += 1
        assert max(wins) - min(wins) <= num_classes

    @given(
        st.integers(min_value=3, max_value=6),
        st.integers(min_value=2, max_value=4),
        st.lists(
            st.lists(
                st.booleans(), min_size=4, max_size=4
            ),
            min_size=30,
            max_size=200,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_persistent_core_bounded_under_churn(
        self, num_slots, num_classes, churn
    ):
        # Slots [0, core) request every round; the remaining slots come
        # and go per the hypothesis-driven churn mask.
        core = num_slots - 2
        extras = list(range(core, num_slots))
        arb = CLRGArbiter(num_slots, num_slots, num_classes=num_classes)
        wins = [0] * num_slots
        for mask in churn:
            requests = [(slot, slot) for slot in range(core)]
            requests.extend(
                (slot, slot)
                for slot, active in zip(extras, mask)
                if active
            )
            granted = arb.arbitrate_requests(requests)
            if granted is None:
                continue
            slot, primary_input = granted
            arb.commit(slot, primary_input)
            wins[primary_input] += 1
        persistent = wins[:core]
        assert max(persistent) - min(persistent) <= num_classes


class TestLRGOrderInvariant:
    """Recency keys stay a strict total order under arbitrary grants.

    This is the exact property the runtime ``lrg_order`` invariant
    (``repro.check.invariants``) asserts inside the kernels: pairwise
    distinct ``_rank`` keys and a stamp strictly above all of them.
    """

    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(
            st.sets(st.integers(min_value=0, max_value=7), max_size=8),
            min_size=1,
            max_size=120,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_order_is_permutation_after_arbitrary_sequences(
        self, num_slots, request_sets
    ):
        arb = LRGArbiter(num_slots)
        for raw in request_sets:
            requests = {slot % num_slots for slot in raw}
            winner = arb.arbitrate(requests)
            if winner is not None:
                arb.update(winner)
            assert sorted(arb.priority_order) == list(range(num_slots))
            assert len(set(arb._rank)) == num_slots
            assert arb._stamp > max(arb._rank)

    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                 max_size=120),
    )
    @settings(max_examples=50, deadline=None)
    def test_direct_updates_preserve_total_order(self, num_slots, updates):
        arb = LRGArbiter(num_slots)
        for raw in updates:
            arb.update(raw % num_slots)
            assert len(set(arb._rank)) == num_slots
            assert arb._stamp > max(arb._rank)
            ranks = sorted(arb.rank(slot) for slot in range(num_slots))
            assert ranks == list(range(num_slots))


# ---------------------------------------------------------------------------
# VOQ scheduler family: iSLIP and the MWM oracle
# ---------------------------------------------------------------------------
from repro.arbitration.islip import ISLIPArbiter  # noqa: E402
from repro.arbitration.matching import (  # noqa: E402
    is_maximal_matching,
    is_valid_matching,
    matching_weight,
)
from repro.arbitration.mwm import MWMOracle  # noqa: E402


@st.composite
def weight_matrices(draw, max_ports=8, max_weight=9):
    """A square VOQ occupancy/weight matrix (zeros = no request)."""
    n = draw(st.integers(min_value=1, max_value=max_ports))
    matrix = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=max_weight),
                min_size=n, max_size=n,
            ),
            min_size=n, max_size=n,
        )
    )
    return matrix


@st.composite
def matrix_sequences(draw, max_ports=6, max_len=8):
    """A port count plus a sequence of weight matrices for that size.

    Driving one arbiter through the whole sequence exercises matches
    from *warmed* pointer state, not just the all-zeros reset state.
    """
    n = draw(st.integers(min_value=1, max_value=max_ports))
    matrices = draw(
        st.lists(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=5),
                    min_size=n, max_size=n,
                ),
                min_size=n, max_size=n,
            ),
            min_size=1, max_size=max_len,
        )
    )
    return n, matrices


class TestISLIPProperties:
    @given(matrix_sequences(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_every_grant_set_is_a_valid_matching(self, case, iterations):
        n, matrices = case
        arb = ISLIPArbiter(n, iterations=iterations)
        for weights in matrices:
            matching = arb.match(weights)
            assert is_valid_matching(matching, weights)

    @given(matrix_sequences())
    @settings(max_examples=200, deadline=None)
    def test_matching_is_maximal_after_n_iterations(self, case):
        n, matrices = case
        arb = ISLIPArbiter(n, iterations=n)
        for weights in matrices:
            matching = arb.match(weights)
            assert is_valid_matching(matching, weights)
            assert is_maximal_matching(matching, weights)

    @given(matrix_sequences())
    @settings(max_examples=100, deadline=None)
    def test_pointers_stay_in_range(self, case):
        n, matrices = case
        arb = ISLIPArbiter(n, iterations=2)
        for weights in matrices:
            arb.match(weights)
            assert all(0 <= p < n for p in arb.grant_pointers)
            assert all(0 <= p < n for p in arb.accept_pointers)

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=15, deadline=None)
    def test_desynchronization_reaches_full_throughput(self, n):
        # The iSLIP stability claim: under saturated uniform traffic
        # (every VOQ backlogged) the accepted outputs' pointers move
        # past the inputs they served, so after a warm-up no two
        # outputs fight over one input and *one* iteration matches all
        # n pairs every cycle — 100% throughput.
        arb = ISLIPArbiter(n, iterations=1)
        saturated = [[1] * n for _ in range(n)]
        for _ in range(2 * n):
            arb.match(saturated)
        for _ in range(n):
            matching = arb.match(saturated)
            assert len(matching) == n
        assert sorted(arb.grant_pointers) == list(range(n))


class TestMWMProperties:
    @given(weight_matrices())
    @settings(max_examples=200, deadline=None)
    def test_matching_is_valid(self, weights):
        oracle = MWMOracle(len(weights))
        matching = oracle.match(weights)
        assert is_valid_matching(matching, weights)

    @given(weight_matrices(max_ports=4, max_weight=6))
    @settings(max_examples=200, deadline=None)
    def test_weight_is_optimal_by_brute_force(self, weights):
        from itertools import permutations

        n = len(weights)
        oracle = MWMOracle(n)
        matching = oracle.match(weights)
        best = 0
        for perm in permutations(range(n)):
            best = max(best, sum(
                weights[i][perm[i]]
                for i in range(n) if weights[i][perm[i]] > 0
            ))
        assert matching_weight(matching, weights) == best

    @given(
        weight_matrices(),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=200, deadline=None)
    def test_weight_dominates_islip_on_identical_occupancies(
        self, weights, iterations
    ):
        n = len(weights)
        oracle = MWMOracle(n)
        islip = ISLIPArbiter(n, iterations=iterations)
        assert matching_weight(oracle.match(weights), weights) >= (
            matching_weight(islip.match(weights), weights)
        )

    @given(weight_matrices())
    @settings(max_examples=100, deadline=None)
    def test_rotating_tie_break_preserves_weight(self, weights):
        # The fairness rotation relabels ports before the solve; the
        # matching weight must be offset-invariant.
        n = len(weights)
        oracle = MWMOracle(n)
        results = {
            matching_weight(oracle.match(weights), weights)
            for _ in range(n)  # one full rotation of the offset
        }
        assert len(results) == 1

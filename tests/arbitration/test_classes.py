"""Unit tests for the CLRG class counter bank."""

import pytest

from repro.arbitration.classes import ClassCounterBank


class TestClassCounterBank:
    def test_all_start_in_highest_class(self):
        bank = ClassCounterBank(num_inputs=8)
        assert all(bank.class_of(i) == 0 for i in range(8))

    def test_win_moves_to_lower_class(self):
        bank = ClassCounterBank(8)
        bank.record_win(3)
        assert bank.class_of(3) == 1
        assert bank.class_of(0) == 0

    def test_default_three_classes(self):
        bank = ClassCounterBank(4)
        assert bank.num_classes == 3
        assert bank.max_count == 2

    def test_halving_on_saturation_preserves_order(self):
        bank = ClassCounterBank(4, num_classes=3)
        bank.record_win(0)          # counts: 1 0 0 0
        bank.record_win(1)
        bank.record_win(1)          # counts: 1 2 0 0
        # Input 1 is saturated; its next win halves everyone first.
        bank.record_win(1)          # halve -> 0 1 0 0, then +1 -> 0 2 0 0
        assert bank.counts() == [0, 2, 0, 0]
        assert bank.halvings == 1

    def test_relative_ordering_preserved_across_halving(self):
        bank = ClassCounterBank(3, num_classes=4)
        for _ in range(3):
            bank.record_win(0)      # 3 0 0 (saturated)
        bank.record_win(1)          # 3 1 0
        before = bank.counts()
        bank.record_win(0)          # halve: 1 0 0 -> +1: 2 0 0
        after = bank.counts()
        # Input 0 still in a strictly lower-priority class than 1 and 2.
        assert after[0] > after[1] >= after[2]
        assert before[0] > before[1]

    def test_counter_never_exceeds_max(self):
        bank = ClassCounterBank(2, num_classes=3)
        for _ in range(50):
            bank.record_win(0)
            assert 0 <= bank.class_of(0) <= bank.max_count

    def test_burst_forgiveness(self):
        """After a burst saturates an input, halving quickly forgets it."""
        bank = ClassCounterBank(4, num_classes=3)
        for _ in range(20):
            bank.record_win(0)
        burst_class = bank.class_of(0)
        # Another input now wins repeatedly; each saturation halves input
        # 0's stale count toward zero.
        for _ in range(6):
            bank.record_win(1)
        assert bank.class_of(0) < burst_class

    def test_validation(self):
        with pytest.raises(ValueError):
            ClassCounterBank(0)
        with pytest.raises(ValueError):
            ClassCounterBank(4, num_classes=1)
        bank = ClassCounterBank(4)
        with pytest.raises(ValueError):
            bank.record_win(4)
        with pytest.raises(ValueError):
            bank.class_of(-1)

"""Unit tests for the LRG matrix arbiter."""

import pytest

from repro.arbitration.lrg import LRGArbiter


class TestLRGBasics:
    def test_initial_order_is_ascending(self):
        arb = LRGArbiter(4)
        assert arb.priority_order == [0, 1, 2, 3]

    def test_explicit_initial_order(self):
        arb = LRGArbiter(4, initial_order=[3, 1, 0, 2])
        assert arb.priority_order == [3, 1, 0, 2]
        assert arb.rank(3) == 0
        assert arb.rank(2) == 3

    def test_initial_order_must_be_permutation(self):
        with pytest.raises(ValueError):
            LRGArbiter(3, initial_order=[0, 0, 1])
        with pytest.raises(ValueError):
            LRGArbiter(3, initial_order=[0, 1])

    def test_highest_priority_requestor_wins(self):
        arb = LRGArbiter(4, initial_order=[2, 0, 3, 1])
        assert arb.arbitrate([0, 1, 3]) == 0
        assert arb.arbitrate([1, 3]) == 3
        assert arb.arbitrate([1]) == 1

    def test_no_requests_no_winner(self):
        assert LRGArbiter(4).arbitrate([]) is None

    def test_arbitrate_does_not_mutate(self):
        arb = LRGArbiter(4)
        arb.arbitrate([1, 2])
        assert arb.priority_order == [0, 1, 2, 3]

    def test_update_demotes_winner_to_back(self):
        arb = LRGArbiter(4)
        arb.update(0)
        assert arb.priority_order == [1, 2, 3, 0]
        arb.update(2)
        assert arb.priority_order == [1, 3, 0, 2]

    def test_out_of_range_slot_raises(self):
        arb = LRGArbiter(4)
        with pytest.raises(ValueError):
            arb.arbitrate([4])
        with pytest.raises(ValueError):
            arb.update(-1)


class TestLRGFairness:
    def test_round_robin_under_full_contention(self):
        """With every slot always requesting, LRG degenerates to a fair
        round-robin: each slot wins exactly once per num_slots grants."""
        arb = LRGArbiter(5)
        grants = []
        for _ in range(20):
            winner = arb.arbitrate(range(5))
            arb.update(winner)
            grants.append(winner)
        for start in range(0, 20, 5):
            assert sorted(grants[start:start + 5]) == [0, 1, 2, 3, 4]

    def test_least_recently_granted_wins(self):
        arb = LRGArbiter(3)
        arb.update(0)
        arb.update(1)
        # 2 has never been granted: it must beat both.
        assert arb.arbitrate([0, 1, 2]) == 2

    def test_non_requesting_slot_keeps_priority(self):
        arb = LRGArbiter(3)
        for _ in range(4):
            winner = arb.arbitrate([1, 2])
            arb.update(winner)
        # Slot 0 never requested, never granted: still the highest.
        assert arb.arbitrate([0, 1, 2]) == 0

    def test_starvation_freedom_bound(self):
        """A requesting slot waits at most num_slots - 1 grants."""
        arb = LRGArbiter(8)
        waits = {slot: 0 for slot in range(8)}
        for _ in range(100):
            winner = arb.arbitrate(range(8))
            arb.update(winner)
            for slot in range(8):
                if slot == winner:
                    waits[slot] = 0
                else:
                    waits[slot] += 1
                    assert waits[slot] <= 7

"""Tests of the QoS-weighted CLRG extension."""

import pytest

from repro.arbitration.qos import QoSCLRGArbiter, WeightedClassCounterBank
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.network.engine import Simulation
from repro.traffic import AdversarialTraffic


class TestWeightedBank:
    def test_uniform_weights_match_plain_behaviour(self):
        bank = WeightedClassCounterBank(4)
        bank.record_win(0)
        assert bank.class_of(0) == pytest.approx(1.0)
        assert bank.class_of(1) == 0.0

    def test_heavier_weight_charged_less(self):
        bank = WeightedClassCounterBank(2, weights=[2.0, 1.0])
        bank.record_win(0)
        bank.record_win(1)
        assert bank.class_of(0) == pytest.approx(0.5)
        assert bank.class_of(1) == pytest.approx(1.0)

    def test_halving_preserves_ratios(self):
        bank = WeightedClassCounterBank(2, num_classes=3, weights=[1.0, 1.0])
        bank.record_win(0)
        bank.record_win(0)     # at saturation boundary (2.0)
        bank.record_win(1)
        bank.record_win(0)     # would exceed 2 -> halve all, then add
        counts = bank.counts()
        assert counts[0] == pytest.approx(2.0)
        assert counts[1] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedClassCounterBank(2, weights=[1.0])
        with pytest.raises(ValueError):
            WeightedClassCounterBank(2, weights=[1.0, 0.0])


class TestQoSArbiter:
    def test_share_proportional_to_weight(self):
        """Two always-requesting inputs with 2:1 weights should receive
        grants in a 2:1 ratio."""
        weights = [1.0] * 8
        weights[0] = 2.0
        arb = QoSCLRGArbiter(num_slots=2, num_inputs=8, weights=weights)
        grants = {0: 0, 1: 0}
        for _ in range(300):
            winner = arb.arbitrate_requests([(0, 0), (1, 1)])
            arb.commit(*winner)
            grants[winner[1]] += 1
        assert grants[0] / grants[1] == pytest.approx(2.0, rel=0.1)


class TestQoSConfig:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            HiRiseConfig(radix=8, layers=2, qos_weights=(1.0,) * 4)
        with pytest.raises(ValueError):
            HiRiseConfig(radix=8, layers=2, arbitration="l2l_lrg",
                         qos_weights=(1.0,) * 8)
        with pytest.raises(ValueError):
            HiRiseConfig(radix=8, layers=2, qos_weights=(0.0,) * 8)

    def test_switch_honours_weights_end_to_end(self):
        """Inputs 0 (weight 3) and 5 (weight 1) on different layers both
        flood output 6: delivered shares approach 3:1."""
        weights = [1.0] * 8
        weights[0] = 3.0
        config = HiRiseConfig(
            radix=8, layers=2, channel_multiplicity=1,
            arbitration="clrg", qos_weights=tuple(weights),
            num_classes=8,
        )
        switch = HiRiseSwitch(config)
        traffic = AdversarialTraffic(8, 1.0, {0: 6, 5: 6}, seed=2)
        result = Simulation(switch, traffic, warmup_cycles=300).run(4000)
        per_input = result.per_input_throughput(8)
        assert per_input[0] / per_input[5] == pytest.approx(3.0, rel=0.15)

    def test_default_has_no_weights(self):
        assert HiRiseConfig().qos_weights is None

"""Tests of the VOQ input stage, the VOQ crossbar, and make_switch.

Includes the iSLIP-1 degeneration parity (golden-test style, like
``tests/core/test_golden_equivalence.py``): with one iteration and
single-VOQ inputs, iSLIP is *structurally* equivalent to independent
per-output round-robin arbitration — pinned both at the matcher level
(identical decision sequences from identical pointer state) and at the
switch level (bit-identical simulation results when the scheduler is
swapped for a round-robin composition).
"""

import random

import pytest

from repro.arbitration.islip import ISLIPArbiter
from repro.arbitration.round_robin import RoundRobinArbiter
from repro.core.config import HiRiseConfig
from repro.core.hirise import HiRiseSwitch
from repro.network.engine import Simulation
from repro.network.packet import PacketFactory
from repro.switches import VOQStage, VOQSwitch, make_switch
from repro.traffic import UniformRandomTraffic
from repro.traffic.base import SyntheticTraffic


def voq_config(arbitration="islip", radix=8, **overrides):
    defaults = dict(
        radix=radix, layers=2, channel_multiplicity=2,
        arbitration=arbitration,
    )
    defaults.update(overrides)
    return HiRiseConfig(**defaults)


class FixedDestinationTraffic(SyntheticTraffic):
    """Each input always sends to one fixed output (single-VOQ inputs)."""

    def __init__(self, num_ports, load, mapping, packet_flits=4, seed=1):
        super().__init__(num_ports, load, packet_flits=packet_flits,
                         seed=seed)
        self.mapping = mapping

    def destination(self, src):
        return self.mapping[src]


# ---------------------------------------------------------------------------
# VOQStage
# ---------------------------------------------------------------------------
class TestVOQStage:
    def test_refill_moves_one_flit_per_call_into_the_right_voq(self):
        stage = VOQStage(0, 4)
        factory = PacketFactory(3)
        stage.source.append_packet(factory.create(0, 2, created_cycle=0))
        stage.source.append_packet(factory.create(0, 1, created_cycle=0))
        assert stage.occupancy_row == [0, 0, 0, 0]
        for expected in ([0, 0, 1, 0], [0, 0, 2, 0], [0, 0, 3, 0],
                         [0, 1, 3, 0]):
            stage.refill()
            assert stage.occupancy_row == expected
        assert [len(q) for q in stage.voqs] == stage.occupancy_row
        assert stage.total_occupancy() == 6  # 4 in VOQs + 2 in source

    def test_pop_dequeues_in_fifo_order_and_tracks_occupancy(self):
        stage = VOQStage(0, 2)
        factory = PacketFactory(2)
        stage.source.append_packet(factory.create(0, 1, created_cycle=0))
        stage.refill()
        stage.refill()
        head = stage.pop(1)
        tail = stage.pop(1)
        assert head.is_head and tail.is_tail
        assert stage.occupancy_row == [0, 0]

    def test_refill_on_empty_source_is_a_no_op(self):
        stage = VOQStage(0, 2)
        stage.refill()
        assert stage.total_occupancy() == 0


# ---------------------------------------------------------------------------
# make_switch dispatch and config validation
# ---------------------------------------------------------------------------
class TestDispatch:
    def test_voq_schemes_build_the_voq_switch(self):
        assert isinstance(make_switch(voq_config("islip")), VOQSwitch)
        assert isinstance(make_switch(voq_config("mwm")), VOQSwitch)

    def test_paper_schemes_build_the_hirise_switch(self):
        assert isinstance(make_switch(voq_config("clrg")), HiRiseSwitch)

    def test_voq_switch_rejects_non_voq_configs(self):
        with pytest.raises(ValueError):
            VOQSwitch(voq_config("clrg"))

    def test_islip_iterations_validated(self):
        with pytest.raises(ValueError):
            voq_config("islip", islip_iterations=0)

    def test_iteration_count_reaches_the_scheduler(self):
        switch = make_switch(voq_config("islip", islip_iterations=3))
        assert switch.scheduler.iterations == 3


# ---------------------------------------------------------------------------
# Timing contract and conservation
# ---------------------------------------------------------------------------
class TestVOQSwitch:
    def test_connection_period_is_flits_plus_one_cooling_cycle(self):
        # One always-backlogged input -> one output: a k-flit packet
        # holds the connection k cycles and the tail cycle cools, so
        # the service period is k+1 cycles (the Hi-Rise contract).
        switch = make_switch(voq_config("islip"))
        traffic = FixedDestinationTraffic(
            8, 1.0, {i: 7 for i in range(8)}, packet_flits=4, seed=3,
        )
        result = Simulation(switch, traffic, warmup_cycles=100).run(1000)
        assert result.packets_ejected == pytest.approx(1000 / 5, abs=1)

    def test_conservation_under_drain(self):
        for arbitration in ("islip", "mwm"):
            switch = make_switch(voq_config(arbitration))
            traffic = UniformRandomTraffic(8, 0.4, seed=5)
            result = Simulation(switch, traffic, warmup_cycles=0).run(
                400, drain=True
            )
            assert switch.occupancy() == 0
            assert result.packets_injected == result.packets_ejected

    def test_voq_eliminates_head_of_line_blocking(self):
        # Input 0 alternates between a contested output and a free one;
        # with per-output queues the free-output packets overtake the
        # backlog toward the contested output.
        switch = make_switch(voq_config("islip"))
        factory = PacketFactory(4)
        for packet in (
            factory.create(0, 1, created_cycle=0),  # contested
            factory.create(1, 1, created_cycle=0),  # contests output 1
            factory.create(1, 1, created_cycle=0),  # more contention
            factory.create(0, 2, created_cycle=0),  # free output
        ):
            switch.inject(packet)
        delivered = []
        for cycle in range(60):
            delivered.extend(
                flit for flit in switch.step(cycle) if flit.is_tail
            )
        assert len(delivered) == 4
        to_free = next(f for f in delivered if f.dst == 2)
        last_contested = max(
            f.ejected_cycle for f in delivered if f.dst == 1
        )
        assert to_free.ejected_cycle < last_contested


# ---------------------------------------------------------------------------
# iSLIP-1 degeneration: per-output round-robin parity (golden style)
# ---------------------------------------------------------------------------
class PerOutputRoundRobin:
    """Independent per-output RoundRobinArbiter composition.

    Only a legal scheduler when every input requests at most one output
    (single-VOQ inputs) — then no input can win twice and the union of
    per-output winners is a matching.
    """

    def __init__(self, num_ports):
        self.num_ports = num_ports
        self.arbiters = [
            RoundRobinArbiter(num_ports) for _ in range(num_ports)
        ]

    def match(self, weights, observer=None):
        matching = {}
        for out in range(self.num_ports):
            requesting = [
                inp for inp in range(self.num_ports)
                if weights[inp][out] > 0
            ]
            winner = self.arbiters[out].arbitrate(requesting)
            if winner is not None:
                matching[winner] = out
                self.arbiters[out].update(winner)
        return matching


class TestISLIPDegeneratesToRoundRobin:
    def test_matcher_level_decision_sequences_identical(self):
        # 200 seeded single-VOQ request matrices through both matchers:
        # every decision and every pointer state must coincide.
        n = 6
        rng = random.Random(42)
        islip = ISLIPArbiter(n, iterations=1)
        golden = PerOutputRoundRobin(n)
        for _ in range(200):
            weights = [[0] * n for _ in range(n)]
            for inp in range(n):
                if rng.random() < 0.7:
                    weights[inp][rng.randrange(n)] = rng.randint(1, 5)
            assert islip.match(weights) == golden.match(weights)
            assert islip.grant_pointers == [
                arb.pointer for arb in golden.arbiters
            ]

    def test_switch_level_results_bit_identical(self):
        # Same seeded fixed-destination traffic (4 inputs contending
        # for each of 2 outputs) through the VOQ switch twice: once
        # scheduled by iSLIP-1, once by the round-robin composition.
        mapping = {i: (6 if i < 4 else 7) for i in range(8)}

        def run(swap_scheduler):
            switch = make_switch(voq_config("islip"))
            if swap_scheduler:
                switch.scheduler = PerOutputRoundRobin(8)
            traffic = FixedDestinationTraffic(8, 0.5, mapping, seed=9)
            return Simulation(switch, traffic, warmup_cycles=50).run(
                600, drain=True
            )

        islip, golden = run(False), run(True)
        assert islip.packets_ejected == golden.packets_ejected
        assert islip.packet_latencies == golden.packet_latencies
        assert islip.per_input_ejected == golden.per_input_ejected

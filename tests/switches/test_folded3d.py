"""Tests of the 3D folded switch baseline."""

import pytest

from repro.network.engine import Simulation
from repro.switches import FoldedSwitch3D, SwizzleSwitch2D
from repro.traffic import UniformRandomTraffic


class TestGeometry:
    def test_paper_configuration(self):
        """Table I: [16x64]x4 — 16 inputs and outputs per layer."""
        switch = FoldedSwitch3D(64, layers=4)
        assert switch.ports_per_layer == 16
        assert switch.layer_of_port(0) == 0
        assert switch.layer_of_port(63) == 3
        assert switch.local_index(20) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            FoldedSwitch3D(64, layers=1)
        with pytest.raises(ValueError):
            FoldedSwitch3D(63, layers=4)
        with pytest.raises(ValueError):
            FoldedSwitch3D(64, layers=4).layer_of_port(64)


class TestBehaviourMatches2D:
    def test_cycle_identical_to_flat_switch(self):
        """Folding redistributes ports over layers without changing the
        datapath or arbitration, so the folded switch must be
        cycle-for-cycle identical to the 2D switch on the same traffic."""
        folded = FoldedSwitch3D(16, layers=4)
        flat = SwizzleSwitch2D(16)
        t1 = UniformRandomTraffic(16, load=0.4, seed=21)
        t2 = UniformRandomTraffic(16, load=0.4, seed=21)
        r_folded = Simulation(folded, t1, warmup_cycles=100).run(800)
        r_flat = Simulation(flat, t2, warmup_cycles=100).run(800)
        assert r_folded.packets_ejected == r_flat.packets_ejected
        assert r_folded.packet_latencies == r_flat.packet_latencies

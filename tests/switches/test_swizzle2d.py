"""Functional tests of the 2D Swizzle-Switch model."""

import pytest

from repro.network.engine import Simulation
from repro.switches import SwizzleSwitch2D
from repro.traffic import TraceTraffic, UniformRandomTraffic


def test_rejects_tiny_radix():
    with pytest.raises(ValueError):
        SwizzleSwitch2D(1)


def test_single_packet_latency():
    switch = SwizzleSwitch2D(8)
    result = Simulation(switch, TraceTraffic([(0, 0, 5)])).run(20, drain=True)
    assert result.packets_ejected == 1
    assert result.packet_latencies == [4]


def test_full_connectivity():
    switch = SwizzleSwitch2D(8)
    events = []
    cycle = 0
    for src in range(8):
        for dst in range(8):
            if src != dst:
                events.append((cycle, src, dst))
                cycle += 8
    result = Simulation(switch, TraceTraffic(events, packet_flits=2)).run(
        cycle + 30, drain=True
    )
    assert result.packets_ejected == 56


def test_output_contention_serialises():
    """Two packets to one output: second waits for release + arb cycle."""
    switch = SwizzleSwitch2D(8)
    result = Simulation(
        switch, TraceTraffic([(0, 0, 5), (0, 1, 5)], packet_flits=4)
    ).run(40, drain=True)
    assert result.packets_ejected == 2
    # First: granted cycle 0, tail at cycle 4. Second: arbitration blocked
    # until cycle 5 (release cycle cools), tail at cycle 9.
    assert sorted(result.packet_latencies) == [4, 9]


def test_grant_safety_invariants():
    switch = SwizzleSwitch2D(16)
    traffic = UniformRandomTraffic(16, load=0.6, seed=9)
    for cycle in range(300):
        for packet in traffic.packets_for_cycle(cycle):
            switch.inject(packet)
        switch.step(cycle)
        owners = [o for o in switch.output_owner if o is not None]
        assert len(owners) == len(set(owners))
        for output, owner in enumerate(switch.output_owner):
            if owner is not None:
                assert switch.input_target[owner] == output


def test_flit_conservation():
    switch = SwizzleSwitch2D(16)
    traffic = UniformRandomTraffic(16, load=0.15, seed=4)
    result = Simulation(switch, traffic).run(500, drain=True)
    assert result.packets_ejected == result.packets_injected


def test_lrg_fairness_under_hotspot():
    """Flat LRG shares a hotspot output almost evenly across inputs."""
    from repro.metrics import jain_index
    from repro.traffic import HotspotTraffic

    switch = SwizzleSwitch2D(16)
    traffic = HotspotTraffic(16, load=0.9, hotspot_output=7, seed=3)
    sim = Simulation(switch, traffic, warmup_cycles=300)
    result = sim.run(4000)
    throughput = result.per_input_throughput(16)
    assert jain_index(throughput) > 0.99


def test_saturation_close_to_paper_anchor():
    """Uniform random saturation: paper implies ~0.667 flits/cycle/port
    at radix 64 (9.24 Tbps / 128 bit / 64 ports / 1.69 GHz)."""
    switch = SwizzleSwitch2D(64)
    traffic = UniformRandomTraffic(64, load=0.99, seed=7)
    sim = Simulation(switch, traffic, warmup_cycles=300)
    result = sim.run(1200)
    per_port = result.throughput_flits_per_cycle / 64
    assert 0.667 * 0.9 <= per_port <= 0.667 * 1.1

"""Library-wide API hygiene checks.

Walks every module under ``repro`` and asserts the public surface is
documented and coherent: every module, public class and public function
carries a docstring, and every name exported via ``__all__`` actually
resolves.  These checks keep the "production-quality" bar enforced as the
codebase grows.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_objects_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                # An override inherits its contract's documentation.
                inherited = any(
                    getattr(getattr(base, method_name, None), "__doc__", None)
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module_name}: missing docstrings on {undocumented}"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    missing = [name for name in exported if not hasattr(module, name)]
    assert not missing, f"{module_name}: __all__ names missing: {missing}"


def test_top_level_api_surface():
    """The headline API stays importable from the package root."""
    for name in repro.__all__:
        assert hasattr(repro, name)
    assert repro.FLIT_BITS == 128
    assert repro.PACKET_FLITS == 4

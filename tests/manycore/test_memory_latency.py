"""Tests of the memory-latency instrumentation."""

import pytest

from repro.manycore import BenchmarkProfile, ManyCoreSystem, SystemConfig
from repro.manycore.stats import MemoryLatencyTracker
from repro.switches import SwizzleSwitch2D


class TestTrackerUnit:
    def test_lifecycle(self):
        tracker = MemoryLatencyTracker()
        tracker.issued(1, core_id=3, cycle=10)
        assert tracker.in_flight == 1
        tracker.went_to_dram(1)
        tracker.replied(1, cycle=250)
        assert tracker.in_flight == 0
        [record] = tracker.completed
        assert record.latency == 240
        assert record.served_by_dram
        assert tracker.dram_fraction() == 1.0

    def test_duplicate_issue_rejected(self):
        tracker = MemoryLatencyTracker()
        tracker.issued(1, 0, 0)
        with pytest.raises(ValueError):
            tracker.issued(1, 0, 5)

    def test_unknown_reply_ignored(self):
        tracker = MemoryLatencyTracker()
        tracker.replied(99, cycle=5)  # attached mid-run: no crash
        assert tracker.completed == []

    def test_filters(self):
        tracker = MemoryLatencyTracker()
        tracker.issued(1, core_id=0, cycle=0)
        tracker.replied(1, cycle=10)
        tracker.issued(2, core_id=1, cycle=0)
        tracker.went_to_dram(2)
        tracker.replied(2, cycle=200)
        assert tracker.latencies(dram_only=False) == [10]
        assert tracker.latencies(dram_only=True) == [200]
        assert tracker.latencies(core_id=0) == [10]
        assert tracker.dram_fraction() == 0.5

    def test_breakdown_requires_data(self):
        with pytest.raises(ValueError):
            MemoryLatencyTracker().breakdown(0.5)


def run_system(l1_mpki=30.0, l2_mpki=10.0, cycles=4000, freq=2.0):
    profiles = [BenchmarkProfile("m", l1_mpki, l2_mpki)] * 8
    config = SystemConfig(num_cores=8, num_memory_controllers=2, seed=2)
    system = ManyCoreSystem(SwizzleSwitch2D(8), freq, profiles, config)
    system.run(cycles)
    return system


class TestSystemIntegration:
    def test_every_reply_tracked(self):
        system = run_system()
        tracker = system.memory_latency
        replied = sum(core.replies_received for core in system.cores)
        assert len(tracker.completed) == replied
        assert tracker.in_flight == sum(
            core.outstanding for core in system.cores
        )

    def test_dram_fraction_matches_profile(self):
        system = run_system(l1_mpki=40.0, l2_mpki=14.0)
        fraction = system.memory_latency.dram_fraction()
        assert fraction == pytest.approx(14.0 / 40.0, abs=0.05)

    def test_breakdown_magnitudes(self):
        """L2 hits cost a few ns (network + 3 ns bank); DRAM requests add
        the 80 ns access on top."""
        system = run_system()
        breakdown = system.memory_latency.breakdown(
            system.network_cycle_ns
        )
        assert 2.0 < breakdown.l2_hit_mean_ns < 25.0
        assert breakdown.dram_mean_ns > 80.0
        assert breakdown.dram_mean_ns < 200.0
        assert breakdown.l2_hit_mean_ns < breakdown.dram_mean_ns
        assert breakdown.completed == len(system.memory_latency.completed)

    def test_faster_network_cuts_hit_latency_in_ns(self):
        slow = run_system(freq=1.0).memory_latency.breakdown(1.0)
        fast = run_system(freq=2.5).memory_latency.breakdown(1 / 2.5)
        assert fast.l2_hit_mean_ns < slow.l2_hit_mean_ns

"""Unit tests for the many-core building blocks (core, L2 bank, MC)."""

import numpy as np
import pytest

from repro.manycore.cache import L2Bank
from repro.manycore.core import CoreParams, SyntheticCore
from repro.manycore.memctrl import MemoryController
from repro.manycore.workloads import BenchmarkProfile


def make_core(l1_mpki=50.0, l2_mpki=20.0, seed=1, **params):
    profile = BenchmarkProfile("test", l1_mpki=l1_mpki, l2_mpki=l2_mpki)
    return SyntheticCore(0, profile, CoreParams(**params), np.random.default_rng(seed))


class TestSyntheticCore:
    def test_compute_bound_core_never_misses(self):
        core = make_core(l1_mpki=0.0, l2_mpki=0.0)
        misses = core.advance(10000.0)
        assert misses == 0
        assert core.retired_instructions == 10000.0

    def test_miss_rate_matches_profile(self):
        core = make_core(l1_mpki=20.0, l2_mpki=5.0)
        total_misses = 0
        for _ in range(2000):
            total_misses += core.advance(50.0)
            # Immediately satisfy misses so the window never binds.
            while core.outstanding:
                core.receive_reply()
        measured_mpki = total_misses / core.retired_instructions * 1000
        assert measured_mpki == pytest.approx(20.0, rel=0.1)

    def test_stall_when_window_full(self):
        core = make_core(l1_mpki=1000.0, miss_window=2, mshr_limit=4)
        core.advance(1000.0)
        assert core.outstanding == 2
        assert core.stalled
        before = core.retired_instructions
        assert core.advance(100.0) == 0
        assert core.retired_instructions == before

    def test_reply_unblocks(self):
        core = make_core(l1_mpki=1000.0, miss_window=2)
        core.advance(1000.0)
        assert core.stalled
        core.receive_reply()
        assert not core.stalled
        assert core.advance(1000.0) >= 1

    def test_reply_without_miss_raises(self):
        with pytest.raises(RuntimeError):
            make_core().receive_reply()

    def test_ipc_bounded_by_width(self):
        core = make_core(l1_mpki=0.0, l2_mpki=0.0, width=2, frequency_ghz=2.0)
        budget = core.instructions_per_network_cycle(0.5)
        assert budget == pytest.approx(2.0)  # 2-wide x 2 GHz x 0.5 ns
        core.advance(budget)
        assert core.ipc(0.5) == pytest.approx(2.0)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            CoreParams(width=0)
        with pytest.raises(ValueError):
            CoreParams(miss_window=8, mshr_limit=4)


class TestL2Bank:
    def bank(self, latency=6, mshrs=4, seed=1):
        return L2Bank(0, latency, mshrs, np.random.default_rng(seed))

    def test_fixed_latency_completion(self):
        bank = self.bank(latency=6)
        assert bank.accept(core_id=1, request_id=10, l2_miss_ratio=0.0, cycle=0)
        assert bank.completions(5) == []
        done = bank.completions(6)
        assert len(done) == 1
        request, hit = done[0]
        assert request.request_id == 10
        assert hit  # miss ratio 0 -> always hits

    def test_always_misses_with_ratio_one(self):
        bank = self.bank()
        bank.accept(1, 1, l2_miss_ratio=1.0, cycle=0)
        [(request, hit)] = bank.completions(100)
        assert not hit
        assert bank.misses == 1

    def test_hit_ratio_statistics(self):
        bank = self.bank(latency=1, mshrs=1000)
        for i in range(4000):
            bank.accept(0, i, l2_miss_ratio=0.3, cycle=0)
        bank.completions(10)
        miss_rate = bank.misses / (bank.hits + bank.misses)
        assert miss_rate == pytest.approx(0.3, abs=0.03)

    def test_mshr_limit_rejects(self):
        bank = self.bank(mshrs=2)
        assert bank.accept(0, 1, 0.0, 0)
        assert bank.accept(0, 2, 0.0, 0)
        assert not bank.accept(0, 3, 0.0, 0)
        assert bank.rejected == 1
        bank.completions(10)
        assert bank.accept(0, 3, 0.0, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            L2Bank(0, 0, 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            L2Bank(0, 6, 0, np.random.default_rng(0))


class TestMemoryController:
    def test_latency(self):
        mc = MemoryController(0, access_latency_cycles=160, service_interval_cycles=2)
        mc.accept(core_id=3, request_id=9, cycle=0)
        completions = {}
        for cycle in range(0, 200):
            for request in mc.step(cycle):
                completions[request.request_id] = cycle
        assert completions == {9: 160}

    def test_bandwidth_spaces_service(self):
        mc = MemoryController(0, access_latency_cycles=10, service_interval_cycles=4)
        for i in range(3):
            mc.accept(0, i, cycle=0)
        # Service starts at 0, 4, 8 -> completions at 10, 14, 18.
        completions = {}
        for cycle in range(0, 25):
            for request in mc.step(cycle):
                completions[request.request_id] = cycle
        assert completions == {0: 10, 1: 14, 2: 18}

    def test_queue_limit(self):
        mc = MemoryController(0, 10, 1.0, queue_limit=2)
        assert mc.accept(0, 1, 0)
        assert mc.accept(0, 2, 0)
        assert not mc.accept(0, 3, 0)
        assert mc.rejected == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryController(0, 0, 1.0)
        with pytest.raises(ValueError):
            MemoryController(0, 10, 0.0)

"""Tests of dirty-line writeback traffic."""

import pytest

from repro.manycore import BenchmarkProfile, ManyCoreSystem, SystemConfig
from repro.switches import SwizzleSwitch2D


def build(writeback_fraction, cycles=3000, seed=4):
    profiles = [BenchmarkProfile("m", l1_mpki=40.0, l2_mpki=14.0)] * 8
    config = SystemConfig(
        num_cores=8, num_memory_controllers=2,
        writeback_fraction=writeback_fraction, seed=seed,
    )
    system = ManyCoreSystem(SwizzleSwitch2D(8), 2.0, profiles, config)
    system.run(cycles)
    return system


class TestWritebacks:
    def test_disabled_by_default(self):
        system = build(0.0)
        assert system.writebacks_sent == 0
        assert system.writebacks_received == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(writeback_fraction=1.5)

    def test_fraction_of_misses(self):
        system = build(0.5)
        misses = sum(core.misses_issued for core in system.cores)
        assert system.writebacks_sent == pytest.approx(misses * 0.5, rel=0.15)

    def test_writebacks_are_absorbed(self):
        """Fire-and-forget: all sent writebacks eventually arrive and no
        reply is generated for them (request accounting stays balanced)."""
        system = build(0.6, cycles=3000)
        # Cores keep issuing while we observe, so the network is never
        # empty; absorption means arrivals track departures closely.
        assert system.writebacks_received >= 0.97 * system.writebacks_sent
        assert system.writebacks_received <= system.writebacks_sent
        issued = sum(core.misses_issued for core in system.cores)
        replied = sum(core.replies_received for core in system.cores)
        in_flight = sum(core.outstanding for core in system.cores)
        assert issued == replied + in_flight

    def test_writeback_bandwidth_costs_ipc_under_pressure(self):
        """Write traffic loads the fabric: with heavy writebacks the same
        cores retire fewer instructions."""
        clean = build(0.0, seed=9)
        dirty = build(1.0, seed=9)
        retired_clean = sum(c.retired_instructions for c in clean.cores)
        retired_dirty = sum(c.retired_instructions for c in dirty.cores)
        assert retired_dirty < retired_clean

"""Integration tests of the many-core system simulation."""

import pytest

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.manycore import (
    MIXES,
    BenchmarkProfile,
    ManyCoreSystem,
    SystemConfig,
    mix_core_assignment,
    system_speedup,
)
from repro.manycore.core import CoreParams
from repro.switches import SwizzleSwitch2D


def small_system(profiles=None, cores=8, freq=2.0, seed=0):
    config = SystemConfig(num_cores=cores, num_memory_controllers=2, seed=seed)
    if profiles is None:
        profiles = [
            BenchmarkProfile("synthetic", l1_mpki=30.0, l2_mpki=10.0)
        ] * cores
    switch = SwizzleSwitch2D(cores)
    return ManyCoreSystem(switch, freq, profiles, config)


class TestConstruction:
    def test_radix_must_match_cores(self):
        with pytest.raises(ValueError):
            ManyCoreSystem(
                SwizzleSwitch2D(16), 2.0,
                [BenchmarkProfile("x", 1.0, 0.5)] * 8,
                SystemConfig(num_cores=8),
            )

    def test_profile_count_checked(self):
        with pytest.raises(ValueError):
            ManyCoreSystem(
                SwizzleSwitch2D(8), 2.0,
                [BenchmarkProfile("x", 1.0, 0.5)] * 4,
                SystemConfig(num_cores=8, num_memory_controllers=2),
            )


class TestExecution:
    def test_compute_bound_cores_run_at_full_ipc(self):
        profiles = [BenchmarkProfile("cpu", 0.0, 0.0)] * 8
        system = small_system(profiles)
        result = system.run(2000)
        for ipc in result.per_core_ipc():
            assert ipc == pytest.approx(2.0, rel=0.01)  # 2-wide, never stalls

    def test_memory_bound_cores_slow_down(self):
        heavy = [BenchmarkProfile("mem", l1_mpki=100.0, l2_mpki=35.0)] * 8
        system = small_system(heavy)
        result = system.run(3000)
        assert 0 < result.system_ipc < 1.0 * 8  # well below peak 2.0/core

    def test_requests_are_conserved(self):
        system = small_system()
        system.run(3000)
        issued = sum(core.misses_issued for core in system.cores)
        replied = sum(core.replies_received for core in system.cores)
        in_flight = sum(core.outstanding for core in system.cores)
        assert issued == replied + in_flight
        assert issued > 0

    def test_l2_miss_traffic_reaches_memory_controllers(self):
        system = small_system()
        system.run(3000)
        assert sum(mc.served for mc in system.mcs) > 0

    def test_determinism(self):
        a = small_system(seed=5).run(1500)
        b = small_system(seed=5).run(1500)
        assert a.retired_per_core == b.retired_per_core

    def test_higher_mpki_lowers_ipc(self):
        light = small_system(
            [BenchmarkProfile("l", 5.0, 2.0)] * 8, seed=1
        ).run(2500)
        heavy = small_system(
            [BenchmarkProfile("h", 120.0, 40.0)] * 8, seed=1
        ).run(2500)
        assert heavy.system_ipc < light.system_ipc

    def test_faster_network_helps_memory_bound_cores(self):
        heavy = [BenchmarkProfile("mem", 100.0, 35.0)] * 8
        slow = small_system(heavy, freq=1.0, seed=2)
        fast = small_system(heavy, freq=2.5, seed=2)
        wall_ns = 2000.0
        r_slow = slow.run(int(wall_ns * 1.0))
        r_fast = fast.run(int(wall_ns * 2.5))
        ipc_slow = r_slow.total_instructions / wall_ns
        ipc_fast = r_fast.total_instructions / wall_ns
        assert ipc_fast > ipc_slow * 1.02


class TestSpeedup:
    def test_hirise_beats_2d_on_heavy_mix(self):
        """A memory-heavy mix must show a clear Hi-Rise advantage (the
        Table VI trend), with the switches at their modelled clocks."""
        speedup = system_speedup(
            MIXES[7],  # Mix8, 76 MPKI
            lambda: SwizzleSwitch2D(64),
            lambda: HiRiseSwitch(HiRiseConfig()),
            baseline_frequency_ghz=1.69,
            candidate_frequency_ghz=2.2,
            network_cycles_baseline=4000,
        )
        assert speedup > 1.05

    def test_light_mix_speedup_is_modest(self):
        speedup = system_speedup(
            MIXES[0],  # Mix1, 15 MPKI
            lambda: SwizzleSwitch2D(64),
            lambda: HiRiseSwitch(HiRiseConfig()),
            baseline_frequency_ghz=1.69,
            candidate_frequency_ghz=2.2,
            network_cycles_baseline=4000,
        )
        assert 0.98 < speedup < 1.06

"""Tests of benchmark profiles and the Table VI workload mixes."""

import pytest

from repro.manycore import BENCHMARKS, MIXES, BenchmarkProfile, mix_core_assignment


class TestProfiles:
    def test_all_table6_benchmarks_present(self):
        expected = {
            "milc", "applu", "astar", "sjeng", "tonto", "hmmer", "sjas",
            "gcc", "sjbb", "gromacs", "xalan", "libquantum", "barnes",
            "tpcw", "povray", "swim", "leslie", "omnet", "art", "mcf",
            "ocean", "lbm", "deal", "sap", "namd", "Gems", "soplex",
        }
        assert expected == set(BENCHMARKS)

    def test_l2_never_exceeds_l1(self):
        for profile in BENCHMARKS.values():
            assert profile.l2_mpki <= profile.l1_mpki
            assert 0 <= profile.l2_miss_ratio <= 1

    def test_total_is_sum(self):
        for profile in BENCHMARKS.values():
            assert profile.total_mpki == pytest.approx(
                profile.l1_mpki + profile.l2_mpki
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("bad", l1_mpki=1.0, l2_mpki=2.0)
        with pytest.raises(ValueError):
            BenchmarkProfile("bad", l1_mpki=-1.0, l2_mpki=0.0)

    def test_memory_intensity_ordering(self):
        """mcf and Gems are the heavy hitters; sjeng/tonto are compute
        bound — matching the qualitative SPEC characterisation."""
        assert BENCHMARKS["mcf"].total_mpki > BENCHMARKS["milc"].total_mpki
        assert BENCHMARKS["Gems"].total_mpki > BENCHMARKS["astar"].total_mpki
        assert BENCHMARKS["sjeng"].total_mpki < 2
        assert BENCHMARKS["tonto"].total_mpki < 2


class TestMixes:
    def test_eight_mixes(self):
        assert [mix.name for mix in MIXES] == [f"Mix{i}" for i in range(1, 9)]

    @pytest.mark.parametrize("mix", MIXES, ids=lambda m: m.name)
    def test_avg_mpki_matches_table6(self, mix):
        """The fitted benchmark MPKIs must reproduce the avg MPKI column."""
        assert mix.avg_mpki == pytest.approx(mix.paper_avg_mpki, abs=0.15)

    @pytest.mark.parametrize("mix", MIXES, ids=lambda m: m.name)
    def test_instance_counts(self, mix):
        # Published counts; Mix7 sums to 63 in the paper.
        expected = 63 if mix.name == "Mix7" else 64
        assert mix.total_instances == expected

    def test_mpki_monotone_with_speedup_trend(self):
        """Table VI orders mixes by MPKI; speedups broadly follow."""
        mpkis = [mix.paper_avg_mpki for mix in MIXES]
        assert mpkis == sorted(mpkis)
        assert MIXES[-1].paper_speedup > MIXES[0].paper_speedup


class TestAssignment:
    def test_assignment_covers_all_instances(self):
        profiles = mix_core_assignment(MIXES[0], 64, seed=3)
        assert len(profiles) == 64
        names = sorted(p.name for p in profiles)
        expected = sorted(
            name for name, count in MIXES[0].entries for _ in range(count)
        )
        assert names == expected

    def test_mix7_pads_with_idle_core(self):
        profiles = mix_core_assignment(MIXES[6], 64, seed=0)
        assert sum(1 for p in profiles if p.name == "idle") == 1

    def test_assignment_is_seeded_shuffle(self):
        a = mix_core_assignment(MIXES[1], 64, seed=7)
        b = mix_core_assignment(MIXES[1], 64, seed=7)
        c = mix_core_assignment(MIXES[1], 64, seed=8)
        assert [p.name for p in a] == [p.name for p in b]
        assert [p.name for p in a] != [p.name for p in c]

    def test_too_many_instances_rejected(self):
        with pytest.raises(ValueError):
            mix_core_assignment(MIXES[0], 32)

"""Tests of phased (time-varying) benchmark profiles."""

import numpy as np
import pytest

from repro.manycore import BENCHMARKS, BenchmarkProfile
from repro.manycore.core import CoreParams, SyntheticCore
from repro.manycore.phases import Phase, PhasedProfile, with_phases


class TestPhase:
    def test_validation(self):
        with pytest.raises(ValueError):
            Phase(instructions=0, l1_mpki=1.0, l2_mpki=0.5)
        with pytest.raises(ValueError):
            Phase(instructions=100, l1_mpki=1.0, l2_mpki=2.0)
        with pytest.raises(ValueError):
            Phase(instructions=100, l1_mpki=-1.0, l2_mpki=0.0)


class TestPhasedProfile:
    def profile(self):
        return PhasedProfile(
            "test",
            (
                Phase(instructions=1000, l1_mpki=100.0, l2_mpki=35.0),
                Phase(instructions=3000, l1_mpki=4.0, l2_mpki=1.0),
            ),
        )

    def test_instantaneous_rates_by_position(self):
        profile = self.profile()
        assert profile.l1_mpki_at(0) == 100.0
        assert profile.l1_mpki_at(999) == 100.0
        assert profile.l1_mpki_at(1000) == 4.0
        assert profile.l1_mpki_at(3999) == 4.0
        assert profile.l1_mpki_at(4000) == 100.0  # wraps around

    def test_weighted_averages(self):
        profile = self.profile()
        assert profile.l1_mpki == pytest.approx((1000 * 100 + 3000 * 4) / 4000)
        assert profile.l2_mpki == pytest.approx((1000 * 35 + 3000 * 1) / 4000)
        assert profile.total_mpki == pytest.approx(
            profile.l1_mpki + profile.l2_mpki
        )

    def test_l2_ratio_tracks_phase(self):
        profile = self.profile()
        assert profile.l2_ratio_at(0) == pytest.approx(0.35)
        assert profile.l2_ratio_at(2000) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhasedProfile("empty", ())


class TestWithPhases:
    def test_average_preserved(self):
        base = BENCHMARKS["milc"]
        phased = with_phases(base, burst_ratio=4.0, duty_cycle=0.25)
        assert phased.l1_mpki == pytest.approx(base.l1_mpki)
        assert phased.l2_mpki == pytest.approx(base.l2_mpki)

    def test_burst_is_burstier(self):
        base = BENCHMARKS["milc"]
        phased = with_phases(base, burst_ratio=4.0, duty_cycle=0.25)
        burst, quiet = phased.phases
        assert burst.l1_mpki == pytest.approx(4 * quiet.l1_mpki)
        assert burst.l1_mpki > base.l1_mpki > quiet.l1_mpki

    def test_validation(self):
        base = BENCHMARKS["milc"]
        with pytest.raises(ValueError):
            with_phases(base, burst_ratio=0.5)
        with pytest.raises(ValueError):
            with_phases(base, duty_cycle=1.0)


class TestCoreWithPhases:
    def measured_mpki(self, profile, instructions=200_000):
        core = SyntheticCore(0, profile, CoreParams(),
                             np.random.default_rng(3))
        misses = 0
        while core.retired_instructions < instructions:
            misses += core.advance(50.0)
            while core.outstanding:
                core.receive_reply()
        return misses / core.retired_instructions * 1000

    def test_average_rate_matches_profile(self):
        profile = with_phases(
            BenchmarkProfile("x", l1_mpki=30.0, l2_mpki=10.0),
            period_instructions=5000.0,
        )
        assert self.measured_mpki(profile) == pytest.approx(30.0, rel=0.1)

    def test_miss_stream_is_phase_modulated(self):
        """Misses cluster in burst phases: per-window counts are far more
        variable than for the equal-average constant profile."""
        def fano_factor(profile):
            core = SyntheticCore(0, profile, CoreParams(mshr_limit=64,
                                                        miss_window=64),
                                 np.random.default_rng(7))
            counts = []
            for _ in range(1500):
                counts.append(core.advance(100.0))
                while core.outstanding:
                    core.receive_reply()
            return np.var(counts) / np.mean(counts)

        constant = BenchmarkProfile("c", l1_mpki=20.0, l2_mpki=7.0)
        phased = with_phases(constant, burst_ratio=8.0, duty_cycle=0.125,
                             period_instructions=4000.0)
        # The constant stream is Poisson-like (Fano ~ 1); phase modulation
        # makes it markedly over-dispersed.
        assert fano_factor(constant) == pytest.approx(1.0, abs=0.25)
        assert fano_factor(phased) > 1.8 * fano_factor(constant)

    def test_zero_rate_phase_resumes(self):
        profile = PhasedProfile(
            "onoff",
            (
                Phase(instructions=1000, l1_mpki=0.0, l2_mpki=0.0),
                Phase(instructions=1000, l1_mpki=50.0, l2_mpki=10.0),
            ),
        )
        core = SyntheticCore(0, profile, CoreParams(),
                             np.random.default_rng(5))
        misses = 0
        while core.retired_instructions < 10_000:
            misses += core.advance(100.0)
            while core.outstanding:
                core.receive_reply()
        assert misses > 0  # the memory-bound phases did fire

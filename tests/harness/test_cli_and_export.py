"""Tests of the CLI entry point and CSV export."""

import csv

import pytest

from repro.__main__ import build_parser, main
from repro.harness.export import export_rows_csv, export_series_csv
from repro.harness.tables import CostRow, SpeedupRow


class TestExportSeries:
    def test_long_format(self, tmp_path):
        series = {"A": [(1, 2.0), (3, 4.0)], "B": [(5, 6.0)]}
        path = export_series_csv(series, tmp_path / "out.csv", ["x", "y"])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["series", "x", "y"]
        assert rows[1] == ["A", "1", "2.0"]
        assert rows[3] == ["B", "5", "6.0"]

    def test_width_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_series_csv({"A": [(1, 2, 3)]}, tmp_path / "x.csv", ["x", "y"])

    def test_creates_parent_directories(self, tmp_path):
        path = export_series_csv({"A": [(1, 1)]},
                                 tmp_path / "deep" / "dir" / "x.csv",
                                 ["x", "y"])
        assert path.exists()


class TestExportRows:
    def test_cost_rows(self, tmp_path):
        row = CostRow(
            design="X", configuration="c", area_mm2=1.0, frequency_ghz=2.0,
            energy_pj=3.0, throughput_tbps=4.0, tsv_count=5,
        )
        path = export_rows_csv([row], tmp_path / "rows.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert "design" in rows[0] and "paper_area_mm2" in rows[0]
        assert rows[1][0] == "X"

    def test_speedup_rows(self, tmp_path):
        row = SpeedupRow(mix="Mix1", avg_mpki=15.0, speedup=1.02,
                         paper_avg_mpki=15.0, paper_speedup=1.02)
        path = export_rows_csv([row], tmp_path / "s.csv")
        assert path.exists()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_rows_csv([], tmp_path / "empty.csv")


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cost_command(self, capsys):
        assert main(["cost", "--design", "hirise"]) == 0
        out = capsys.readouterr().out
        assert "mm^2" in out and "GHz" in out and "6144" in out

    def test_cost_2d(self, capsys):
        assert main(["cost", "--design", "2d"]) == 0
        assert "0.672" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        code = main([
            "simulate", "--radix", "8", "--layers", "2", "--channels", "1",
            "--cycles", "300", "--warmup", "50", "--load", "0.05",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered" in out

    def test_simulate_hotspot_2d(self, capsys):
        code = main([
            "simulate", "--design", "2d", "--radix", "8",
            "--traffic", "hotspot", "--cycles", "300", "--warmup", "50",
            "--load", "0.02",
        ])
        assert code == 0
        assert "hotspot" in capsys.readouterr().out

    def test_figure_12_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig12.csv"
        assert main(["figure", "12", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "Fig 12" in capsys.readouterr().out

    def test_figure_9a(self, capsys):
        assert main(["figure", "9a"]) == 0
        assert "3D 4-Channel" in capsys.readouterr().out

    def test_invalid_choices_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "7"])
        with pytest.raises(SystemExit):
            main(["figure", "13"])

    def test_trace_command_exports_validated_traces(self, capsys, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        code = main([
            "trace", "--radix", "16", "--layers", "4", "--channels", "2",
            "--traffic", "hotspot", "--load", "0.6", "--cycles", "400",
            "--warmup", "0", "--drain",
            "--jsonl", str(jsonl), "--chrome", str(chrome), "--validate",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "traced 400 cycles" in out
        assert "p2_grant" in out
        assert "CLRG halvings" in out
        assert jsonl.exists() and chrome.exists()

    def test_trace_reference_kernel(self, capsys):
        code = main([
            "trace", "--kernel", "reference", "--radix", "8",
            "--layers", "2", "--channels", "1",
            "--cycles", "150", "--warmup", "0", "--load", "0.3",
        ])
        assert code == 0
        assert "events" in capsys.readouterr().out

    def test_trace_rejects_flat_designs(self, capsys):
        assert main(["trace", "--design", "2d", "--cycles", "50"]) == 2
        assert "hirise" in capsys.readouterr().err

    def test_stats_command_dumps_registry(self, capsys):
        code = main([
            "stats", "--radix", "8", "--layers", "2", "--channels", "1",
            "--cycles", "300", "--warmup", "50", "--load", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Begin Simulation Statistics" in out
        assert "sim.latency.mean" in out
        assert "switch.cycles_observed" in out

    def test_stats_json_mode(self, capsys):
        import json

        code = main([
            "stats", "--radix", "8", "--layers", "2", "--channels", "1",
            "--cycles", "200", "--warmup", "0", "--load", "0.1", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sim.cycles"] == 200
        assert "sim.latency" in payload

"""Tests of the CLI entry point and CSV export."""

import csv

import pytest

from repro.__main__ import build_parser, main
from repro.harness.export import export_rows_csv, export_series_csv
from repro.harness.tables import CostRow, SpeedupRow


class TestExportSeries:
    def test_long_format(self, tmp_path):
        series = {"A": [(1, 2.0), (3, 4.0)], "B": [(5, 6.0)]}
        path = export_series_csv(series, tmp_path / "out.csv", ["x", "y"])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["series", "x", "y"]
        assert rows[1] == ["A", "1", "2.0"]
        assert rows[3] == ["B", "5", "6.0"]

    def test_width_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_series_csv({"A": [(1, 2, 3)]}, tmp_path / "x.csv", ["x", "y"])

    def test_creates_parent_directories(self, tmp_path):
        path = export_series_csv({"A": [(1, 1)]},
                                 tmp_path / "deep" / "dir" / "x.csv",
                                 ["x", "y"])
        assert path.exists()


class TestExportRows:
    def test_cost_rows(self, tmp_path):
        row = CostRow(
            design="X", configuration="c", area_mm2=1.0, frequency_ghz=2.0,
            energy_pj=3.0, throughput_tbps=4.0, tsv_count=5,
        )
        path = export_rows_csv([row], tmp_path / "rows.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert "design" in rows[0] and "paper_area_mm2" in rows[0]
        assert rows[1][0] == "X"

    def test_speedup_rows(self, tmp_path):
        row = SpeedupRow(mix="Mix1", avg_mpki=15.0, speedup=1.02,
                         paper_avg_mpki=15.0, paper_speedup=1.02)
        path = export_rows_csv([row], tmp_path / "s.csv")
        assert path.exists()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_rows_csv([], tmp_path / "empty.csv")


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cost_command(self, capsys):
        assert main(["cost", "--design", "hirise"]) == 0
        out = capsys.readouterr().out
        assert "mm^2" in out and "GHz" in out and "6144" in out

    def test_cost_2d(self, capsys):
        assert main(["cost", "--design", "2d"]) == 0
        assert "0.672" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        code = main([
            "simulate", "--radix", "8", "--layers", "2", "--channels", "1",
            "--cycles", "300", "--warmup", "50", "--load", "0.05",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered" in out

    def test_simulate_hotspot_2d(self, capsys):
        code = main([
            "simulate", "--design", "2d", "--radix", "8",
            "--traffic", "hotspot", "--cycles", "300", "--warmup", "50",
            "--load", "0.02",
        ])
        assert code == 0
        assert "hotspot" in capsys.readouterr().out

    def test_figure_12_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig12.csv"
        assert main(["figure", "12", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "Fig 12" in capsys.readouterr().out

    def test_figure_9a(self, capsys):
        assert main(["figure", "9a"]) == 0
        assert "3D 4-Channel" in capsys.readouterr().out

    def test_invalid_choices_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "7"])
        with pytest.raises(SystemExit):
            main(["figure", "13"])

    def test_trace_command_exports_validated_traces(self, capsys, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        code = main([
            "trace", "--radix", "16", "--layers", "4", "--channels", "2",
            "--traffic", "hotspot", "--load", "0.6", "--cycles", "400",
            "--warmup", "0", "--drain",
            "--jsonl", str(jsonl), "--chrome", str(chrome), "--validate",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "traced 400 cycles" in out
        assert "p2_grant" in out
        assert "CLRG halvings" in out
        assert jsonl.exists() and chrome.exists()

    def test_trace_reference_kernel(self, capsys):
        code = main([
            "trace", "--kernel", "reference", "--radix", "8",
            "--layers", "2", "--channels", "1",
            "--cycles", "150", "--warmup", "0", "--load", "0.3",
        ])
        assert code == 0
        assert "events" in capsys.readouterr().out

    def test_trace_rejects_flat_designs(self, capsys):
        assert main(["trace", "--design", "2d", "--cycles", "50"]) == 2
        assert "hirise" in capsys.readouterr().err

    def test_stats_command_dumps_registry(self, capsys):
        code = main([
            "stats", "--radix", "8", "--layers", "2", "--channels", "1",
            "--cycles", "300", "--warmup", "50", "--load", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Begin Simulation Statistics" in out
        assert "sim.latency.mean" in out
        assert "switch.cycles_observed" in out

    def test_stats_json_mode(self, capsys):
        import json

        code = main([
            "stats", "--radix", "8", "--layers", "2", "--channels", "1",
            "--cycles", "200", "--warmup", "0", "--load", "0.1", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sim.cycles"] == 200
        assert "sim.latency" in payload


@pytest.fixture(scope="module")
def hotspot_jsonl(tmp_path_factory):
    """One traced hotspot run exported to JSONL, shared by audit tests."""
    path = tmp_path_factory.mktemp("audit") / "trace.jsonl"
    code = main([
        "trace", "--radix", "16", "--layers", "4", "--channels", "2",
        "--traffic", "hotspot", "--load", "0.08", "--cycles", "1500",
        "--warmup", "100", "--jsonl", str(path),
    ])
    assert code == 0
    return path


class TestTraceInspection:
    def test_summary_mode_on_a_live_run(self, capsys):
        code = main([
            "trace", "--radix", "8", "--layers", "2", "--channels", "1",
            "--cycles", "200", "--warmup", "0", "--load", "0.2",
            "--summary",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-resource totals" in out
        assert "per-port totals" in out

    def test_inspect_summary_of_existing_jsonl(self, capsys, hotspot_jsonl):
        code = main([
            "trace", "--inspect", str(hotspot_jsonl), "--summary",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "events" in out and "p2_grant" in out
        assert "int L" in out  # labelled resources

    def test_inspect_kind_filter_streams_matching_records(
        self, capsys, hotspot_jsonl
    ):
        import json

        code = main([
            "trace", "--inspect", str(hotspot_jsonl),
            "--kind", "clrg_halve",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["event"] == "meta"
        assert records[1:]
        assert all(r["event"] == "clrg_halve" for r in records[1:])

    def test_inspect_port_filter_writes_filtered_jsonl(
        self, capsys, hotspot_jsonl, tmp_path
    ):
        import json

        out_path = tmp_path / "filtered.jsonl"
        code = main([
            "trace", "--inspect", str(hotspot_jsonl),
            "--kind", "p2_grant", "--port", "2",
            "--jsonl", str(out_path),
        ])
        assert code == 0
        lines = out_path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["event"] == "meta"
        assert all(
            2 in (r.get("input"), r.get("output")) for r in records[1:]
        )

    def test_inspect_rejects_unknown_kind(self, capsys, hotspot_jsonl):
        code = main([
            "trace", "--inspect", str(hotspot_jsonl), "--kind", "bogus",
        ])
        assert code == 2
        assert "bogus" in capsys.readouterr().err

    def test_inspect_missing_file(self, capsys, tmp_path):
        code = main([
            "trace", "--inspect", str(tmp_path / "no.jsonl"), "--summary",
        ])
        assert code == 2


class TestAuditCli:
    def test_audit_emits_validated_json_and_markdown(
        self, capsys, hotspot_jsonl, tmp_path
    ):
        import json

        from repro.obs import validate_audit_summary

        json_path = tmp_path / "audit.json"
        md_path = tmp_path / "audit.md"
        code = main([
            "audit", str(hotspot_jsonl),
            "--json", str(json_path), "--markdown", str(md_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fairness" in out and "Jain" in out
        summary = validate_audit_summary(json.loads(json_path.read_text()))
        assert summary["clrg"]["halvings"] > 0
        markdown = md_path.read_text()
        assert "# Switch trace audit" in markdown
        assert "## Fairness" in markdown

    def test_audit_stats_mode(self, capsys, hotspot_jsonl):
        code = main(["audit", str(hotspot_jsonl), "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "audit.fairness.jain" in out

    def test_audit_against_itself_passes(
        self, capsys, hotspot_jsonl, tmp_path
    ):
        json_path = tmp_path / "baseline.json"
        assert main([
            "audit", str(hotspot_jsonl), "--json", str(json_path),
        ]) == 0
        capsys.readouterr()
        code = main([
            "audit", str(hotspot_jsonl), "--against", str(json_path),
        ])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_audit_against_exits_nonzero_on_injected_regression(
        self, capsys, hotspot_jsonl, tmp_path
    ):
        import json

        json_path = tmp_path / "current.json"
        assert main([
            "audit", str(hotspot_jsonl), "--json", str(json_path),
        ]) == 0
        capsys.readouterr()
        # Forge a baseline that claims a much fairer, faster run.
        baseline = json.loads(json_path.read_text())
        baseline["fairness"]["jain"] = 1.0
        baseline["traffic"]["throughput_flits_per_cycle"] *= 2.0
        forged = tmp_path / "forged.json"
        forged.write_text(json.dumps(baseline))
        code = main([
            "audit", str(hotspot_jsonl), "--against", str(forged),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "regression" in err
        assert "throughput" in err

    def test_audit_rejects_invalid_baseline(
        self, capsys, hotspot_jsonl, tmp_path
    ):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": \"wrong\"}")
        code = main([
            "audit", str(hotspot_jsonl), "--against", str(bad),
        ])
        assert code == 2
        assert "baseline" in capsys.readouterr().err

    def test_audit_missing_trace(self, capsys, tmp_path):
        assert main(["audit", str(tmp_path / "no.jsonl")]) == 2

"""Tests of the process-parallel sweep/replication executor.

The CI container may expose a single CPU, so these tests assert
*determinism* — ``workers=N`` must reproduce the serial results exactly —
rather than wall-clock speedup.
"""

import pytest

from repro.harness import parallel
from repro.harness.sweep import parameter_grid, run_sweep
from repro.metrics.confidence import replicate
from repro.network.engine import Simulation
from repro.switches import SwizzleSwitch2D
from repro.traffic import UniformRandomTraffic


def throughput_measurement(seed, radix=8, load=0.6):
    """Module-level measurement (picklable) used by the parallel tests."""
    switch = SwizzleSwitch2D(radix)
    traffic = UniformRandomTraffic(radix, load=load, seed=seed)
    result = Simulation(switch, traffic, warmup_cycles=20).run(80)
    return result.throughput_packets_per_cycle


def seed_polynomial(seed):
    """Cheap deterministic stand-in experiment."""
    return seed * seed + 0.5 * seed + 1.0


class TestParallelSweep:
    def test_parallel_sweep_matches_serial(self):
        grid = parameter_grid(radix=[4, 8], load=[0.3, 0.9])
        serial = run_sweep(throughput_measurement, grid, base_seed=3)
        parallel_points = run_sweep(
            throughput_measurement, grid, base_seed=3, workers=4
        )
        assert [p.value for p in parallel_points] == [
            p.value for p in serial
        ]
        assert [p.parameters for p in parallel_points] == [
            p.parameters for p in serial
        ]

    def test_parallel_sweep_with_replications_matches_serial(self):
        grid = parameter_grid(radix=[4], load=[0.5, 0.8])
        serial = run_sweep(throughput_measurement, grid, replications=3)
        fanned = run_sweep(
            throughput_measurement, grid, replications=3, workers=2
        )
        for a, b in zip(serial, fanned):
            assert a.value == b.value
            assert a.interval.mean == b.interval.mean
            assert a.interval.half_width == b.interval.half_width

    def test_unpicklable_measurement_falls_back_to_serial(self):
        grid = parameter_grid(radix=[4, 8])
        # A lambda cannot be pickled into worker processes; the executor
        # must fall back to the serial path and still return results.
        points = run_sweep(
            lambda seed, radix: float(radix + seed), grid, workers=4
        )
        assert [p.value for p in points] == [4.0, 8.0]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            run_sweep(throughput_measurement, [{}], workers=0)

    def test_measurement_errors_propagate(self):
        def boom(seed):
            raise RuntimeError("measurement failed")

        with pytest.raises(RuntimeError, match="measurement failed"):
            run_sweep(boom, [{}, {}], workers=2)


class TestParallelReplicate:
    def test_workers_reproduce_serial_interval(self):
        serial = replicate(seed_polynomial, num_replications=6, base_seed=2)
        fanned = replicate(
            seed_polynomial, num_replications=6, base_seed=2, workers=3
        )
        assert fanned.mean == serial.mean
        assert fanned.half_width == serial.half_width
        assert fanned.observations == serial.observations

    def test_parallel_module_replicate(self):
        interval = parallel.replicate(
            throughput_measurement,
            parameters={"radix": 4, "load": 0.5},
            num_replications=3,
            workers=2,
        )
        serial = replicate(
            lambda seed: throughput_measurement(seed, radix=4, load=0.5),
            num_replications=3,
        )
        assert interval.mean == serial.mean
        assert interval.half_width == serial.half_width

    def test_too_few_replications_rejected(self):
        with pytest.raises(ValueError):
            parallel.replicate(seed_polynomial, num_replications=1)

"""Tests of the process-parallel sweep/replication executor.

The CI container may expose a single CPU, so these tests assert
*determinism* — ``workers=N`` must reproduce the serial results exactly —
rather than wall-clock speedup.
"""

import json
import os
import time

import pytest

from repro.harness import parallel
from repro.harness.parallel import (
    CHECKPOINT_FORMAT,
    CheckpointMismatch,
    ResiliencePolicy,
    SweepCheckpoint,
    TaskFailure,
)
from repro.harness.sweep import parameter_grid, run_sweep
from repro.metrics.confidence import replicate
from repro.network.engine import Simulation
from repro.switches import SwizzleSwitch2D
from repro.traffic import UniformRandomTraffic


def throughput_measurement(seed, radix=8, load=0.6):
    """Module-level measurement (picklable) used by the parallel tests."""
    switch = SwizzleSwitch2D(radix)
    traffic = UniformRandomTraffic(radix, load=load, seed=seed)
    result = Simulation(switch, traffic, warmup_cycles=20).run(80)
    return result.throughput_packets_per_cycle


def seed_polynomial(seed):
    """Cheap deterministic stand-in experiment."""
    return seed * seed + 0.5 * seed + 1.0


def crash_once_measurement(seed, token=None):
    """Kill the whole worker process the first time a seed runs.

    A token file marks "this seed already crashed once", so the retry
    succeeds — modelling a transient worker crash (OOM kill, segfault).
    """
    marker = f"{token}.{seed}"
    if token is not None and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(1)
    return seed_polynomial(seed)


def hang_once_measurement(seed, token=None):
    """Hang far past any test timeout the first time a seed runs.

    The marker is written *before* sleeping so the retry (in a rebuilt
    pool) takes the fast path.
    """
    marker = f"{token}.{seed}"
    if token is not None and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        time.sleep(60)
    return seed_polynomial(seed)


def raise_once_measurement(seed, token=None):
    """Raise (in-process) the first time a seed runs; succeed after."""
    marker = f"{token}.{seed}"
    if token is not None and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        raise RuntimeError("transient instrument fault")
    return seed_polynomial(seed)


def always_fail_measurement(seed):
    raise RuntimeError("instrument fault")


def crash_always_measurement(seed):
    """Kill the worker on every attempt (a deterministic crasher)."""
    os._exit(1)


class TestParallelSweep:
    def test_parallel_sweep_matches_serial(self):
        grid = parameter_grid(radix=[4, 8], load=[0.3, 0.9])
        serial = run_sweep(throughput_measurement, grid, base_seed=3)
        parallel_points = run_sweep(
            throughput_measurement, grid, base_seed=3, workers=4
        )
        assert [p.value for p in parallel_points] == [
            p.value for p in serial
        ]
        assert [p.parameters for p in parallel_points] == [
            p.parameters for p in serial
        ]

    def test_parallel_sweep_with_replications_matches_serial(self):
        grid = parameter_grid(radix=[4], load=[0.5, 0.8])
        serial = run_sweep(throughput_measurement, grid, replications=3)
        fanned = run_sweep(
            throughput_measurement, grid, replications=3, workers=2
        )
        for a, b in zip(serial, fanned):
            assert a.value == b.value
            assert a.interval.mean == b.interval.mean
            assert a.interval.half_width == b.interval.half_width

    def test_unpicklable_measurement_falls_back_to_serial(self):
        grid = parameter_grid(radix=[4, 8])
        # A lambda cannot be pickled into worker processes; the executor
        # must fall back to the serial path and still return results.
        points = run_sweep(
            lambda seed, radix: float(radix + seed), grid, workers=4
        )
        assert [p.value for p in points] == [4.0, 8.0]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            run_sweep(throughput_measurement, [{}], workers=0)

    def test_measurement_errors_propagate(self):
        def boom(seed):
            raise RuntimeError("measurement failed")

        with pytest.raises(RuntimeError, match="measurement failed"):
            run_sweep(boom, [{}, {}], workers=2)


class TestParallelReplicate:
    def test_workers_reproduce_serial_interval(self):
        serial = replicate(seed_polynomial, num_replications=6, base_seed=2)
        fanned = replicate(
            seed_polynomial, num_replications=6, base_seed=2, workers=3
        )
        assert fanned.mean == serial.mean
        assert fanned.half_width == serial.half_width
        assert fanned.observations == serial.observations

    def test_parallel_module_replicate(self):
        interval = parallel.replicate(
            throughput_measurement,
            parameters={"radix": 4, "load": 0.5},
            num_replications=3,
            workers=2,
        )
        serial = replicate(
            lambda seed: throughput_measurement(seed, radix=4, load=0.5),
            num_replications=3,
        )
        assert interval.mean == serial.mean
        assert interval.half_width == serial.half_width

    def test_too_few_replications_rejected(self):
        with pytest.raises(ValueError):
            parallel.replicate(seed_polynomial, num_replications=1)


class TestResiliencePolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ResiliencePolicy(task_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            ResiliencePolicy(backoff_base=-0.1)

    def test_resilient_sweep_matches_serial_when_nothing_fails(self):
        grid = parameter_grid(radix=[4, 8], load=[0.3, 0.9])
        serial = run_sweep(throughput_measurement, grid, base_seed=3)
        supervised = run_sweep(
            throughput_measurement, grid, base_seed=3, workers=2,
            max_retries=2,
        )
        assert [p.value for p in supervised] == [p.value for p in serial]
        assert [p.parameters for p in supervised] == [
            p.parameters for p in serial
        ]

    def test_resilient_serial_path_retries_too(self, tmp_path):
        # workers=1 exercises the in-process fallback: no preemptible
        # timeouts, but retries still apply.  (The measurement must
        # *raise*, not crash — serial runs share the parent process.)
        token = str(tmp_path / "flaky")
        grid = [{"token": token}]
        points = run_sweep(
            raise_once_measurement, grid, replications=3, base_seed=0,
            workers=1, max_retries=1, backoff_base=0.0,
        )
        expected = replicate(seed_polynomial, num_replications=3, base_seed=0)
        assert points[0].interval.mean == expected.mean
        assert all(os.path.exists(f"{token}.{seed}") for seed in range(3))

    def test_worker_crash_is_retried_to_success(self, tmp_path):
        token = str(tmp_path / "crash")
        grid = parameter_grid(token=[token])
        # A pool break fails *every* in-flight future and the scheduler
        # charges one of them (it cannot tell which task killed the
        # worker), so an innocent sibling may be charged once per crash
        # round: with 4 real crashes the budget must cover innocent
        # charges on top of each task's own crash.
        points = run_sweep(
            crash_once_measurement, grid, replications=4, base_seed=0,
            workers=2, max_retries=4, backoff_base=0.0,
        )
        expected = replicate(seed_polynomial, num_replications=4, base_seed=0)
        assert points[0].interval.mean == expected.mean
        assert points[0].interval.half_width == expected.half_width
        # Every seed crashed exactly once before succeeding.
        assert all(
            os.path.exists(f"{token}.{seed}") for seed in range(4)
        )

    def test_hung_task_times_out_and_retries(self, tmp_path):
        token = str(tmp_path / "hang")
        grid = parameter_grid(token=[token])
        start = time.monotonic()
        points = run_sweep(
            hang_once_measurement, grid, replications=2, base_seed=0,
            workers=2, task_timeout=1.0, max_retries=2, backoff_base=0.0,
        )
        elapsed = time.monotonic() - start
        expected = replicate(seed_polynomial, num_replications=2, base_seed=0)
        assert points[0].interval.mean == expected.mean
        assert elapsed < 30.0  # far below the 60 s hang

    def test_exhausted_retries_raise_task_failure(self):
        with pytest.raises(TaskFailure) as excinfo:
            run_sweep(
                always_fail_measurement, [{}], workers=2,
                max_retries=1, backoff_base=0.0,
            )
        failure = excinfo.value
        assert failure.attempts == 2
        assert "instrument fault" in str(failure)
        assert isinstance(failure.cause, RuntimeError)


class TestBackoffJitter:
    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            ResiliencePolicy(backoff_jitter=1.5)
        with pytest.raises(ValueError, match="jitter"):
            ResiliencePolicy(backoff_jitter=-0.1)

    def test_deterministic_for_same_seed_key_attempt(self):
        policy = ResiliencePolicy(backoff_base=0.5, jitter_seed=7)
        assert policy.backoff_delay(2, key="fp") == \
            policy.backoff_delay(2, key="fp")
        clone = ResiliencePolicy(backoff_base=0.5, jitter_seed=7)
        assert clone.backoff_delay(2, key="fp") == \
            policy.backoff_delay(2, key="fp")

    def test_delay_stays_within_jitter_band(self):
        policy = ResiliencePolicy(
            backoff_base=0.2, backoff_cap=5.0, backoff_jitter=0.5
        )
        for attempt in range(1, 6):
            ceiling = min(0.2 * 2 ** (attempt - 1), 5.0)
            for key in ("a", "b", 3):
                delay = policy.backoff_delay(attempt, key=key)
                assert ceiling * 0.5 <= delay <= ceiling

    def test_distinct_keys_desynchronise(self):
        # The retry-storm fix: tasks failed by the same crash must not
        # retry in lockstep.
        policy = ResiliencePolicy(backoff_base=1.0)
        delays = {
            policy.backoff_delay(1, key=f"fp-{n}") for n in range(8)
        }
        assert len(delays) == 8

    def test_zero_jitter_is_pure_exponential(self):
        policy = ResiliencePolicy(backoff_base=0.1, backoff_jitter=0.0)
        assert [policy.backoff_delay(a) for a in (1, 2, 3)] == \
            [0.1, 0.2, 0.4]

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            ResiliencePolicy().backoff_delay(0)

    def test_jittered_retries_pin_serial_identical_results(self, tmp_path):
        # Jitter shifts the *sleep schedule* only; values stay
        # bit-identical to the serial, failure-free path.
        token = str(tmp_path / "flaky")
        grid = [{"token": token}]
        points = run_sweep(
            raise_once_measurement, grid, replications=3, base_seed=0,
            workers=2, max_retries=2, backoff_base=0.01,
        )
        expected = replicate(seed_polynomial, num_replications=3,
                             base_seed=0)
        assert points[0].interval.mean == expected.mean
        assert points[0].interval.half_width == expected.half_width


class TestBreakerHook:
    class _Recorder:
        """Minimal breaker duck-type that logs every executor call."""

        def __init__(self, open_after=None):
            self.crashes = []
            self.successes = []
            self.open_after = open_after

        def record_crash(self, key):
            self.crashes.append(key)
            return (
                self.open_after is not None
                and self.crashes.count(key) >= self.open_after
            )

        def record_success(self, key):
            self.successes.append(key)

        def is_open(self, key):
            return (
                self.open_after is not None
                and self.crashes.count(key) >= self.open_after
            )

    def test_successes_reach_the_breaker_keyed_by_breaker_keys(self):
        breaker = self._Recorder()
        tasks = [(seed_polynomial, {}, seed) for seed in range(3)]
        values = parallel._execute_tasks_resilient(
            tasks, workers=1,
            policy=ResiliencePolicy(
                breaker=breaker, breaker_keys=("x", "y", "z"),
            ),
        )
        assert values == [seed_polynomial(seed) for seed in range(3)]
        assert sorted(breaker.successes) == ["x", "y", "z"]
        assert breaker.crashes == []

    def test_crashes_reach_the_breaker(self, tmp_path):
        token = str(tmp_path / "crash")
        breaker = self._Recorder()
        tasks = [(crash_once_measurement, {"token": token}, 0)]
        parallel._execute_tasks_resilient(
            tasks, workers=2,
            policy=ResiliencePolicy(
                max_retries=3, backoff_base=0.0,
                breaker=breaker, breaker_keys=("the-fp",),
            ),
        )
        assert breaker.crashes == ["the-fp"]
        assert breaker.successes == ["the-fp"]

    def test_open_breaker_fails_fast_despite_retry_budget(self, tmp_path):
        breaker = self._Recorder(open_after=2)
        tasks = [(crash_always_measurement, {}, 0)]
        with pytest.raises(TaskFailure) as excinfo:
            parallel._execute_tasks_resilient(
                tasks, workers=2,
                policy=ResiliencePolicy(
                    max_retries=50, backoff_base=0.0,
                    breaker=breaker, breaker_keys=("the-fp",),
                ),
            )
        # Opened at the second crash: far below the 51-attempt budget.
        assert excinfo.value.attempts == 2
        assert breaker.crashes == ["the-fp", "the-fp"]

    def test_plain_failures_do_not_count_as_crashes(self):
        breaker = self._Recorder(open_after=1)
        tasks = [(always_fail_measurement, {}, 0)]
        with pytest.raises(TaskFailure) as excinfo:
            parallel._execute_tasks_resilient(
                tasks, workers=2,
                policy=ResiliencePolicy(
                    max_retries=2, backoff_base=0.0,
                    breaker=breaker, breaker_keys=("the-fp",),
                ),
            )
        # The retry budget, not the breaker, ended this task: raising
        # an exception is not killing a worker.
        assert excinfo.value.attempts == 3
        assert breaker.crashes == []


class TestCheckpointResume:
    def test_checkpoint_written_and_resumed(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        grid = parameter_grid(radix=[4, 8])
        first = run_sweep(
            throughput_measurement, grid, base_seed=1, workers=2,
            checkpoint=path,
        )
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines() if line.strip()
        ]
        assert lines[0]["format"] == CHECKPOINT_FORMAT
        assert lines[0]["tasks"] == 2
        assert {row["index"] for row in lines[1:]} == {0, 1}
        # Resuming replays the journal without recomputing: poison the
        # measurement and the resumed run must still return the journaled
        # values untouched.
        resumed = run_sweep(
            throughput_measurement, grid, base_seed=1, workers=2,
            checkpoint=path,
        )
        assert [p.value for p in resumed] == [p.value for p in first]
        assert len(path.read_text().splitlines()) == len(lines)

    def test_partial_checkpoint_resumes_remaining_tasks(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        tasks = [(seed_polynomial, {}, seed) for seed in range(4)]
        journal = SweepCheckpoint(path, tasks)
        journal.append(0, seed_polynomial(0), 1, 0.0)
        journal.append(2, seed_polynomial(2), 1, 0.0)
        journal.close()
        values = parallel._execute_tasks_resilient(
            tasks, workers=2, policy=ResiliencePolicy(checkpoint=path),
        )
        assert values == [seed_polynomial(seed) for seed in range(4)]
        reloaded = SweepCheckpoint(path, tasks)
        assert set(reloaded.completed) == {0, 1, 2, 3}
        reloaded.close()

    def test_mismatched_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "stale.jsonl"
        run_sweep(
            seed_polynomial, [{}], base_seed=0, checkpoint=path,
        )
        with pytest.raises(CheckpointMismatch, match="different"):
            run_sweep(
                seed_polynomial, [{}, {}], base_seed=0, checkpoint=path,
            )
        with pytest.raises(CheckpointMismatch, match="different"):
            run_sweep(
                seed_polynomial, [{}], base_seed=9, checkpoint=path,
            )

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "alien.jsonl"
        path.write_text(json.dumps({"format": "other/v1"}) + "\n")
        with pytest.raises(CheckpointMismatch, match="not a"):
            run_sweep(seed_polynomial, [{}], checkpoint=path)

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        tasks = [(seed_polynomial, {}, seed) for seed in range(3)]
        journal = SweepCheckpoint(path, tasks)
        journal.append(0, seed_polynomial(0), 1, 0.0)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 1, "val')  # crashed mid-write
        values = parallel._execute_tasks_resilient(
            tasks, workers=1, policy=ResiliencePolicy(checkpoint=path),
        )
        assert values == [seed_polynomial(seed) for seed in range(3)]

    def test_replicate_supports_resilience_keywords(self, tmp_path):
        path = tmp_path / "replicate.jsonl"
        supervised = parallel.replicate(
            seed_polynomial, num_replications=4, base_seed=2,
            workers=2, max_retries=1, checkpoint=path,
        )
        plain = replicate(seed_polynomial, num_replications=4, base_seed=2)
        assert supervised.mean == plain.mean
        assert supervised.half_width == plain.half_width
        assert path.exists()

"""Tests of the generic sweep machinery."""

import pytest

from repro.harness.sweep import (
    SweepPoint,
    parameter_grid,
    render_sweep,
    run_sweep,
    to_json,
    to_series,
)


class TestParameterGrid:
    def test_cross_product(self):
        grid = parameter_grid(a=[1, 2], b=["x", "y"])
        assert len(grid) == 4
        assert {"a": 2, "b": "y"} in grid

    def test_empty(self):
        assert parameter_grid() == [{}]

    def test_single_axis(self):
        assert parameter_grid(k=[3]) == [{"k": 3}]


class TestRunSweep:
    def test_single_replication(self):
        points = run_sweep(
            lambda seed, a: a * 10 + seed,
            parameter_grid(a=[1, 2]),
            base_seed=0,
        )
        assert [p.value for p in points] == [10.0, 20.0]
        assert all(p.interval is None for p in points)

    def test_replicated_points_carry_intervals(self):
        points = run_sweep(
            lambda seed, a: a + seed * 0.01,
            parameter_grid(a=[5]),
            replications=4,
        )
        [point] = points
        assert point.interval is not None
        assert point.interval.observations == 4
        assert point.value == pytest.approx(5.015)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep(lambda seed: 0.0, [{}], replications=0)

    def test_end_to_end_with_simulator(self):
        """Sweep saturation throughput over channel multiplicity."""
        from repro.core import HiRiseConfig, HiRiseSwitch
        from repro.metrics import saturation_throughput
        from repro.traffic import UniformRandomTraffic

        def measure(seed, channels):
            config = HiRiseConfig(
                radix=16, layers=4, channel_multiplicity=channels
            )
            return saturation_throughput(
                lambda: HiRiseSwitch(config),
                lambda load: UniformRandomTraffic(16, load, seed=seed),
                warmup_cycles=150,
                measure_cycles=600,
            )

        points = run_sweep(measure, parameter_grid(channels=[1, 4]))
        by_channels = {p.parameters["channels"]: p.value for p in points}
        assert by_channels[4] > by_channels[1]


class TestRendering:
    def test_render_includes_parameters_and_values(self):
        points = [SweepPoint({"a": 1}, 3.5)]
        text = render_sweep(points, "T")
        assert "T" in text and "a" in text and "3.5" in text

    def test_render_empty(self):
        assert "(no points)" in render_sweep([], "T")

    def test_to_series_grouping(self):
        points = [
            SweepPoint({"x": 1, "kind": "a"}, 10.0),
            SweepPoint({"x": 2, "kind": "a"}, 20.0),
            SweepPoint({"x": 1, "kind": "b"}, 30.0),
        ]
        series = to_series(points, x="x", series_by="kind")
        assert series == {"a": [(1, 10.0), (2, 20.0)], "b": [(1, 30.0)]}
        flat = to_series(points, x="x")
        assert len(flat["sweep"]) == 3

    def test_to_json_round_trips(self):
        import json

        points = run_sweep(
            lambda seed, a: a + seed * 0.01,
            parameter_grid(a=[1, 2]),
            replications=3,
        )
        payload = json.loads(to_json(points, title="demo"))
        assert payload["title"] == "demo"
        assert [p["parameters"]["a"] for p in payload["points"]] == [1, 2]
        for rendered, point in zip(payload["points"], points):
            assert rendered["value"] == point.value
            assert rendered["interval"]["observations"] == 3
            assert rendered["interval"]["half_width"] == (
                point.interval.half_width
            )

    def test_to_json_without_intervals_or_title(self):
        import json

        points = [SweepPoint({"scheme": "clrg"}, 4.0)]
        payload = json.loads(to_json(points))
        assert "title" not in payload
        assert payload["points"] == [
            {"parameters": {"scheme": "clrg"}, "value": 4.0}
        ]

"""Fast integration tests of the harness table/figure functions.

The benchmarks run these at full quality; here they run at drastically
reduced simulation lengths to validate structure, units and wiring.
"""

import math

import pytest

from repro.harness import (
    fig9a_frequency_vs_radix,
    fig9b_frequency_vs_layers,
    fig9c_energy_vs_radix,
    fig10_latency_vs_load,
    fig11b_arbitration_throughput,
    fig11c_adversarial_throughput,
    fig12_tsv_pitch,
    render_series,
    render_table,
    table1,
    table5,
    table6,
)
from repro.manycore import MIXES


class TestTables:
    def test_table1_structure(self):
        rows = table1(warmup_cycles=100, measure_cycles=400)
        assert [row.design for row in rows] == ["2D 64x64", "3D Folded [16x64]x4"]
        for row in rows:
            assert row.area_mm2 > 0
            assert row.frequency_ghz > 0
            assert row.throughput_tbps > 0
            assert row.paper_frequency_ghz is not None

    def test_table5_includes_clrg_variant(self):
        rows = table5(warmup_cycles=100, measure_cycles=400)
        assert len(rows) == 3
        assert rows[1].configuration == rows[2].configuration
        assert rows[2].paper_frequency_ghz == 2.2

    def test_table6_single_mix(self):
        rows = table6(network_cycles_baseline=1500, mixes=[MIXES[0]])
        assert len(rows) == 1
        assert rows[0].mix == "Mix1"
        assert 0.9 < rows[0].speedup < 1.2

    def test_render_table_contains_both_value_sets(self):
        rows = table1(warmup_cycles=50, measure_cycles=200)
        text = render_table(rows, "T")
        assert "0.672" in text  # paper area appears
        assert "8192" in text   # folded TSVs


class TestFigures:
    def test_fig9_series_shapes(self):
        a = fig9a_frequency_vs_radix(radices=(16, 64))
        assert set(a) == {"2D", "3D 4-Channel", "3D 2-Channel", "3D 1-Channel"}
        assert all(len(points) == 2 for points in a.values())
        b = fig9b_frequency_vs_layers(radices=(64,), layer_range=(2, 4))
        assert list(b) == ["Radix 64"]
        c = fig9c_energy_vs_radix(radices=(64,))
        assert c["2D"][0][1] == pytest.approx(71, rel=0.05)

    def test_fig10_units(self):
        series = fig10_latency_vs_load(
            loads_per_ns=(0.05,), warmup_cycles=100, measure_cycles=500
        )
        assert set(series) == {
            "2D", "3D 4-Channel", "3D 2-Channel", "3D 1-Channel", "3D Folded",
        }
        load, latency_ns, accepted = series["2D"][0]
        assert load == 0.05
        # 4-flit packet at 1.69 GHz: zero-load latency a few ns.
        assert 1.5 < latency_ns < 8.0
        assert accepted == pytest.approx(0.05 * 64, rel=0.2)

    def test_fig11b_low_load_point(self):
        series = fig11b_arbitration_throughput(
            loads_per_ns=(0.05,), warmup_cycles=100, measure_cycles=500
        )
        for name, points in series.items():
            assert points[0][1] == pytest.approx(3.2, rel=0.2), name

    def test_fig11c_keys_are_the_paper_inputs(self):
        results = fig11c_adversarial_throughput(
            warmup_cycles=200, measure_cycles=1500
        )
        for shares in results.values():
            assert sorted(shares) == [3, 7, 11, 15, 20]

    def test_fig12_reference_point(self):
        points = fig12_tsv_pitch(pitches_um=(0.8,))
        pitch, freq, area = points[0]
        assert pitch == 0.8
        assert freq == pytest.approx(2.24, rel=0.03)
        assert area == pytest.approx(0.451, rel=0.03)

    def test_render_series_formats_all_points(self):
        text = render_series({"S": [(1, 2.5)]}, "Title", ["x", "y"])
        assert "Title" in text and "[S]" in text and "2.5" in text

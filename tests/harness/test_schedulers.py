"""Tests of the scheduler-zoo comparison harness and VOQ sweep routing."""

import json

import pytest

from repro.core.config import HiRiseConfig
from repro.harness.measure import SimulationMeasurement
from repro.harness.schedulers import (
    SCHEDULER_SPECS,
    SCHEDULERS_SCHEMA,
    build_traffic,
    compare_schedulers,
    render_markdown,
    validate_comparison,
)
from repro.harness.sweep import parameter_grid, run_sweep


@pytest.fixture(scope="module")
def comparison():
    return compare_schedulers(
        radix=8, layers=2, channels=2, load=0.3, seed=1,
        warmup_cycles=40, measure_cycles=200,
        schedulers=("clrg", "islip1", "islip2", "mwm"),
        traffic=("uniform", "transpose"),
    )


class TestCompareSchedulers:
    def test_schema_validates_and_is_strict_json(self, comparison):
        validate_comparison(comparison)
        assert comparison["schema"] == SCHEDULERS_SCHEMA
        assert json.loads(json.dumps(comparison)) == comparison

    def test_matrix_covers_every_cell_with_invariants(self, comparison):
        for pattern in comparison["traffic"]:
            for name in comparison["schedulers"]:
                cell = comparison["matrix"][pattern][name]
                assert cell["invariant_cycles_checked"] > 0
                assert cell["invariant_violations"] == 0
                assert cell["throughput_packets_per_cycle"] >= 0.0

    def test_saturation_section_present(self, comparison):
        rates = comparison["saturation"]["throughput_packets_per_cycle"]
        assert set(rates) == set(comparison["schedulers"])
        assert all(rate > 0.0 for rate in rates.values())

    def test_markdown_renders_one_table_per_pattern(self, comparison):
        markdown = render_markdown(comparison)
        for pattern in comparison["traffic"]:
            assert f"## {pattern}" in markdown
        for name in comparison["schedulers"]:
            assert f"| {name} " in markdown
        assert "## saturation" in markdown

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            compare_schedulers(
                radix=8, measure_cycles=10, schedulers=("nope",),
            )

    def test_validation_rejects_mutations(self, comparison):
        broken = dict(comparison, schema="repro.schedulers/v0")
        with pytest.raises(ValueError, match="schema"):
            validate_comparison(broken)
        missing = {
            key: value for key, value in comparison.items()
            if key != "saturation"
        }
        with pytest.raises(ValueError, match="saturation"):
            validate_comparison(missing)

    def test_every_spec_names_a_buildable_config(self):
        from dataclasses import replace

        base = HiRiseConfig(radix=8, layers=2, channel_multiplicity=2)
        for overrides in SCHEDULER_SPECS.values():
            replace(base, **overrides)

    def test_traffic_zoo_names_resolve(self):
        for pattern in ("uniform", "hotspot", "bursty", "transpose",
                        "bit_complement", "bit_reverse", "shuffle"):
            source = build_traffic(pattern, 8, 0.2, 4, 1)
            assert sum(1 for _ in source.packets_for_cycle(0)) >= 0
        with pytest.raises(ValueError, match="unknown traffic"):
            build_traffic("nope", 8, 0.2, 4, 1)


class TestVOQSweepRouting:
    def test_run_sweep_crosses_voq_and_paper_schemes(self):
        # The arbitration axis routes each point through make_switch:
        # VOQ schemes on the scalar VOQ kernel, CLRG on Hi-Rise.
        measurement = SimulationMeasurement(
            config=HiRiseConfig(
                radix=8, layers=2, channel_multiplicity=2,
            ),
            metric="throughput", load=0.9,
            warmup_cycles=10, measure_cycles=80,
        )
        points = run_sweep(
            measurement,
            parameter_grid(arbitration=["clrg", "islip", "mwm"]),
        )
        assert len(points) == 3
        assert all(point.value > 0.0 for point in points)

    def test_voq_points_replicate_deterministically(self):
        measurement = SimulationMeasurement(
            config=HiRiseConfig(
                radix=8, layers=2, channel_multiplicity=2,
                arbitration="islip", islip_iterations=2,
            ),
            metric="throughput", load=0.8,
            warmup_cycles=10, measure_cycles=60,
        )
        first = run_sweep(measurement, [{}], replications=3)
        second = run_sweep(measurement, [{}], replications=3)
        assert first[0].value == second[0].value
        assert first[0].interval == second[0].interval

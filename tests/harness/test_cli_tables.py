"""CLI table regeneration (fast mode) and engine edge cases."""

import pytest

from repro.__main__ import main
from repro.network.engine import Simulation
from repro.switches import SwizzleSwitch2D
from repro.traffic import TraceTraffic


class TestCliTable:
    def test_table1_fast_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "table1.csv"
        assert main(["table", "1", "--fast", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "3D Folded" in out
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "throughput_tbps" in header


class TestEngineEdgeCases:
    def test_drain_gives_up_on_stuck_switch(self, monkeypatch):
        """A switch that can never deliver must not hang the drain loop:
        after DRAIN_IDLE_LIMIT idle cycles it raises instead of spinning."""
        from repro.network import engine as engine_module

        class StuckSwitch(SwizzleSwitch2D):
            def step(self, cycle):
                return []  # never moves anything

        monkeypatch.setattr(engine_module, "DRAIN_IDLE_LIMIT", 50)
        switch = StuckSwitch(4)
        trace = TraceTraffic([(0, 0, 1)])
        with pytest.raises(RuntimeError, match="drain made no progress"):
            Simulation(switch, trace).run(10, drain=True)
        assert switch.occupancy() > 0  # still stuck, but we surfaced it

    def test_run_zero_cycles(self):
        sim = Simulation(SwizzleSwitch2D(4), TraceTraffic([]))
        result = sim.run(0)
        assert result.cycles == 0

    def test_consecutive_runs_accumulate_cycles(self):
        sim = Simulation(SwizzleSwitch2D(4), TraceTraffic([(0, 0, 1)]))
        sim.run(5)
        assert sim.cycle == 5
        sim.run(5)
        assert sim.cycle == 10

"""Tests of the text report renderer."""

from repro.harness.report import render_series, render_table
from repro.harness.tables import CostRow, SpeedupRow


def cost_row(**overrides):
    base = dict(
        design="3D 4-Channel", configuration="[(16x28), 16.(13x1)]x4",
        area_mm2=0.454, frequency_ghz=2.19, energy_pj=44.1,
        throughput_tbps=10.4, tsv_count=6144,
        paper_area_mm2=0.451, paper_frequency_ghz=2.2,
        paper_energy_pj=44.0, paper_throughput_tbps=10.65,
        paper_tsv_count=6144,
    )
    base.update(overrides)
    return CostRow(**base)


class TestRenderTable:
    def test_cost_rows_show_measured_and_paper(self):
        text = render_table([cost_row()], "Table V")
        assert "Table V" in text
        assert "0.454" in text and "0.451" in text
        assert "6144" in text
        assert "parentheses" in text

    def test_missing_paper_values_render_dash(self):
        row = cost_row(
            paper_area_mm2=None, paper_frequency_ghz=None,
            paper_energy_pj=None, paper_throughput_tbps=None,
            paper_tsv_count=None,
        )
        text = render_table([row], "T")
        assert "( -)" in text or "(    -)" in text or "-" in text

    def test_speedup_rows(self):
        rows = [
            SpeedupRow(mix="Mix8", avg_mpki=76.0, speedup=1.19,
                       paper_avg_mpki=76.0, paper_speedup=1.15),
        ]
        text = render_table(rows, "Table VI")
        assert "Mix8" in text and "1.19" in text and "1.15" in text

    def test_mixed_precision_formatting(self):
        text = render_table([cost_row(area_mm2=0.6718234)], "T")
        assert "0.672" in text  # 3 significant digits


class TestRenderSeries:
    def test_multiple_series_blocks(self):
        series = {"A": [(1, 2.0)], "B": [(3, 4.0), (5, 6.0)]}
        text = render_series(series, "Fig X", ["x", "y"])
        assert "[A]" in text and "[B]" in text
        assert text.count("\n[") == 2

    def test_wide_points(self):
        series = {"S": [(0.05, 2.9, 3.1)]}
        text = render_series(series, "Fig 10", ["load", "lat", "acc"])
        assert "0.05" in text and "2.9" in text and "3.1" in text

"""Tests of the text report renderer."""

from repro.harness.report import (
    render_audit_markdown,
    render_series,
    render_table,
)
from repro.harness.tables import CostRow, SpeedupRow


def cost_row(**overrides):
    base = dict(
        design="3D 4-Channel", configuration="[(16x28), 16.(13x1)]x4",
        area_mm2=0.454, frequency_ghz=2.19, energy_pj=44.1,
        throughput_tbps=10.4, tsv_count=6144,
        paper_area_mm2=0.451, paper_frequency_ghz=2.2,
        paper_energy_pj=44.0, paper_throughput_tbps=10.65,
        paper_tsv_count=6144,
    )
    base.update(overrides)
    return CostRow(**base)


class TestRenderTable:
    def test_cost_rows_show_measured_and_paper(self):
        text = render_table([cost_row()], "Table V")
        assert "Table V" in text
        assert "0.454" in text and "0.451" in text
        assert "6144" in text
        assert "parentheses" in text

    def test_missing_paper_values_render_dash(self):
        row = cost_row(
            paper_area_mm2=None, paper_frequency_ghz=None,
            paper_energy_pj=None, paper_throughput_tbps=None,
            paper_tsv_count=None,
        )
        text = render_table([row], "T")
        assert "( -)" in text or "(    -)" in text or "-" in text

    def test_speedup_rows(self):
        rows = [
            SpeedupRow(mix="Mix8", avg_mpki=76.0, speedup=1.19,
                       paper_avg_mpki=76.0, paper_speedup=1.15),
        ]
        text = render_table(rows, "Table VI")
        assert "Mix8" in text and "1.19" in text and "1.15" in text

    def test_mixed_precision_formatting(self):
        text = render_table([cost_row(area_mm2=0.6718234)], "T")
        assert "0.672" in text  # 3 significant digits


class TestRenderSeries:
    def test_multiple_series_blocks(self):
        series = {"A": [(1, 2.0)], "B": [(3, 4.0), (5, 6.0)]}
        text = render_series(series, "Fig X", ["x", "y"])
        assert "[A]" in text and "[B]" in text
        assert text.count("\n[") == 2

    def test_wide_points(self):
        series = {"S": [(0.05, 2.9, 3.1)]}
        text = render_series(series, "Fig 10", ["load", "lat", "acc"])
        assert "0.05" in text and "2.9" in text and "3.1" in text


class TestRenderAuditMarkdown:
    def test_real_summary_renders_every_section(self):
        from repro.core.config import HiRiseConfig
        from repro.core.hirise import HiRiseSwitch
        from repro.network.engine import Simulation
        from repro.obs import SwitchTracer, analyze_tracer
        from repro.traffic import HotspotTraffic

        tracer = SwitchTracer(capacity=None)
        switch = HiRiseSwitch(
            HiRiseConfig(radix=16, layers=4, channel_multiplicity=2),
            tracer=tracer,
        )
        Simulation(
            switch, HotspotTraffic(16, load=0.5, hotspot_output=3, seed=2),
            warmup_cycles=0,
        ).run(measure_cycles=600)
        text = render_audit_markdown(analyze_tracer(tracer).summary())
        for heading in (
            "# Switch trace audit", "## Trace", "## Traffic",
            "## Fairness", "## Starvation", "## CLRG dynamics",
            "## Utilization", "## Anomalies",
        ):
            assert heading in text
        assert "arbitration=clrg" in text
        assert "Jain index" in text
        # Resource rows are labelled, not raw ids.
        assert "int L" in text or "ch L" in text

    def test_none_values_render_as_dashes(self):
        summary = {
            "schema": "repro.audit/v1",
            "meta": {},
            "trace": {"events": 0, "cycles": 0, "dropped": 0},
            "traffic": {},
            "service": {},
            "fairness": {"jain": None, "max_min": None},
            "starvation": {"max_gap_input": None},
            "clrg": {"halvings": 0},
            "utilization": {"busiest": []},
            "epochs": {},
            "anomalies": {"count": 0, "items": []},
        }
        text = render_audit_markdown(summary)
        assert "—" in text
        assert "No resource-hold events" in text
        assert "None flagged." in text

    def test_regression_section(self):
        summary = {
            "schema": "repro.audit/v1", "meta": {}, "trace": {},
            "traffic": {}, "service": {}, "fairness": {},
            "starvation": {}, "clrg": {}, "utilization": {},
            "epochs": {}, "anomalies": {"count": 0, "items": []},
        }
        clean = render_audit_markdown(summary, regressions=[])
        assert "No regressions" in clean
        flagged = render_audit_markdown(
            summary, regressions=["fairness.jain: 0.5 vs baseline 0.99"]
        )
        assert "## Baseline comparison" in flagged
        assert "1 regression(s)" in flagged
        assert "fairness.jain" in flagged

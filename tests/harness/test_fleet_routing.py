"""Fleet batching inside the harness executors is a pure optimisation.

``SimulationMeasurement`` describes its tasks as fleet lane plans; the
dispatchers in :mod:`repro.harness.parallel` batch compatible plans
through one fleet kernel.  Every test here asserts *bit-identical
results* against the scalar path — across sweeps, replications, worker
pools, checkpoint/resume, and the forced-scalar fallbacks (tracer or
invariant attachments).
"""

import warnings

import pytest

pytest.importorskip("numpy")

from repro.core.config import HiRiseConfig
from repro.core.fleet import FLEET_AVAILABLE
from repro.harness.measure import METRICS, SimulationMeasurement
from repro.harness.parallel import replicate
from repro.harness.sweep import parameter_grid, run_sweep

pytestmark = pytest.mark.skipif(
    not FLEET_AVAILABLE, reason="fleet routing needs numpy"
)

CONFIG = HiRiseConfig(radix=8, layers=2, channel_multiplicity=2)
GRID = parameter_grid(load=[0.4, 0.8])


def make_measurement(**overrides):
    settings = dict(
        config=CONFIG, metric="throughput",
        warmup_cycles=10, measure_cycles=60,
    )
    settings.update(overrides)
    return SimulationMeasurement(**settings)


def forced_scalar(measurement):
    """The same measurement with the fleet path disabled.

    A ``tracer_factory`` returning ``None`` attaches nothing to the
    switch (identical semantics) but marks the measurement un-batchable,
    so every task takes the scalar kernel.
    """
    clone = make_measurement(
        metric=measurement.metric, tracer_factory=lambda: None
    )
    assert clone.fleet_plan(seed=0) is None
    return clone


@pytest.mark.parametrize("metric", METRICS)
def test_sweep_values_identical_to_scalar_path(metric):
    measurement = make_measurement(metric=metric)
    assert measurement.fleet_plan(seed=0) is not None
    fleet_points = run_sweep(measurement, GRID, replications=3)
    scalar_points = run_sweep(forced_scalar(measurement), GRID,
                              replications=3)
    assert [p.value for p in fleet_points] == [
        p.value for p in scalar_points
    ]
    assert [p.interval.half_width for p in fleet_points] == [
        p.interval.half_width for p in scalar_points
    ]


def test_sweep_config_overrides_split_fleets():
    # Different radix per grid point -> incompatible plans -> separate
    # fleet groups; values still match the scalar path exactly.
    measurement = make_measurement()
    grid = parameter_grid(radix=[8, 16], load=[0.6])
    fleet_points = run_sweep(measurement, grid, replications=2)
    scalar_points = run_sweep(forced_scalar(measurement), grid,
                              replications=2)
    assert [p.value for p in fleet_points] == [
        p.value for p in scalar_points
    ]


def test_replicate_identical_to_scalar_path():
    measurement = make_measurement()
    fleet = replicate(measurement, num_replications=4, base_seed=3)
    scalar = replicate(forced_scalar(measurement), num_replications=4,
                       base_seed=3)
    assert fleet == scalar


def test_replicate_workers_identical_to_serial():
    measurement = make_measurement()
    serial = replicate(measurement, num_replications=4)
    pooled = replicate(measurement, num_replications=4, workers=2)
    assert pooled == serial


def test_replicate_dedupes_pinned_traffic_seed():
    # A pinned traffic seed makes every replication the same simulation;
    # the dispatcher must warn and run the simulation once.
    measurement = make_measurement(traffic_seed=7)
    with pytest.warns(RuntimeWarning, match="fingerprint"):
        interval = replicate(measurement, num_replications=5)
    assert interval.half_width == 0.0
    assert interval.observations == 5
    assert interval.mean == measurement(seed=0)


def test_binary_tracer_factory_keeps_fleet_path():
    # A fleet-capable tracer factory no longer forces scalar fallback:
    # the plan carries it, the fleet runs traced natively, and every
    # value stays bit-identical to the scalar traced path.
    from repro.obs.tracebin import BinaryTracerFactory

    from repro.obs.tracebin import BinaryTracer

    traced = make_measurement(tracer_factory=BinaryTracerFactory())
    assert traced.fleet_plan(seed=0) is not None
    assert traced.fleet_plan(seed=0).tracer_factory == \
        BinaryTracerFactory()

    # The scalar control attaches the same tracer type through a factory
    # that lacks the ``fleet_capable`` marker, so it takes the scalar
    # kernel with a real BinaryTracer bound to every run.
    scalar_traced = make_measurement(
        tracer_factory=lambda: BinaryTracer()
    )
    assert scalar_traced.fleet_plan(seed=0) is None
    fleet_points = run_sweep(traced, GRID, replications=3)
    scalar_points = run_sweep(scalar_traced, GRID, replications=3)
    assert [p.value for p in fleet_points] == [
        p.value for p in scalar_points
    ]


def test_perf_counters_factory_keeps_fleet_path():
    # A fleet-capable perf factory must not force scalar fallback: the
    # plan carries it, one counters object profiles the whole batch,
    # and every value stays bit-identical to the unprofiled path.
    from repro.obs.perf import PerfCountersFactory

    profiled = make_measurement(perf_factory=PerfCountersFactory())
    plan = profiled.fleet_plan(seed=0)
    assert plan is not None
    assert plan.perf_factory == PerfCountersFactory()
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # no fallback warning may fire
        fleet_points = run_sweep(profiled, GRID, replications=3)
    baseline = run_sweep(make_measurement(), GRID, replications=3)
    assert [p.value for p in fleet_points] == [
        p.value for p in baseline
    ]


def test_non_fleet_capable_perf_factory_warns_and_runs_scalar():
    # A perf attachment without the fleet_capable marker must not
    # *silently* disable fleet batching — the fallback is explicit, and
    # the scalar run still produces identical values.
    from repro.obs.perf import PerfCounters

    def bare_factory():
        return PerfCounters()

    profiled = make_measurement(perf_factory=bare_factory)
    with pytest.warns(RuntimeWarning, match="bare_factory"):
        assert profiled.fleet_plan(seed=0) is None
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        points = run_sweep(profiled, GRID, replications=2)
    baseline = run_sweep(make_measurement(), GRID, replications=2)
    assert [p.value for p in points] == [p.value for p in baseline]


def test_invariants_attachment_forces_scalar_but_same_values():
    checked = make_measurement(invariants=True)
    assert checked.fleet_plan(seed=0) is None
    plain = make_measurement()
    points = run_sweep(checked, GRID, replications=2)
    baseline = run_sweep(plain, GRID, replications=2)
    assert [p.value for p in points] == [p.value for p in baseline]


def test_checkpoint_resume_bit_identical(tmp_path):
    measurement = make_measurement()
    journal = tmp_path / "sweep.ckpt"
    first = run_sweep(measurement, GRID, replications=3,
                      checkpoint=journal)
    assert journal.exists()
    recorded = journal.read_text().strip().splitlines()
    assert len(recorded) == 1 + len(GRID) * 3  # header + one per task
    # Resume from a fully-journalled checkpoint: no task re-runs, the
    # points are reconstructed bit-identically.
    resumed = run_sweep(measurement, GRID, replications=3,
                        checkpoint=journal)
    assert [p.value for p in resumed] == [p.value for p in first]
    assert journal.read_text().strip().splitlines() == recorded
    # And both equal the plain un-checkpointed sweep.
    plain = run_sweep(measurement, GRID, replications=3)
    assert [p.value for p in plain] == [p.value for p in first]


def test_telemetry_heartbeats_cover_fleet_tasks():
    obs = pytest.importorskip("repro.obs")
    telemetry = obs.SweepTelemetry()
    measurement = make_measurement()
    points = run_sweep(measurement, GRID, replications=2,
                       telemetry=telemetry)
    baseline = run_sweep(measurement, GRID, replications=2)
    assert [p.value for p in points] == [p.value for p in baseline]
    # One heartbeat per (point, replication) task, fleet-batched or not.
    assert len(telemetry.heartbeats) == len(GRID) * 2

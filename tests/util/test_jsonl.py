"""The shared JSONL helpers (one reader to rule the crash journals)."""

import json

import pytest

from repro.util.jsonl import (
    append_jsonl,
    iter_jsonl_strict,
    iter_jsonl_tolerant,
    read_jsonl,
)


def _write_lines(path, lines):
    path.write_text("".join(line + "\n" for line in lines),
                    encoding="utf-8")


class TestStrict:
    def test_reads_every_line(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        _write_lines(path, ['{"a": 1}', "[2]", '"three"'])
        assert list(iter_jsonl_strict(path)) == [{"a": 1}, [2], "three"]

    def test_raises_on_garbled_line(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        _write_lines(path, ['{"a": 1}', '{"torn": '])
        with pytest.raises(ValueError):
            list(iter_jsonl_strict(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_jsonl_strict(tmp_path / "absent.jsonl"))


class TestTolerant:
    def test_skips_garbled_and_blank_lines(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        _write_lines(path, ['{"a": 1}', "", "not json", '{"b": 2}'])
        assert list(iter_jsonl_tolerant(path)) == [{"a": 1}, {"b": 2}]

    def test_torn_trailing_line(self, tmp_path):
        # The kill -9 shape: a flushed line, then a partial one with
        # no trailing newline.
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"torn', encoding="utf-8")
        assert list(iter_jsonl_tolerant(path)) == [{"a": 1}, {"b": 2}]


class TestReadJsonl:
    def test_returns_list(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        _write_lines(path, ['{"a": 1}'])
        assert read_jsonl(path) == [{"a": 1}]

    def test_missing_ok(self, tmp_path):
        assert read_jsonl(tmp_path / "absent.jsonl", missing_ok=True) == []

    def test_missing_raises_by_default(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_jsonl(tmp_path / "absent.jsonl")


class TestAppend:
    def test_appends_canonical_line(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        append_jsonl(path, {"b": 2, "a": 1})
        append_jsonl(path, {"c": [3]})
        text = path.read_text(encoding="utf-8")
        assert text == '{"a":1,"b":2}\n{"c":[3]}\n'
        assert read_jsonl(path) == [{"a": 1, "b": 2}, {"c": [3]}]

    def test_append_to_open_handle_flushes(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            append_jsonl(handle, {"a": 1})
            # Flushed immediately: visible to a concurrent reader
            # before the handle closes (the crash-journal property).
            assert read_jsonl(path) == [{"a": 1}]

    def test_round_trip_survives_torn_tail(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        for index in range(3):
            append_jsonl(path, {"index": index})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 3, "torn')
        rows = read_jsonl(path)
        assert rows == [{"index": 0}, {"index": 1}, {"index": 2}]


def test_consumers_share_the_reader(tmp_path):
    """The three historical readers all route through this module."""
    import inspect

    from repro.harness import parallel
    from repro.obs import analyze, perf

    assert "read_jsonl" in inspect.getsource(parallel.SweepCheckpoint._load)
    assert "read_jsonl" in inspect.getsource(perf.read_ledger)
    assert "iter_jsonl_strict" in inspect.getsource(analyze.iter_jsonl)

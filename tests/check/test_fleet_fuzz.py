"""Fleet mode of the differential fuzzer (``repro check --fuzz --fleet``).

``run_case(..., fleet_lanes=N)`` adds a fleet-vs-scalar lane-parity
check to every fuzz case; lane divergences classify as ordinary
mismatches, so the existing minimizer and ``repro.check/v1`` repro
machinery handle them unchanged.  The repro file records the lane count
so ``--replay`` re-runs the failure under the same fleet configuration.
"""

import json

import pytest

pytest.importorskip("numpy")

import repro.core.fleet as fleet_mod
from repro.check.fuzz import generate_cases, run_case, run_fuzz
from repro.check.reprofile import load_repro, replay_repro

pytestmark = pytest.mark.skipif(
    not fleet_mod.FLEET_AVAILABLE, reason="fleet fuzzing needs numpy"
)


def test_fleet_smoke_campaign_clean():
    # A short healthy campaign: every case must pass both the scalar
    # differential check and the fleet lane-parity check.
    report = run_fuzz(seed=3, cases=4, fleet_lanes=2)
    assert report.clean
    assert report.cases_run == 4


def test_run_case_fleet_lanes_clean_on_faulted_case():
    cases = [c for c in generate_cases(0, 8) if c.fault_events]
    assert cases
    outcome = run_case(cases[0], fleet_lanes=2)
    assert outcome.status == "ok"


def test_lane_divergence_minimized_and_replayable(tmp_path, monkeypatch):
    # Inject a synthetic lane divergence that only fires when a fault
    # schedule is present: the minimizer must shrink everything except
    # the last fault event while preserving the mismatch classification,
    # and the repro file must capture the lane count for replay.
    real = fleet_mod.verify_fleet_parity

    def diverge_under_faults(config, schedule=None, **kwargs):
        messages = list(real(config, schedule, **kwargs))
        if schedule is not None:
            messages.append(
                "fleet lane 1: result field 'flits_ejected' differs "
                "(synthetic)"
            )
        return messages

    monkeypatch.setattr(
        fleet_mod, "verify_fleet_parity", diverge_under_faults
    )
    report = run_fuzz(
        seed=0, cases=4, out_dir=str(tmp_path), fleet_lanes=2
    )
    faulted = sum(
        1 for case in generate_cases(0, 4) if case.fault_events
    )
    assert len(report.failures) == faulted > 0
    failure = report.failures[0]
    assert failure.outcome.status == "mismatch"
    assert "fleet lane 1" in failure.outcome.detail
    assert failure.shrink_history  # the minimizer actually shrank it
    assert failure.minimized.fault_events  # ...but kept a fault

    payload = load_repro(failure.repro_path)
    assert payload["fleet_lanes"] == 2

    # Replay honours the recorded lane count: while the divergence is
    # still present it reproduces; with healthy parity it reads ok.
    replayed = replay_repro(failure.repro_path)
    assert replayed.matches
    monkeypatch.setattr(fleet_mod, "verify_fleet_parity", real)
    healed = replay_repro(failure.repro_path)
    assert healed.outcome.status == "ok"
    assert not healed.matches


def test_pre_fleet_repro_files_replay_scalar_only(tmp_path):
    # Files written before the fleet mode have no fleet_lanes entry and
    # must keep replaying exactly as before (scalar differential only).
    case = generate_cases(3, 1)[0]
    outcome = run_case(case)
    payload = {
        "format": "repro.check/v1",
        "case": case.to_dict(),
        "outcome": outcome.to_dict(),
        "minimized": False,
        "history": [],
    }
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps(payload))
    result = replay_repro(str(path))
    assert result.matches

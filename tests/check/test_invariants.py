"""The runtime invariant hook: clean runs pass, corrupted kernels trip."""

import json

import pytest

from repro.check import (
    CHECK_CODES,
    DrainStallError,
    InvariantChecker,
    InvariantViolation,
)
from repro.core.config import ArbitrationScheme, HiRiseConfig
from repro.core.hirise import HiRiseSwitch
from repro.core.reference import ReferenceHiRiseSwitch
from repro.faults import FaultSchedule, fail_channel
from repro.network import engine as engine_module
from repro.network.engine import Simulation
from repro.obs.trace import INVARIANT, SwitchTracer
from repro.traffic import UniformRandomTraffic

KERNELS = [HiRiseSwitch, ReferenceHiRiseSwitch]


def small_config(**overrides):
    defaults = dict(radix=8, layers=2, channel_multiplicity=2)
    defaults.update(overrides)
    return HiRiseConfig(**defaults)


def run_checked(kernel_cls, config=None, cycles=150, load=0.6, seed=3,
                tracer=None, schedule=None, warmup=10):
    checker = InvariantChecker()
    switch = kernel_cls(
        config or small_config(), tracer=tracer, faults=schedule,
        invariants=checker,
    )
    traffic = UniformRandomTraffic(switch.num_ports, load, seed=seed)
    simulation = Simulation(switch, traffic, warmup_cycles=warmup)
    result = simulation.run(measure_cycles=cycles)
    return switch, checker, result


class TestCleanRuns:
    @pytest.mark.parametrize("kernel_cls", KERNELS)
    def test_checked_run_is_clean(self, kernel_cls):
        _, checker, result = run_checked(kernel_cls)
        assert checker.cycles_checked == 160
        assert result.packets_ejected > 0

    @pytest.mark.parametrize("kernel_cls", KERNELS)
    @pytest.mark.parametrize(
        "scheme", [s for s in ArbitrationScheme]
    )
    def test_every_scheme_passes(self, kernel_cls, scheme):
        config = small_config(arbitration=scheme)
        if config.uses_voq:
            # VOQ schemes run on the VOQ fabric with its own matching
            # checker (kernel_cls does not apply — there is one kernel).
            from repro.check.matching import MatchingInvariantChecker
            from repro.switches import make_switch

            checker = MatchingInvariantChecker()
            switch = make_switch(config, invariants=checker)
            traffic = UniformRandomTraffic(switch.num_ports, 0.6, seed=3)
            Simulation(switch, traffic, warmup_cycles=10).run(
                measure_cycles=100
            )
            assert checker.cycles_checked == 110
            return
        _, checker, _ = run_checked(kernel_cls, config, cycles=100)
        assert checker.cycles_checked == 110

    @pytest.mark.parametrize("kernel_cls", KERNELS)
    def test_clean_under_faults(self, kernel_cls):
        schedule = FaultSchedule(
            [fail_channel(20, 0, 1, 0), fail_channel(25, 1, 0, 1)]
        )
        _, checker, _ = run_checked(kernel_cls, schedule=schedule)
        assert checker.cycles_checked == 160

    @pytest.mark.parametrize("kernel_cls", KERNELS)
    def test_checked_run_bit_identical_to_unchecked(self, kernel_cls):
        results = []
        for invariants in (None, InvariantChecker()):
            switch = kernel_cls(small_config(), invariants=invariants)
            traffic = UniformRandomTraffic(8, 0.6, seed=3)
            simulation = Simulation(switch, traffic, warmup_cycles=10)
            results.append(simulation.run(measure_cycles=200))
        unchecked, checked = results
        for field in ("packets_injected", "packets_ejected", "flits_ejected",
                      "packet_latencies", "per_input_ejected",
                      "per_output_ejected"):
            assert getattr(unchecked, field) == getattr(checked, field)

    @pytest.mark.parametrize("kernel_cls", KERNELS)
    def test_checker_ledger_counts_injections(self, kernel_cls):
        switch, checker, result = run_checked(kernel_cls)
        assert checker.injected_flits == (
            switch.occupancy() + checker.ejected_flits
        )
        assert checker.injected_packets >= result.packets_injected

    def test_checker_binds_exactly_one_switch(self):
        checker = InvariantChecker()
        HiRiseSwitch(small_config(), invariants=checker)
        with pytest.raises(ValueError, match="exactly one switch"):
            ReferenceHiRiseSwitch(small_config(), invariants=checker)


class TestCorruptedKernels:
    """Deliberate state corruption must trip the matching invariant."""

    @pytest.mark.parametrize("kernel_cls", KERNELS)
    def test_leaked_flit_breaks_conservation(self, kernel_cls):
        checker = InvariantChecker()
        switch = kernel_cls(small_config(), invariants=checker)
        traffic = UniformRandomTraffic(8, 0.6, seed=3)
        simulation = Simulation(switch, traffic, warmup_cycles=0)
        simulation.run(measure_cycles=20)
        # Vanish every queued flit on one occupied port.
        port = next(p for p in switch.ports if p.source_queue._pending_flits)
        port.source_queue._packets.clear()
        port.source_queue._pending_flits = 0
        with pytest.raises(InvariantViolation) as excinfo:
            simulation.run(measure_cycles=5)
        assert excinfo.value.check == "flit_conservation"

    @pytest.mark.parametrize("kernel_cls", KERNELS)
    def test_double_granted_output_is_detected(self, kernel_cls):
        checker = InvariantChecker()
        switch = kernel_cls(small_config(), invariants=checker)
        traffic = UniformRandomTraffic(8, 0.7, seed=5)
        simulation = Simulation(switch, traffic, warmup_cycles=0)
        simulation.run(measure_cycles=10)
        assert switch.connections, "need at least one live path"
        # Point a second, unconnected input at an already-owned output.
        input_port, (_, output) = next(iter(switch.connections.items()))
        other = next(
            p for p in range(switch.num_ports)
            if p != input_port and p not in switch.connections
        )
        switch.output_owner[output] = other
        with pytest.raises(InvariantViolation) as excinfo:
            simulation.run(measure_cycles=5)
        assert excinfo.value.check == "path_coherence"
        assert output in excinfo.value.resources

    @pytest.mark.parametrize("kernel_cls", KERNELS)
    def test_leaked_resource_owner_is_detected(self, kernel_cls):
        checker = InvariantChecker()
        switch = kernel_cls(small_config(), invariants=checker)
        traffic = UniformRandomTraffic(8, 0.7, seed=5)
        simulation = Simulation(switch, traffic, warmup_cycles=0)
        simulation.run(measure_cycles=10)
        assert switch.connections, "need at least one live path"
        _, (resource, _) = next(iter(switch.connections.items()))
        if isinstance(switch.resource_owner, dict):
            key = next(iter(switch.resource_owner))
            del switch.resource_owner[key]
        else:
            switch.resource_owner[resource] = -1
        with pytest.raises(InvariantViolation) as excinfo:
            simulation.run(measure_cycles=5)
        assert excinfo.value.check == "path_coherence"

    def test_clrg_counter_out_of_bounds_is_detected(self):
        config = small_config(arbitration=ArbitrationScheme.CLRG)
        checker = InvariantChecker()
        switch = HiRiseSwitch(config, invariants=checker)
        traffic = UniformRandomTraffic(8, 0.6, seed=3)
        simulation = Simulation(switch, traffic, warmup_cycles=0)
        simulation.run(measure_cycles=5)
        switch.subblock_arbiters[0].counters._counts[1] = 99
        with pytest.raises(InvariantViolation) as excinfo:
            simulation.run(measure_cycles=2)
        assert excinfo.value.check == "clrg_counters"

    @pytest.mark.parametrize("kernel_cls", KERNELS)
    def test_broken_lrg_order_is_detected(self, kernel_cls):
        checker = InvariantChecker()
        switch = kernel_cls(small_config(), invariants=checker)
        arbiter = next(iter(switch.int_arbiters.values()))
        arbiter._rank[0] = arbiter._rank[1]  # duplicate recency key
        traffic = UniformRandomTraffic(8, 0.3, seed=1)
        simulation = Simulation(switch, traffic, warmup_cycles=0)
        with pytest.raises(InvariantViolation) as excinfo:
            simulation.run(measure_cycles=2)
        assert excinfo.value.check == "lrg_order"


class TestViolationStructure:
    def test_violation_carries_cycle_resources_snapshot(self):
        checker = InvariantChecker()
        switch = HiRiseSwitch(small_config(), invariants=checker)
        traffic = UniformRandomTraffic(8, 0.7, seed=5)
        simulation = Simulation(switch, traffic, warmup_cycles=0)
        simulation.run(measure_cycles=10)
        switch.resource_owner[
            next(iter(switch.connections.values()))[0]
        ] = -1
        with pytest.raises(InvariantViolation) as excinfo:
            simulation.run(measure_cycles=5)
        violation = excinfo.value
        assert violation.cycle >= 10
        assert violation.resources
        assert violation.snapshot is not None
        assert "invariants" in violation.snapshot
        record = violation.to_dict()
        json.dumps(record)  # JSON-serialisable end to end
        assert record["check"] in CHECK_CODES

    def test_traced_violation_emits_invariant_event(self):
        tracer = SwitchTracer(capacity=None)
        checker = InvariantChecker()
        switch = HiRiseSwitch(
            small_config(), tracer=tracer, invariants=checker
        )
        traffic = UniformRandomTraffic(8, 0.7, seed=5)
        simulation = Simulation(switch, traffic, warmup_cycles=0)
        simulation.run(measure_cycles=10)
        switch.resource_owner[
            next(iter(switch.connections.values()))[0]
        ] = -1
        with pytest.raises(InvariantViolation):
            simulation.run(measure_cycles=5)
        last = tracer.events[-1]
        assert last[1] == INVARIANT
        assert last[2] == CHECK_CODES["path_coherence"]


class TestDrainStallClassification:
    def test_drain_stall_is_a_structured_violation(self, monkeypatch):
        monkeypatch.setattr(engine_module, "DRAIN_IDLE_LIMIT", 25)
        schedule = FaultSchedule([
            fail_channel(0, 0, 1, channel)
            for channel in range(2)
        ] + [
            fail_channel(0, 1, 0, channel)
            for channel in range(2)
        ])
        from repro.network.packet import Packet

        switch = HiRiseSwitch(small_config(), faults=schedule)
        switch.inject(
            Packet(packet_id=1, src=0, dst=7, num_flits=4, created_cycle=0)
        )
        simulation = Simulation(
            switch, UniformRandomTraffic(8, 0.0, seed=1), warmup_cycles=0
        )
        with pytest.raises(DrainStallError) as excinfo:
            simulation.run(measure_cycles=1, drain=True)
        error = excinfo.value
        assert isinstance(error, InvariantViolation)
        assert isinstance(error, RuntimeError)
        assert error.check == "drain_stall"
        assert error.idle_cycles == 25
        assert error.occupancy > 0
        assert error.snapshot is not None
        assert "drain made no progress for 25" in str(error)

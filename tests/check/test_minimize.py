"""Greedy case minimization on synthetic failure predicates."""

from repro.check import case_size, generate_cases, minimize_case
from repro.check.fuzz import CaseSpec
from repro.faults import fail_channel, fail_input


def big_case(**overrides):
    fields = dict(
        case_id="synthetic-big",
        radix=16,
        layers=4,
        channel_multiplicity=2,
        allocation="input_binned",
        arbitration="clrg",
        num_classes=4,
        traffic="uniform",
        load=0.6,
        traffic_seed=2,
        warmup_cycles=40,
        measure_cycles=200,
        drain=True,
        fault_events=[
            fail_channel(10, 0, 3, 1).to_dict(),
            fail_channel(20, 2, 1, 0).to_dict(),
            fail_input(30, 5).to_dict(),
        ],
    )
    fields.update(overrides)
    return CaseSpec(**fields)


class TestMinimizeCase:
    def test_always_failing_case_shrinks_hard(self):
        original = big_case()
        minimized, history = minimize_case(original, lambda case: True)
        assert case_size(minimized) < case_size(original)
        assert minimized.case_id == "synthetic-big-min"
        assert history  # every accepted shrink is narrated
        # Everything shrinkable went: the predicate accepts anything.
        assert minimized.fault_events == []
        assert minimized.measure_cycles == 1
        assert minimized.warmup_cycles == 0
        assert minimized.drain is False
        assert minimized.layers == 2
        assert minimized.channel_multiplicity == 1
        assert minimized.num_classes == 2

    def test_unshrinkable_case_is_returned_unchanged(self):
        original = big_case()
        minimized, history = minimize_case(original, lambda case: False)
        assert minimized == original
        assert minimized.case_id == "synthetic-big"  # no -min suffix
        assert history == []

    def test_predicate_guarded_shrink_keeps_needed_parts(self):
        original = big_case()

        def needs_fault_and_cycles(case):
            return len(case.fault_events) >= 1 and case.measure_cycles >= 50

        minimized, _ = minimize_case(original, needs_fault_and_cycles)
        assert needs_fault_and_cycles(minimized)
        assert case_size(minimized) < case_size(original)
        assert len(minimized.fault_events) == 1

    def test_geometry_shrink_filters_stale_fault_events(self):
        from repro.check.minimize import _events_valid_for

        events = [
            fail_channel(10, 0, 3, 1).to_dict(),  # dst layer 3
            fail_channel(20, 1, 0, 1).to_dict(),  # channel index 1
            fail_channel(25, 1, 0, 0).to_dict(),  # survives everything
            fail_input(30, 5).to_dict(),          # port 5
        ]
        kept = _events_valid_for(events, radix=8, layers=2, channels=1)
        assert kept == [events[2], events[3]]
        kept = _events_valid_for(events, radix=4, layers=2, channels=1)
        assert kept == [events[2]]  # port 5 shrunk out of existence

    def test_shrinks_never_leave_stale_fault_events(self):
        # Pin the port-5 fault; every accepted geometry shrink must keep
        # its surviving events inside the shrunken geometry, and the
        # radix can never drop below 6 (that would filter port 5 and
        # flip the predicate).
        original = big_case(drain=False)

        def still_fails(case):
            return any(
                event.get("port") == 5 for event in case.fault_events
            )

        minimized, history = minimize_case(original, still_fails)
        assert history
        assert minimized.radix > 5
        assert [e.get("port") for e in minimized.fault_events] == [5]
        for event in minimized.fault_events:
            channel = event.get("channel")
            if channel is not None:
                src, dst, index = channel
                assert src < minimized.layers
                assert dst < minimized.layers
                assert index < minimized.channel_multiplicity

    def test_predicate_exception_counts_as_not_reproducing(self):
        original = big_case()

        def brittle(case):
            if case.measure_cycles < 200:
                raise RuntimeError("cannot even build this case")
            return True

        minimized, _ = minimize_case(original, brittle)
        # Cycle shrinks all blow up, but other axes still make progress.
        assert minimized.measure_cycles == 200
        assert case_size(minimized) < case_size(original)

    def test_size_metric_orders_obvious_pairs(self):
        small = big_case(
            radix=8, layers=2, measure_cycles=50, fault_events=[],
            drain=False,
        )
        assert case_size(small) < case_size(big_case())


class TestMinimizeRealFailure:
    def test_minimized_case_still_distinguishes_statuses(self):
        # Use a real run_case predicate pinned to "ok" — the minimizer
        # then shrinks while preserving the (passing) classification,
        # exactly how run_fuzz preserves a failing one.
        from repro.check import run_case

        original = generate_cases(seed=11, count=1, max_radix=8)[0]
        baseline = run_case(original).status

        minimized, _ = minimize_case(
            original, lambda case: run_case(case).status == baseline,
            max_attempts=40,
        )
        assert run_case(minimized).status == baseline
        assert case_size(minimized) <= case_size(original)

"""Repro files: round-trip, replay, CLI, and the end-to-end bug hunt."""

import json
import os

import pytest

from repro.__main__ import main
from repro.check import (
    CaseOutcome,
    load_repro,
    replay_repro,
    repro_payload,
    run_case,
    run_fuzz,
    save_repro,
)
from repro.check.fuzz import generate_cases
from repro.core.hirise import HiRiseSwitch

HISTORICAL = os.path.join(
    os.path.dirname(__file__), "data", "historical_clrg_hotspot.json"
)


class TestReproFiles:
    def test_save_load_round_trip(self, tmp_path):
        case = generate_cases(seed=3, count=1)[0]
        outcome = CaseOutcome(status="ok", detail="")
        path = str(tmp_path / "case.json")
        payload = save_repro(path, case, outcome, history=["step one"])
        loaded = load_repro(path)
        assert loaded["format"] == payload["format"] == "repro.check/v1"
        assert loaded["case"] == case
        assert loaded["outcome"]["status"] == "ok"
        assert loaded["history"] == ["step one"]
        assert loaded["minimized"] is False

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something/else"}))
        with pytest.raises(ValueError, match="not a repro.check/v1"):
            load_repro(str(path))

    def test_payload_is_json_serialisable(self):
        case = generate_cases(seed=3, count=5)[-1]
        payload = repro_payload(case, CaseOutcome(status="ok", detail=""))
        json.dumps(payload)


class TestHistoricalReplay:
    def test_checked_in_case_still_reproduces_ok(self):
        result = replay_repro(HISTORICAL)
        assert result.expected_status == "ok"
        assert result.outcome.status == "ok", result.outcome.detail
        assert result.matches

    def test_cli_replay_exits_zero(self, capsys):
        assert main(["check", "--replay", HISTORICAL]) == 0
        out = capsys.readouterr().out
        assert "reproduced" in out

    def test_cli_replay_missing_file_exits_two(self, capsys):
        assert main(["check", "--replay", "/nonexistent.json"]) == 2


class TestCliFuzz:
    def test_small_fuzz_campaign_exits_zero(self, tmp_path, capsys):
        code = main([
            "check", "--fuzz", "--seed", "7", "--cases", "3",
            "--max-radix", "8", "--out-dir", str(tmp_path),
        ])
        assert code == 0
        assert "3 cases" in capsys.readouterr().out

    def test_check_without_mode_is_usage_error(self, capsys):
        assert main(["check"]) == 2


class TestInjectedBugEndToEnd:
    """The acceptance pipeline: bug -> fuzz -> minimize -> replay."""

    @pytest.fixture
    def leaky_fast_kernel(self, monkeypatch):
        # Corrupt the fast kernel AFTER each step: free the resource
        # under a live connection. The in-step invariant check has
        # already run, so the checker catches it on the next cycle.
        original_step = HiRiseSwitch.step

        def buggy_step(self, cycle):
            ejected = original_step(self, cycle)
            if self.connections:
                resource, _ = next(iter(self.connections.values()))
                self.resource_owner[resource] = -1
            return ejected

        monkeypatch.setattr(HiRiseSwitch, "step", buggy_step)

    def test_fuzz_finds_minimizes_and_replay_confirms(
        self, leaky_fast_kernel, tmp_path, capsys
    ):
        report = run_fuzz(
            seed=7, cases=4, max_radix=8, out_dir=str(tmp_path)
        )
        assert not report.clean
        failure = report.failures[0]
        assert failure.outcome.status == "violation"
        assert "path_coherence" in failure.outcome.detail
        # Minimization made progress and wrote a replayable file.
        assert failure.minimized.case_id.endswith("-min")
        assert failure.shrink_history
        assert failure.repro_path and os.path.exists(failure.repro_path)

        payload = load_repro(failure.repro_path)
        assert payload["minimized"] is True
        assert payload["outcome"]["status"] == "violation"

        # With the bug still active the repro reproduces: CLI exit 0.
        assert main(["check", "--replay", failure.repro_path]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_replay_flags_fixed_bug_as_divergence(
        self, tmp_path, monkeypatch
    ):
        original_step = HiRiseSwitch.step

        def buggy_step(self, cycle):
            ejected = original_step(self, cycle)
            if self.connections:
                resource, _ = next(iter(self.connections.values()))
                self.resource_owner[resource] = -1
            return ejected

        monkeypatch.setattr(HiRiseSwitch, "step", buggy_step)
        report = run_fuzz(
            seed=7, cases=4, max_radix=8, out_dir=str(tmp_path)
        )
        repro_path = report.failures[0].repro_path

        # "Fix" the bug; the recorded violation must no longer replay.
        monkeypatch.setattr(HiRiseSwitch, "step", original_step)
        result = replay_repro(repro_path)
        assert result.expected_status == "violation"
        assert result.outcome.status == "ok"
        assert not result.matches
        assert main(["check", "--replay", repro_path]) == 1


class TestGoldenEquivalenceUnchanged:
    def test_fuzz_cases_bit_identical_without_invariants(self):
        # invariants=False runs the exact kernels the golden suite pins;
        # a clean differential pass means checker-off is untouched.
        for case in generate_cases(seed=21, count=3, max_radix=8):
            outcome = run_case(case, invariants=False)
            assert outcome.status == "ok", (case.case_id, outcome.detail)

"""Determinism and well-formedness of the differential fuzzer."""

import json

import pytest

from repro.check import CaseSpec, generate_cases, run_case
from repro.check.fuzz import ALLOCATIONS, ARBITRATIONS, TRAFFIC_KINDS


class TestGenerateCases:
    def test_same_seed_yields_identical_case_list(self):
        first = generate_cases(seed=5, count=12)
        second = generate_cases(seed=5, count=12)
        assert [c.to_dict() for c in first] == [c.to_dict() for c in second]

    def test_different_seeds_differ(self):
        first = [c.to_dict() for c in generate_cases(seed=1, count=12)]
        second = [c.to_dict() for c in generate_cases(seed=2, count=12)]
        assert first != second

    def test_case_ids_encode_seed_and_index(self):
        cases = generate_cases(seed=9, count=3)
        assert [c.case_id for c in cases] == [
            "fuzz-9-000", "fuzz-9-001", "fuzz-9-002"
        ]

    def test_generated_cases_respect_constraints(self):
        for case in generate_cases(seed=3, count=60, max_radix=16):
            assert case.radix <= 16
            assert case.radix % case.layers == 0
            assert case.channel_multiplicity <= case.radix // case.layers
            assert case.allocation in ALLOCATIONS
            assert case.arbitration in ARBITRATIONS
            assert case.traffic in TRAFFIC_KINDS
            assert 0.0 < case.load < 1.0
            # Drain cases never carry faults: an unrepaired stuck input
            # or partition legitimately never drains.
            if case.drain:
                assert not case.fault_events
            # Geometry must actually build.
            config = case.build_config()
            traffic = case.build_traffic(config)
            assert traffic is not None

    def test_max_radix_is_honoured(self):
        for case in generate_cases(seed=4, count=40, max_radix=8):
            assert case.radix <= 8


class TestCaseSpecRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        for case in generate_cases(seed=7, count=20):
            wire = json.dumps(case.to_dict())
            back = CaseSpec.from_dict(json.loads(wire))
            assert back == case

    def test_from_dict_rejects_unknown_fields(self):
        record = generate_cases(seed=7, count=1)[0].to_dict()
        record["surprise"] = True
        with pytest.raises(ValueError, match="unknown CaseSpec field"):
            CaseSpec.from_dict(record)


class TestRunCase:
    def test_small_clean_case_is_ok(self):
        case = CaseSpec(
            case_id="unit-small",
            radix=8,
            layers=2,
            channel_multiplicity=2,
            allocation="input_binned",
            arbitration="l2l_lrg",
            num_classes=4,
            traffic="uniform",
            load=0.5,
            traffic_seed=3,
            warmup_cycles=5,
            measure_cycles=40,
        )
        outcome = run_case(case)
        assert outcome.status == "ok"
        assert outcome.mismatches == []
        assert outcome.violation is None

    def test_every_traffic_kind_runs(self):
        params = {
            "uniform": {},
            "hotspot": {"background_load": 0.05},
            "bursty": {"burst_length": 6},
            "adversarial": {"demands": "interlayer"},
            "permutation": {"pattern": "transpose"},
        }
        for kind in TRAFFIC_KINDS:
            case = CaseSpec(
                case_id=f"unit-{kind}",
                radix=8,
                layers=2,
                channel_multiplicity=2,
                allocation="output_binned",
                arbitration="clrg",
                num_classes=3,
                traffic=kind,
                load=0.4,
                traffic_seed=1,
                traffic_params=params[kind],
                warmup_cycles=5,
                measure_cycles=30,
            )
            outcome = run_case(case)
            assert outcome.status == "ok", (kind, outcome.detail)

"""Tests of the mesh-as-a-switch adapter and the kilo-core system."""

import pytest

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.manycore import BenchmarkProfile, ManyCoreSystem, SystemConfig
from repro.network.engine import Simulation
from repro.topology import MeshConfig, MeshInterconnect, MeshNetwork
from repro.traffic import TraceTraffic, UniformRandomTraffic


def build_interconnect(rows=2, cols=2, concentration=8, channels=2):
    config = MeshConfig(rows=rows, cols=cols, concentration=concentration,
                        layers=4)
    mesh = MeshNetwork(
        config,
        lambda radix: HiRiseSwitch(
            HiRiseConfig(radix=radix, layers=4,
                         channel_multiplicity=channels)
        ),
    )
    return MeshInterconnect(mesh)


class TestPortMapping:
    def test_roundtrip(self):
        interconnect = build_interconnect()
        assert interconnect.num_ports == 32
        for port in range(32):
            node, terminal = interconnect.locate(port)
            assert interconnect.global_port(node, terminal) == port

    def test_out_of_range(self):
        interconnect = build_interconnect()
        with pytest.raises(ValueError):
            interconnect.locate(32)
        with pytest.raises(ValueError):
            interconnect.global_port((0, 0), 8)


class TestAsSwitchModel:
    def test_delivers_with_simulation_engine(self):
        interconnect = build_interconnect()
        trace = TraceTraffic([(0, 0, 31), (0, 9, 17), (4, 3, 3 + 8)],
                             packet_flits=2)
        result = Simulation(interconnect, trace).run(150, drain=True)
        assert result.packets_ejected == 3
        assert interconnect.occupancy() == 0

    def test_payload_travels_end_to_end(self):
        interconnect = build_interconnect()
        from repro.network.packet import PacketFactory

        packet = PacketFactory(2).create(0, 31, 0, payload="hello")
        interconnect.inject(packet)
        payloads = []
        for cycle in range(100):
            for flit in interconnect.step(cycle):
                payloads.append(flit.payload)
        assert payloads == ["hello"]

    def test_uniform_traffic_conservation(self):
        interconnect = build_interconnect()
        traffic = UniformRandomTraffic(32, 0.05, seed=13, packet_flits=2)
        result = Simulation(interconnect, traffic).run(400, drain=True)
        assert result.packets_ejected == result.packets_injected

    def test_latency_reflects_distance(self):
        interconnect = build_interconnect()
        # Same node (port 0 -> 5) vs diagonal corner (port 0 -> 31).
        near = TraceTraffic([(0, 0, 5)], packet_flits=1)
        far = TraceTraffic([(0, 0, 31)], packet_flits=1)
        r_near = Simulation(build_interconnect(), near).run(80, drain=True)
        r_far = Simulation(build_interconnect(), far).run(80, drain=True)
        assert r_far.packet_latencies[0] > r_near.packet_latencies[0]


class TestKiloCoreSystem:
    def test_manycore_runs_on_mesh(self):
        """The 64-core system runs unchanged on a mesh interconnect."""
        interconnect = build_interconnect(rows=2, cols=2, concentration=16)
        assert interconnect.num_ports == 64
        profiles = [BenchmarkProfile("m", l1_mpki=20.0, l2_mpki=7.0)] * 64
        system = ManyCoreSystem(
            interconnect, 2.0, profiles,
            SystemConfig(num_cores=64, num_memory_controllers=4),
        )
        result = system.run(2500)
        assert result.total_instructions > 0
        issued = sum(core.misses_issued for core in system.cores)
        replied = sum(core.replies_received for core in system.cores)
        in_flight = sum(core.outstanding for core in system.cores)
        assert issued == replied + in_flight
        assert issued > 0

    def test_mesh_system_slower_than_single_switch(self):
        """Multi-hop mesh latency costs IPC versus one radix-64 switch on
        the same (memory-heavy) workload."""
        profiles = [BenchmarkProfile("m", l1_mpki=80.0, l2_mpki=28.0)] * 64
        config = SystemConfig(num_cores=64, num_memory_controllers=4, seed=1)

        single = ManyCoreSystem(
            HiRiseSwitch(HiRiseConfig()), 2.0, profiles, config
        )
        meshed = ManyCoreSystem(
            build_interconnect(rows=2, cols=2, concentration=16),
            2.0, profiles, config,
        )
        r_single = single.run(2500)
        r_mesh = meshed.run(2500)
        assert r_mesh.system_ipc < r_single.system_ipc

"""Tests of XY routing and the mesh of 3D switches."""

import pytest

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.switches import SwizzleSwitch2D
from repro.topology import MeshConfig, MeshNetwork, RoutingDecision, xy_route
from repro.topology.routing import hop_count


class TestXYRouting:
    def test_local(self):
        assert xy_route((2, 3), (2, 3)) is RoutingDecision.LOCAL

    def test_x_corrected_first(self):
        assert xy_route((0, 0), (3, 2)) is RoutingDecision.EAST
        assert xy_route((3, 0), (1, 2)) is RoutingDecision.WEST

    def test_y_after_x(self):
        assert xy_route((2, 0), (2, 3)) is RoutingDecision.NORTH
        assert xy_route((2, 3), (2, 1)) is RoutingDecision.SOUTH

    def test_hop_count(self):
        assert hop_count((0, 0), (3, 2)) == 5
        assert hop_count((1, 1), (1, 1)) == 0


class TestMeshConfig:
    def test_radix_includes_mesh_ports(self):
        config = MeshConfig(concentration=12)
        assert config.radix == 16
        assert config.total_terminals == 4 * 4 * 12

    def test_mesh_ports_spread_over_layers(self):
        config = MeshConfig(concentration=12, layers=4)
        layers = {
            direction: config.mesh_port(direction) // (config.radix // 4)
            for direction in (
                RoutingDecision.EAST,
                RoutingDecision.WEST,
                RoutingDecision.NORTH,
                RoutingDecision.SOUTH,
            )
        }
        assert sorted(layers.values()) == [0, 1, 2, 3]

    def test_terminal_ports_disjoint_from_mesh_ports(self):
        config = MeshConfig(concentration=12, layers=4)
        mesh = {
            config.mesh_port(d)
            for d in (
                RoutingDecision.EAST,
                RoutingDecision.WEST,
                RoutingDecision.NORTH,
                RoutingDecision.SOUTH,
            )
        }
        terminals = {config.terminal_port(t) for t in range(12)}
        assert not mesh & terminals
        assert len(terminals) == 12
        assert mesh | terminals == set(range(16))

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshConfig(rows=0)
        with pytest.raises(ValueError):
            MeshConfig(concentration=0)
        with pytest.raises(ValueError):
            MeshConfig().terminal_port(12)


def hirise_mesh(rows=2, cols=2, concentration=12):
    config = MeshConfig(rows=rows, cols=cols, concentration=concentration)
    return MeshNetwork(
        config,
        lambda radix: HiRiseSwitch(
            HiRiseConfig(radix=radix, layers=4, channel_multiplicity=2)
        ),
    )


class TestMeshNetwork:
    def test_local_delivery_same_node(self):
        mesh = hirise_mesh()
        packet = mesh.create_packet((0, 0), 0, (0, 0), 5)
        mesh.run(30)
        assert packet.delivered_cycle is not None
        assert packet.hops == 0

    def test_cross_mesh_delivery_and_hop_count(self):
        mesh = hirise_mesh()
        packet = mesh.create_packet((0, 0), 0, (1, 1), 3)
        mesh.run(80)
        assert packet.delivered_cycle is not None
        assert packet.hops == hop_count((0, 0), (1, 1)) == 2

    def test_all_pairs_delivery(self):
        mesh = hirise_mesh()
        packets = []
        for src in mesh.nodes:
            for dst in mesh.nodes:
                packets.append(mesh.create_packet(src, 1, dst, 2, num_flits=2))
        mesh.run(400)
        assert all(p.delivered_cycle is not None for p in packets)
        assert mesh.occupancy() == 0

    def test_latency_grows_with_distance(self):
        mesh = hirise_mesh(rows=4, cols=4)
        near = mesh.create_packet((0, 0), 0, (0, 1), 0)
        far = mesh.create_packet((0, 0), 1, (3, 3), 0)
        mesh.run(300)
        assert near.latency < far.latency

    def test_works_with_flat_switch_routers(self):
        config = MeshConfig(rows=2, cols=2, concentration=4, layers=1)
        mesh = MeshNetwork(config, lambda radix: SwizzleSwitch2D(radix))
        packet = mesh.create_packet((0, 0), 0, (1, 1), 3)
        mesh.run(100)
        assert packet.delivered_cycle is not None

    def test_factory_radix_checked(self):
        config = MeshConfig(rows=1, cols=1, concentration=4)
        with pytest.raises(ValueError):
            MeshNetwork(config, lambda radix: SwizzleSwitch2D(radix + 1))

    def test_kilocore_scale_configuration(self):
        """A 4x4 mesh of radix-64 Hi-Rise switches with concentration 60
        reaches 960 terminals — the kilo-core regime of Section VI-E."""
        config = MeshConfig(rows=4, cols=4, concentration=60, layers=4)
        assert config.radix == 64
        assert config.total_terminals == 960

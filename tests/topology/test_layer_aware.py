"""Tests of multi-link mesh routing and the layer-aware extension."""

import numpy as np
import pytest

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import ProbedSwitch
from repro.topology import MeshConfig, MeshNetwork, RoutingDecision

DIRECTIONS = (
    RoutingDecision.EAST,
    RoutingDecision.WEST,
    RoutingDecision.NORTH,
    RoutingDecision.SOUTH,
)


class TestMultiLinkConfig:
    def test_radix_grows_with_links(self):
        config = MeshConfig(concentration=8, layers=4, links_per_direction=2)
        assert config.radix == 16

    def test_single_link_keeps_legacy_port_layout(self):
        single = MeshConfig(concentration=12, layers=4)
        layers = {
            single.port_layer(single.mesh_port(d)) for d in DIRECTIONS
        }
        assert layers == {0, 1, 2, 3}

    def test_links_of_one_direction_span_layers(self):
        config = MeshConfig(concentration=8, layers=4, links_per_direction=4,
                            rows=2, cols=2)
        layers = {
            config.port_layer(config.mesh_port(RoutingDecision.EAST, link))
            for link in range(4)
        }
        assert layers == {0, 1, 2, 3}

    def test_ports_all_distinct(self):
        config = MeshConfig(concentration=8, layers=4, links_per_direction=2)
        ports = list(config.all_mesh_ports())
        assert len(ports) == len(set(ports)) == 8
        terminals = {config.terminal_port(t) for t in range(8)}
        assert not terminals & set(ports)

    def test_link_for_layer_prefers_same_layer(self):
        config = MeshConfig(concentration=8, layers=4, links_per_direction=4,
                            rows=2, cols=2)
        for layer in range(4):
            link = config.link_for_layer(RoutingDecision.EAST, layer)
            port = config.mesh_port(RoutingDecision.EAST, link)
            assert config.port_layer(port) == layer

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshConfig(links_per_direction=0)
        with pytest.raises(ValueError):
            MeshConfig(concentration=9, layers=4)  # radix 13 not divisible
        with pytest.raises(ValueError):
            MeshConfig(concentration=12, layers=4).mesh_port(
                RoutingDecision.EAST, link=1
            )


def build_mesh(layer_aware, seed=3):
    config = MeshConfig(
        rows=2, cols=2, concentration=8, layers=4,
        links_per_direction=4, layer_aware=layer_aware,
    )
    probes = {}

    def factory(radix):
        probe = ProbedSwitch(
            HiRiseSwitch(HiRiseConfig(radix=radix, layers=4,
                                      channel_multiplicity=2))
        )
        probes[len(probes)] = probe
        return probe

    return MeshNetwork(config, factory), probes


def drive_uniform(mesh, seed=3, packets=200, cycles=500):
    rng = np.random.default_rng(seed)
    created = []
    for _ in range(packets):
        src = (int(rng.integers(2)), int(rng.integers(2)))
        dst = (int(rng.integers(2)), int(rng.integers(2)))
        created.append(
            mesh.create_packet(
                src, int(rng.integers(8)), dst, int(rng.integers(8)),
                num_flits=2,
            )
        )
        mesh.step()
    mesh.run(cycles)
    return created


class TestLayerAwareRouting:
    def test_delivery_under_both_modes(self):
        for layer_aware in (False, True):
            mesh, _ = build_mesh(layer_aware)
            packets = drive_uniform(mesh)
            assert all(p.delivered_cycle is not None for p in packets)

    def test_layer_aware_reduces_vertical_channel_traffic(self):
        """Keeping transiting packets on their entry layer must lower the
        routers' L2LC utilization (Section VI-E's motivation)."""
        naive_mesh, naive_probes = build_mesh(layer_aware=False)
        aware_mesh, aware_probes = build_mesh(layer_aware=True)
        drive_uniform(naive_mesh)
        drive_uniform(aware_mesh)
        naive_util = sum(
            p.mean_channel_utilization() for p in naive_probes.values()
        )
        aware_util = sum(
            p.mean_channel_utilization() for p in aware_probes.values()
        )
        assert aware_util < naive_util

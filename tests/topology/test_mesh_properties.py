"""Property-based tests of the mesh network (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.switches import SwizzleSwitch2D
from repro.topology import MeshConfig, MeshNetwork
from repro.topology.routing import hop_count


@st.composite
def mesh_cases(draw):
    rows = draw(st.integers(min_value=1, max_value=3))
    cols = draw(st.integers(min_value=1, max_value=3))
    concentration = draw(st.sampled_from([4, 8]))
    use_hirise = draw(st.booleans())
    packets = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=cols - 1),
                st.integers(min_value=0, max_value=rows - 1),
                st.integers(min_value=0, max_value=concentration - 1),
                st.integers(min_value=0, max_value=cols - 1),
                st.integers(min_value=0, max_value=rows - 1),
                st.integers(min_value=0, max_value=concentration - 1),
            ),
            min_size=1,
            max_size=20,
        )
    )
    return rows, cols, concentration, use_hirise, packets


def build(rows, cols, concentration, use_hirise):
    config = MeshConfig(rows=rows, cols=cols, concentration=concentration,
                        layers=4)
    if use_hirise:
        factory = lambda radix: HiRiseSwitch(
            HiRiseConfig(radix=radix, layers=4, channel_multiplicity=1)
        )
    else:
        factory = lambda radix: SwizzleSwitch2D(radix)
    return MeshNetwork(config, factory)


class TestMeshProperties:
    @given(mesh_cases())
    @settings(max_examples=30, deadline=None)
    def test_everything_delivered_with_exact_hop_counts(self, case):
        """All packets deliver; each takes exactly the Manhattan distance
        in mesh hops (XY routing is minimal and livelock-free)."""
        rows, cols, concentration, use_hirise, specs = case
        mesh = build(rows, cols, concentration, use_hirise)
        packets = []
        for sx, sy, st_, dx, dy, dt in specs:
            packets.append(
                mesh.create_packet((sx, sy), st_, (dx, dy), dt, num_flits=2)
            )
            mesh.step()
        mesh.run(600)
        for packet in packets:
            assert packet.delivered_cycle is not None
            assert packet.hops == hop_count(packet.src_node, packet.dst_node)
        assert mesh.occupancy() == 0

    @given(mesh_cases())
    @settings(max_examples=15, deadline=None)
    def test_latency_at_least_serialisation_plus_hops(self, case):
        rows, cols, concentration, use_hirise, specs = case
        mesh = build(rows, cols, concentration, use_hirise)
        packets = []
        for sx, sy, st_, dx, dy, dt in specs:
            packets.append(
                mesh.create_packet((sx, sy), st_, (dx, dy), dt, num_flits=2)
            )
            mesh.step()
        mesh.run(600)
        for packet in packets:
            minimum = 2 * (packet.hops + 1) - 1  # 2 flits per traversal
            assert packet.latency >= minimum

#!/usr/bin/env python3
"""Kilo-core NoC: a 2D mesh of Hi-Rise switches (Fig 13, Section VI-E).

Builds a 4x4 mesh whose routers are 4-layer Hi-Rise switches with
concentration 60 (960 terminals — the kilo-core regime), injects uniform
random terminal-to-terminal traffic, and reports delivery latency by mesh
hop count.  XY routing is dimension-ordered in the mesh plane; the Z
dimension (layer changes) never leaves a switch.

Run:  python examples/kilocore_mesh.py
"""

from collections import defaultdict

import numpy as np

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.topology import MeshConfig, MeshNetwork


def main() -> None:
    mesh_config = MeshConfig(rows=4, cols=4, concentration=60, layers=4)
    print(f"Mesh: {mesh_config.rows}x{mesh_config.cols} nodes, "
          f"radix-{mesh_config.radix} Hi-Rise routers, "
          f"{mesh_config.total_terminals} terminals")

    network = MeshNetwork(
        mesh_config,
        lambda radix: HiRiseSwitch(
            HiRiseConfig(radix=radix, layers=4, channel_multiplicity=4)
        ),
    )

    rng = np.random.default_rng(1)
    packets = []
    for _ in range(400):
        src = (int(rng.integers(4)), int(rng.integers(4)))
        dst = (int(rng.integers(4)), int(rng.integers(4)))
        packets.append(
            network.create_packet(
                src, int(rng.integers(60)), dst, int(rng.integers(60))
            )
        )
        network.step()
    network.run(600)

    delivered = [p for p in packets if p.delivered_cycle is not None]
    print(f"Delivered {len(delivered)}/{len(packets)} packets")

    by_hops = defaultdict(list)
    for packet in delivered:
        by_hops[packet.hops].append(packet.latency)
    print("\nLatency by mesh hop count:")
    for hops in sorted(by_hops):
        latencies = by_hops[hops]
        mean = sum(latencies) / len(latencies)
        print(f"  {hops} hops: {len(latencies):4d} packets, "
              f"mean {mean:6.1f} cycles")
    print("\nEach mesh hop adds a router traversal; hops in Z (between "
          "layers of one node) are absorbed by the 3D switch itself.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""TSV-failure resilience: rerouting around faulty vertical channels.

TSV yield is 3D integration's central manufacturing risk; a faulty bundle
disables a whole layer-to-layer channel.  The switch model reroutes flows
nominally binned to a failed channel onto the next healthy channel toward
the same layer, so the fabric degrades gracefully instead of losing
connectivity.  This example kills progressively more channels on the
headline 4-channel switch and reports delivered throughput and the
utilization shift onto the surviving channels.

Run:  python examples/tsv_resilience.py
"""

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import ProbedSwitch
from repro.network.engine import Simulation
from repro.traffic import UniformRandomTraffic

FAILURE_STAGES = [
    ("healthy", ()),
    ("1 failed bundle", ((0, 3, 0),)),
    ("3 failed bundles", ((0, 3, 0), (0, 3, 1), (0, 3, 2))),
    ("6 failed bundles",
     ((0, 3, 0), (0, 3, 1), (0, 3, 2),
      (1, 3, 0), (2, 3, 0), (3, 0, 0))),
]


def main() -> None:
    print("64-radix, 4-layer, 4-channel Hi-Rise under TSV bundle failures")
    print("(overdriven uniform random traffic)\n")
    baseline = None
    for label, failed in FAILURE_STAGES:
        config = HiRiseConfig(failed_channels=failed)
        probe = ProbedSwitch(HiRiseSwitch(config))
        traffic = UniformRandomTraffic(64, load=0.99, seed=7)
        result = Simulation(probe, traffic, warmup_cycles=300).run(1500)
        packets = result.throughput_packets_per_cycle
        if baseline is None:
            baseline = packets
        survivors = probe.channel_utilizations()
        util_0_3 = [
            survivors.get(("ch", 0, 3, k), 0.0) for k in range(4)
        ]
        print(f"{label:<18} throughput {packets:5.2f} pkts/cycle "
              f"({packets / baseline:6.1%} of healthy)")
        print("                   L1->L4 channel utilization: "
              + "  ".join(
                  f"ch{k}:{'FAILED' if (0, 3, k) in set(failed) else f'{u:.2f}'}"
                  for k, u in enumerate(util_0_3)
              ))
    print("\nFlows rebind to the next healthy channel; losing 3 of the 4")
    print("channels toward one layer squeezes that path onto one channel")
    print("while the rest of the switch is unaffected.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Run a Table VI workload mix on the 64-core system.

Builds two identical 64-core systems — one over the flat 2D switch at its
modelled 1.69 GHz, one over the Hi-Rise CLRG switch at 2.2 GHz — runs the
same randomly allocated multi-programmed mix on both for equal wall-clock
time, and reports per-mix system speedup.

Run:  python examples/manycore_workloads.py [MixN]
"""

import sys

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.manycore import MIXES, ManyCoreSystem, SystemConfig, mix_core_assignment
from repro.physical import cost_of
from repro.switches import SwizzleSwitch2D


def run_mix(mix, network_cycles_baseline=8000, seed=0) -> None:
    print(f"{mix.name}: avg MPKI {mix.avg_mpki:.1f} "
          f"(paper {mix.paper_avg_mpki}), "
          f"{mix.total_instances} application instances")
    for name, count in mix.entries:
        print(f"    {name:<12} x{count}")

    config = SystemConfig(seed=seed)
    profiles = mix_core_assignment(mix, config.num_cores, seed=seed)
    freq_2d = cost_of("2d").frequency_ghz
    hirise = HiRiseConfig()
    freq_3d = cost_of(hirise).frequency_ghz

    base = ManyCoreSystem(SwizzleSwitch2D(64), freq_2d, profiles, config)
    cand = ManyCoreSystem(HiRiseSwitch(hirise), freq_3d, profiles, config)

    wall_ns = network_cycles_baseline / freq_2d
    result_2d = base.run(network_cycles_baseline)
    result_3d = cand.run(int(round(wall_ns * freq_3d)))

    ipc_2d = result_2d.system_ipc
    ipc_3d = result_3d.system_ipc
    speedup = result_3d.total_instructions / result_2d.total_instructions
    print(f"  2D switch      : aggregate IPC {ipc_2d:.1f}")
    print(f"  Hi-Rise switch : aggregate IPC {ipc_3d:.1f}")
    print(f"  speedup        : {speedup:.3f} "
          f"(paper: {mix.paper_speedup:.2f})")
    lat_2d = base.memory_latency.breakdown(base.network_cycle_ns)
    lat_3d = cand.memory_latency.breakdown(cand.network_cycle_ns)
    print(f"  memory latency : L2-hit {lat_2d.l2_hit_mean_ns:.1f} -> "
          f"{lat_3d.l2_hit_mean_ns:.1f} ns, "
          f"DRAM {lat_2d.dram_mean_ns:.0f} -> {lat_3d.dram_mean_ns:.0f} ns\n")


def main() -> None:
    wanted = sys.argv[1] if len(sys.argv) > 1 else None
    mixes = [m for m in MIXES if wanted is None or m.name == wanted]
    if not mixes:
        names = ", ".join(m.name for m in MIXES)
        raise SystemExit(f"unknown mix {wanted!r}; choose from: {names}")
    if wanted is None:
        # Default: the lightest and the heaviest mixes for a quick look.
        mixes = [MIXES[0], MIXES[-1]]
    for mix in mixes:
        run_mix(mix)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Walk through the paper's Fig 4 / Fig 5 arbitration examples.

Five inputs contend for output 63 on layer 4 of a 1-channel, 4-layer,
64-radix Hi-Rise switch: inputs {3, 7, 11, 15} share the single L2LC from
layer 1, input {20} owns the L2LC from layer 2.  Under baseline
layer-to-layer LRG the lone input captures every other grant; under the
proposed CLRG the grant pattern matches a flat 2D LRG switch.

Run:  python examples/arbitration_walkthrough.py
"""

from repro.arbitration.lrg import LRGArbiter
from repro.core import ArbitrationScheme, HiRiseConfig, HiRiseSwitch
from repro.traffic import TraceTraffic

OUTPUT = 63
REQUESTORS = [3, 7, 11, 15, 20]


def build_switch(arbitration: ArbitrationScheme, interlayer_order):
    config = HiRiseConfig(
        radix=64, layers=4, channel_multiplicity=1, arbitration=arbitration
    )
    switch = HiRiseSwitch(config)
    # Local layer-1 priority as drawn in the figures: 15 > 11 > 7 > 3.
    order = [15, 11, 7, 3] + [i for i in range(16) if i not in (15, 11, 7, 3)]
    switch.chan_arbiters[(0, 3, 0)] = LRGArbiter(16, initial_order=order)
    # Inter-layer sub-block priority over {C1,4; C2,4; C3,4; local}.
    if arbitration is ArbitrationScheme.L2L_LRG:
        switch.subblock_arbiters[OUTPUT] = LRGArbiter(
            config.subblock_inputs, initial_order=interlayer_order
        )
    else:
        switch.subblock_arbiters[OUTPUT].lrg = LRGArbiter(
            config.subblock_inputs, initial_order=interlayer_order
        )
    return switch


def winner_sequence(switch, grants=10):
    trace = TraceTraffic(
        [(0, src, OUTPUT) for _ in range(12) for src in REQUESTORS],
        packet_flits=1,
    )
    for packet in trace.packets_for_cycle(0):
        switch.inject(packet)
    winners, cycle = [], 0
    while len(winners) < grants and cycle < 500:
        winners.extend(flit.src for flit in switch.step(cycle))
        cycle += 1
    return winners[:grants]


def main() -> None:
    print("Inputs {3, 7, 11, 15} on L1 and {20} on L2 -> output 63 on L4\n")

    baseline = build_switch(ArbitrationScheme.L2L_LRG, [3, 2, 0, 1])
    sequence = winner_sequence(baseline)
    print("Fig 4 — baseline L-2-L LRG grant sequence:")
    print(f"  measured : {sequence}")
    print(f"  paper    : [15, 20, 11, 20, 7, 20, 3, 20, 15, 20]")
    share = sequence.count(20) / len(sequence)
    print(f"  input 20 captures {share:.0%} of the output (unfair)\n")

    clrg = build_switch(ArbitrationScheme.CLRG, [3, 2, 1, 0])
    sequence = winner_sequence(clrg)
    print("Fig 5 — CLRG grant sequence:")
    print(f"  measured : {sequence}")
    print(f"  paper    : [20, 15, 11, 7, 3, 20, 15, 11, 7, 3]")
    share = sequence.count(20) / len(sequence)
    print(f"  input 20 captures {share:.0%} — the flat-2D-LRG fair share")


if __name__ == "__main__":
    main()

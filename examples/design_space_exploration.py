#!/usr/bin/env python3
"""Design-space exploration: radix, layers and channel multiplicity.

Replays the Section VI-A methodology: sweep the physical design space
with the calibrated cost model, measure saturation throughput with the
cycle simulator for the radix-64 candidates, and pick the configuration
the paper picks — the 4-channel, 4-layer switch.

Run:  python examples/design_space_exploration.py
"""

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import saturation_throughput
from repro.physical import cost_of, frequency_ghz
from repro.physical.geometry import flat2d_geometry, hirise_sweep_geometry
from repro.traffic import UniformRandomTraffic


def sweep_layers() -> None:
    print("Frequency vs stacked layers (radix 64, 4 channels):")
    best = None
    for layers in range(2, 8):
        freq = frequency_ghz(hirise_sweep_geometry(64, layers, 4))
        marker = ""
        if best is None or freq > best[1]:
            best = (layers, freq)
        print(f"  {layers} layers : {freq:.2f} GHz")
    print(f"  -> optimum at {best[0]} layers (paper: 4, optimum range 3-5)\n")


def sweep_radix() -> None:
    print("Frequency vs radix (4 layers, 4 channels) against 2D:")
    for radix in (16, 32, 48, 64, 96, 128):
        flat = frequency_ghz(flat2d_geometry(radix))
        hirise = frequency_ghz(hirise_sweep_geometry(radix, 4, 4))
        winner = "3D" if hirise > flat else "2D"
        print(f"  radix {radix:3d} : 2D {flat:.2f} GHz | 3D {hirise:.2f} GHz"
              f"  -> {winner}")
    print("  (2D wins below ~radix 32-48; the gap widens beyond)\n")


def sweep_channels() -> None:
    print("Channel multiplicity at radix 64, 4 layers "
          "(cost model + cycle simulation):")
    rows = []
    for channels in (1, 2, 4):
        config = HiRiseConfig(channel_multiplicity=channels,
                              arbitration="l2l_lrg")
        cost = cost_of(config)
        flits = saturation_throughput(
            lambda config=config: HiRiseSwitch(config),
            lambda load: UniformRandomTraffic(64, load, seed=3),
            warmup_cycles=300,
            measure_cycles=1500,
        ) * 4
        tbps = cost.throughput_tbps(flits)
        rows.append((channels, cost, tbps))
        print(f"  c={channels}: {cost.area_mm2:.3f} mm^2, "
              f"{cost.frequency_ghz:.2f} GHz, {cost.energy_pj:.0f} pJ, "
              f"{tbps:5.2f} Tbps, {cost.tsv_count} TSVs")
    flat_cost = cost_of("2d")
    print(f"  2D : {flat_cost.area_mm2:.3f} mm^2, "
          f"{flat_cost.frequency_ghz:.2f} GHz, {flat_cost.energy_pj:.0f} pJ")
    best = max(rows, key=lambda row: row[2])
    print(f"  -> highest-throughput configuration: {best[0]}-channel "
          f"(the paper's choice)")


def main() -> None:
    sweep_layers()
    sweep_radix()
    sweep_channels()


if __name__ == "__main__":
    main()

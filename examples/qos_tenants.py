#!/usr/bin/env python3
"""QoS extension: bandwidth differentiation between tenant classes.

Extends CLRG with per-input service weights (the Swizzle-Switch lineage's
QoS direction, DAC 2012): each win charges an input 1/weight, so the
sustainable share of any contested output is proportional to its weight.
The scenario: a 64-port Hi-Rise switch shared by a *foreground* tenant
(16 inputs, weight 3) and a *background* tenant (48 inputs, weight 1),
every input flooding the same storage port.

Run:  python examples/qos_tenants.py
"""

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import accepted_throughput
from repro.traffic import HotspotTraffic

STORAGE_PORT = 63
FOREGROUND = list(range(0, 16))       # layer 1: the latency-critical tenant


def run(weights):
    config = HiRiseConfig(
        arbitration="clrg",
        qos_weights=weights,
        num_classes=8 if weights else 3,
    )
    result = accepted_throughput(
        lambda: HiRiseSwitch(config),
        lambda load: HotspotTraffic(64, load, hotspot_output=STORAGE_PORT,
                                    seed=3),
        load=0.02,  # well above the hotspot's fair share
        warmup_cycles=1500,
        measure_cycles=15000,
    )
    shares = result.per_input_throughput(64)
    fg = sum(shares[i] for i in FOREGROUND)
    bg = sum(shares[i] for i in range(64) if i not in FOREGROUND)
    return fg, bg


def main() -> None:
    print("All 64 inputs flooding one storage port (output 63).\n")

    fg, bg = run(weights=None)
    print("Plain CLRG (fair):")
    print(f"  foreground tenant (16 inputs): {fg:.4f} packets/cycle "
          f"({fg / (fg + bg):.0%} of the port)")
    print(f"  background tenant (48 inputs): {bg:.4f} packets/cycle\n")

    weights = tuple(3.0 if i in FOREGROUND else 1.0 for i in range(64))
    fg, bg = run(weights=weights)
    print("QoS CLRG (foreground weight 3, background weight 1):")
    print(f"  foreground tenant (16 inputs): {fg:.4f} packets/cycle "
          f"({fg / (fg + bg):.0%} of the port)")
    print(f"  background tenant (48 inputs): {bg:.4f} packets/cycle")
    print("\nWith 16x3 : 48x1 weighting the foreground's fair share is "
          f"{16 * 3 / (16 * 3 + 48):.0%} — the switch enforces it.")


if __name__ == "__main__":
    main()

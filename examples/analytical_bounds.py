#!/usr/bin/env python3
"""Analytical capacity bounds versus the cycle simulator.

The fixed routing of binned channel allocation makes throughput bounds
exact closed forms: a demand matrix is deliverable iff no input, output,
or layer-to-layer channel is loaded past 1/(flits+1) packets per cycle.
This example computes the bound for the paper's key traffic patterns,
simulates each, and reports how close the switch gets — showing where the
bound binds (single-resource contention: tight) and where two-phase
matching costs extra (uniform random: ~75-90% of bound).

Run:  python examples/analytical_bounds.py
"""

from repro.analysis import bottleneck, throughput_bound
from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import saturation_throughput
from repro.traffic import AdversarialTraffic, HotspotTraffic, UniformRandomTraffic
from repro.traffic.adversarial import interlayer_worstcase, paper_adversarial_demands


def uniform_demands(config, rate=1.0):
    n = config.radix
    return {
        (s, d): rate / (n - 1) for s in range(n) for d in range(n) if s != d
    }


def simulate(config, traffic_factory):
    return saturation_throughput(
        lambda: HiRiseSwitch(config),
        traffic_factory,
        warmup_cycles=400,
        measure_cycles=2000,
    )


def report(name, config, demands, traffic_factory):
    bound = throughput_bound(config, demands)
    worst = bottleneck(config, demands)
    measured = simulate(config, traffic_factory)
    print(f"{name:<28} bound {bound:6.2f}  measured {measured:6.2f} "
          f"({measured / bound:5.1%})  bottleneck: {worst.resource}")


def main() -> None:
    print("Analytical bound vs simulation (packets/cycle, 4-flit packets)\n")

    for channels in (1, 4):
        config = HiRiseConfig(channel_multiplicity=channels)
        report(
            f"uniform random, c={channels}",
            config,
            uniform_demands(config),
            lambda load: UniformRandomTraffic(64, load, seed=7),
        )

    config = HiRiseConfig()
    report(
        "hotspot (all -> o/p 63)",
        config,
        {(src, 63): 1.0 for src in range(64)},
        lambda load: HotspotTraffic(64, load, hotspot_output=63, seed=5),
    )

    flows = paper_adversarial_demands()
    report(
        "Sec III-B adversarial",
        config,
        {pair: 1.0 for pair in flows.items()},
        lambda load: AdversarialTraffic(64, load, flows, seed=5),
    )

    worstcase = interlayer_worstcase(config)
    report(
        "Sec VI-B pathological",
        config,
        {pair: 1.0 for pair in worstcase.items()},
        lambda load: AdversarialTraffic(64, load, worstcase, seed=5),
    )

    print("\nSingle-resource contention saturates the bound; distributed")
    print("patterns leave a matching-efficiency gap — the same structure")
    print("the paper's Table IV / Section VI-B numbers exhibit.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A many-core *system* on the mesh-of-3D-switches fabric (Section VI-E).

The ``MeshInterconnect`` adapter lets the Table III-style system (cores,
private L1s, shared L2 banks, memory controllers) run unchanged on the
Fig 13 topology: a 2D mesh whose routers are Hi-Rise switches.  This
example builds a 4x4 mesh of radix-28 routers (12 terminals plus four
quad links each — 192 cores), runs a memory-intensive workload, and
compares IPC against the same cores on a hypothetical single flat switch
of the same port count (an idealised, physically implausible fabric — the
comparison shows what the mesh's extra hops cost).

Run:  python examples/kilocore_system.py
"""

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.manycore import BenchmarkProfile, ManyCoreSystem, SystemConfig
from repro.switches import SwizzleSwitch2D
from repro.topology import MeshConfig, MeshInterconnect, MeshNetwork


def build_mesh_interconnect():
    mesh_config = MeshConfig(
        rows=4, cols=4, concentration=12, layers=4,
        links_per_direction=4, layer_aware=True,
    )
    mesh = MeshNetwork(
        mesh_config,
        lambda radix: HiRiseSwitch(
            HiRiseConfig(radix=radix, layers=4, channel_multiplicity=2)
        ),
    )
    return MeshInterconnect(mesh)


def main() -> None:
    cores = 192
    profiles = [
        BenchmarkProfile("streaming", l1_mpki=30.0, l2_mpki=10.0)
    ] * cores
    config = SystemConfig(num_cores=cores, num_memory_controllers=16, seed=0)

    mesh_system = ManyCoreSystem(
        build_mesh_interconnect(), 2.0, profiles, config
    )
    ideal_system = ManyCoreSystem(
        SwizzleSwitch2D(cores), 2.0, profiles, config
    )

    cycles = 3000
    print(f"{cores}-core system, {cycles} network cycles at 2 GHz fabric clock")
    mesh_result = mesh_system.run(cycles)
    print(f"  4x4 mesh of Hi-Rise routers : aggregate IPC "
          f"{mesh_result.system_ipc:.1f}")
    ideal_result = ideal_system.run(cycles)
    print(f"  idealised flat 192-switch   : aggregate IPC "
          f"{ideal_result.system_ipc:.1f}")
    gap = 1 - mesh_result.system_ipc / ideal_result.system_ipc
    print(f"  mesh hop cost               : {gap:.1%} IPC "
          f"(the price of physical realisability at this scale)")

    served = sum(mc.served for mc in mesh_system.mcs)
    print(f"  DRAM requests served (mesh) : {served}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A custom study with the sweep API: radix scaling of delivered Tbps.

Demonstrates `repro.harness.sweep`: define one measurement, cross a
parameter grid (radix x design), replicate over seeds for confidence
intervals, and render/export the result — the workflow for studies beyond
the paper's own tables and figures.

Run:  python examples/sweep_study.py
"""

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.harness import parameter_grid, render_sweep, run_sweep, to_series
from repro.harness.export import export_series_csv
from repro.metrics import saturation_throughput
from repro.physical import cost_of
from repro.switches import SwizzleSwitch2D
from repro.traffic import UniformRandomTraffic


def delivered_tbps(seed, radix, design):
    """Saturation throughput in Tbps at the design's modelled clock."""
    if design == "2d":
        factory = lambda: SwizzleSwitch2D(radix)
        cost = cost_of("2d", radix=radix)
    else:
        config = HiRiseConfig(radix=radix, layers=4, channel_multiplicity=4)
        factory = lambda: HiRiseSwitch(config)
        cost = cost_of(config)
    flits = saturation_throughput(
        factory,
        lambda load: UniformRandomTraffic(radix, load, seed=seed),
        warmup_cycles=250,
        measure_cycles=1200,
    ) * 4
    return cost.throughput_tbps(flits)


def main() -> None:
    grid = parameter_grid(radix=[16, 32, 64], design=["2d", "hirise"])
    points = run_sweep(delivered_tbps, grid, replications=3)
    print(render_sweep(points, "Delivered Tbps vs radix (3 seeds, 95% CI)"))

    series = to_series(points, x="radix", series_by="design")
    path = export_series_csv(series, "sweep_tbps_vs_radix.csv",
                             ["radix", "tbps"])
    print(f"\nwrote {path}")

    by_key = {
        (p.parameters["radix"], p.parameters["design"]): p.value
        for p in points
    }
    print("\nCrossover story: at radix 16 the 2D switch delivers "
          f"{by_key[(16, '2d')]:.1f} vs Hi-Rise {by_key[(16, 'hirise')]:.1f} "
          "Tbps; by radix 64 Hi-Rise leads "
          f"{by_key[(64, 'hirise')]:.1f} to {by_key[(64, '2d')]:.1f}.")


if __name__ == "__main__":
    main()

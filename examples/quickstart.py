#!/usr/bin/env python3
"""Quickstart: build a Hi-Rise switch, drive traffic, read the cost model.

Builds the paper's headline configuration — a 64-radix, 4-layer,
4-channel Hi-Rise switch with CLRG arbitration — runs uniform random
traffic through the cycle-accurate model, and reports latency, saturation
throughput and the calibrated 32 nm implementation cost.

Run:  python examples/quickstart.py
"""

from repro import HiRiseConfig, HiRiseSwitch, Simulation
from repro.metrics import saturation_throughput, summarize
from repro.physical import cost_of
from repro.traffic import UniformRandomTraffic


def main() -> None:
    config = HiRiseConfig()  # 64-radix, 4 layers, 4 channels, CLRG
    print(f"Hi-Rise configuration: {config.configuration_string()}")
    print(f"  local switch  : {config.local_switch_shape[0]}x"
          f"{config.local_switch_shape[1]} per layer")
    print(f"  inter-layer   : {config.subblocks_per_layer} sub-blocks of "
          f"{config.subblock_inputs}x1 per layer")

    # --- implementation cost (calibrated 32 nm model) ------------------
    cost = cost_of(config)
    print("\nImplementation cost (32 nm, 128-bit):")
    print(f"  area      : {cost.area_mm2:.3f} mm^2")
    print(f"  frequency : {cost.frequency_ghz:.2f} GHz")
    print(f"  energy    : {cost.energy_pj:.1f} pJ/transaction")
    print(f"  TSVs      : {cost.tsv_count}")

    # --- cycle-accurate simulation at a moderate load -------------------
    switch = HiRiseSwitch(config)
    traffic = UniformRandomTraffic(config.radix, load=0.08, seed=1)
    simulation = Simulation(switch, traffic, warmup_cycles=500)
    result = simulation.run(measure_cycles=4000)
    stats = summarize(result)
    print("\nUniform random traffic at 0.08 packets/input/cycle:")
    print(f"  delivered : {result.packets_ejected} packets")
    print(f"  latency   : mean {stats.mean:.1f} cycles "
          f"({stats.mean / cost.frequency_ghz:.2f} ns), p99 {stats.p99:.0f}")

    # --- saturation throughput ------------------------------------------
    flits = saturation_throughput(
        lambda: HiRiseSwitch(config),
        lambda load: UniformRandomTraffic(config.radix, load, seed=2),
        warmup_cycles=500,
        measure_cycles=2500,
    ) * 4
    tbps = cost.throughput_tbps(flits)
    print("\nSaturation throughput (uniform random):")
    print(f"  {flits:.1f} flits/cycle = {tbps:.2f} Tbps "
          f"(paper: 10.65 Tbps)")


if __name__ == "__main__":
    main()
